//! `deepst` — facade crate re-exporting the full DeepST reproduction stack.
//!
//! See the individual crates for details:
//! - [`st_obs`] — spans, metrics, JSONL trace export
//! - [`st_tensor`] — autodiff engine
//! - [`st_nn`] — neural network layers
//! - [`st_roadnet`] — road network substrate
//! - [`st_sim`] — traffic & trip simulator
//! - [`st_mapmatch`] — HMM map matching
//! - [`st_core`] — the DeepST model (the paper's contribution)
//! - [`st_baselines`] — MMI, WSP, RNN, CSSRNN baselines
//! - [`st_recovery`] — STRS route recovery
//! - [`st_eval`] — metrics and experiment runners

pub use st_baselines as baselines;
pub use st_core as core;
pub use st_eval as eval;
pub use st_mapmatch as mapmatch;
pub use st_nn as nn;
pub use st_obs as obs;
pub use st_recovery as recovery;
pub use st_roadnet as roadnet;
pub use st_sim as sim;
pub use st_tensor as tensor;
