//! `deepst` — command-line interface to the DeepST reproduction.
//!
//! ```text
//! deepst simulate --city rivertown --trips 1000 --seed 7 --out city.json
//! deepst train    --data city.json --epochs 8 --out model.json
//! deepst predict  --data city.json --model model.json --trip 0 [--svg map.svg]
//! deepst recover  --data city.json --model model.json --trip 0 --rate-min 5
//! deepst eval     --data city.json --model model.json [--max 200]
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to stay within the
//! approved dependency set.

use std::collections::HashMap;
use std::process::ExitCode;

use rand::SeedableRng;

use deepst::baselines::{DeepStPredictor, PredictQuery, Predictor};
use deepst::core::{DeepSt, TrainConfig, Trainer};
use deepst::eval::{accuracy, build_examples, deepst_config, recall_at_n, RouteLayer, SvgScene};
use deepst::nn::Module;
use deepst::recovery::{DeepStSpatial, Recovery, RecoveryConfig, TravelTimeModel};
use deepst::sim::{downsample, CityPreset, Dataset};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = parse_opts(&args[1..]);
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&opts),
        "train" => cmd_train(&opts),
        "predict" => cmd_predict(&opts),
        "recover" => cmd_recover(&opts),
        "eval" => cmd_eval(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
deepst — spatial transition learning on road networks (ICDE 2020 reproduction)

USAGE:
  deepst simulate --city <rivertown|northport|tiny> --trips <n> [--seed <s>] --out <city.json>
  deepst train    --data <city.json> [--epochs <n>] [--seed <s>] [--no-traffic] --out <model.json>
  deepst predict  --data <city.json> --model <model.json> [--trip <i>] [--svg <map.svg>]
  deepst recover  --data <city.json> --model <model.json> [--trip <i>] [--rate-min <m>]
  deepst eval     --data <city.json> --model <model.json> [--max <n>]";

fn parse_opts(args: &[String]) -> HashMap<String, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].trim_start_matches('-').to_string();
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            opts.insert(key, args[i + 1].clone());
            i += 2;
        } else {
            opts.insert(key, "true".into());
            i += 1;
        }
    }
    opts
}

fn req<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}"))
}

fn num<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load_dataset(opts: &HashMap<String, String>) -> Result<Dataset, String> {
    let path = req(opts, "data")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))
}

fn load_model(opts: &HashMap<String, String>, ds: &Dataset) -> Result<DeepSt, String> {
    let path = req(opts, "model")?;
    // Model config mirrors `train`'s construction; traffic on unless the
    // checkpoint says otherwise (checked by strict load).
    let use_traffic = !opts.contains_key("no-traffic");
    let mut cfg = deepst_config(ds, num(opts, "k", 24));
    cfg.use_traffic = use_traffic;
    let model = DeepSt::new(cfg, 0);
    deepst::nn::load(&model, path).map_err(|e| format!("load {path}: {e}"))?;
    Ok(model)
}

fn query_for<'a>(ds: &'a Dataset, i: usize) -> PredictQuery<'a> {
    let trip = &ds.trips[i];
    let slot = ds.slot_of(trip.start_time);
    PredictQuery {
        start: trip.origin_segment(),
        dest_coord: trip.dest_coord,
        dest_norm: ds.unit_coord(&trip.dest_coord),
        dest_segment: trip.dest_segment(),
        traffic: ds.traffic_tensor(slot),
        slot_id: slot,
    }
}

fn cmd_simulate(opts: &HashMap<String, String>) -> Result<(), String> {
    let preset = match req(opts, "city")?.to_ascii_lowercase().as_str() {
        "rivertown" => CityPreset::rivertown(),
        "northport" => CityPreset::northport(),
        "tiny" | "tinyville" => CityPreset::tiny_test(),
        other => return Err(format!("unknown city `{other}`")),
    };
    let trips = num(opts, "trips", 500usize);
    let seed = num(opts, "seed", 7u64);
    let out = req(opts, "out")?;
    eprintln!(
        "simulating {} with {trips} trips (seed {seed})...",
        preset.name
    );
    let ds = Dataset::generate(&preset, trips, seed);
    let stats = ds.trip_stats();
    eprintln!(
        "  {} segments, {} trips, mean {:.1} km / {:.0} segments per trip",
        ds.net.num_segments(),
        stats.n_trips,
        stats.mean_km,
        stats.mean_segments
    );
    let json = serde_json::to_string(&ds).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_train(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(opts)?;
    let out = req(opts, "out")?;
    let epochs = num(opts, "epochs", 8usize);
    let seed = num(opts, "seed", 7u64);
    let use_traffic = !opts.contains_key("no-traffic");
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let val = build_examples(&ds, &split.val);
    eprintln!(
        "training {} on {} trips for {epochs} epochs...",
        if use_traffic { "DeepST" } else { "DeepST-C" },
        train.len()
    );
    let mut cfg = deepst_config(&ds, num(opts, "k", 24));
    cfg.use_traffic = use_traffic;
    let model = DeepSt::new(cfg, seed);
    let tc = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(model, tc);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let val_opt = (!val.is_empty()).then_some(val.as_slice());
    for e in trainer.fit(&train, val_opt, &mut rng) {
        eprintln!(
            "  epoch {:>2}: train loss {:.3}{} ({:.1}s)",
            e.epoch,
            e.train_loss,
            e.val_loss
                .map(|v| format!(", val {v:.3}"))
                .unwrap_or_default(),
            e.seconds
        );
    }
    deepst::nn::save(&trainer.model, out).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {out} ({} parameters)", trainer.model.num_params());
    Ok(())
}

fn cmd_predict(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(opts)?;
    let model = load_model(opts, &ds)?;
    let split = ds.default_split();
    let trip_ix = split.test[num(opts, "trip", 0usize) % split.test.len()];
    let predictor = DeepStPredictor::new(model);
    let q = query_for(&ds, trip_ix);
    let predicted = predictor.predict(&ds.net, &q);
    let truth = &ds.trips[trip_ix].route;
    println!("trip #{trip_ix}");
    println!("  truth:     {truth:?}");
    println!("  predicted: {predicted:?}");
    println!("  recall@n = {:.3}", recall_at_n(truth, &predicted));
    println!("  accuracy = {:.3}", accuracy(truth, &predicted));
    if let Some(svg_path) = opts.get("svg") {
        let mut scene = SvgScene::new(&ds.net, 800.0);
        scene.add_route(&RouteLayer {
            route: truth,
            color: "#1f77b4",
            label: "ground truth",
        });
        scene.add_route(&RouteLayer {
            route: &predicted,
            color: "#d62728",
            label: "DeepST",
        });
        scene.add_marker(&ds.trips[trip_ix].dest_coord, "#2ca02c", 6.0);
        scene
            .save(svg_path)
            .map_err(|e| format!("write {svg_path}: {e}"))?;
        println!("  map: {svg_path}");
    }
    Ok(())
}

fn cmd_recover(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(opts)?;
    let model = load_model(opts, &ds)?;
    let split = ds.default_split();
    let trip_ix = split.test[num(opts, "trip", 0usize) % split.test.len()];
    let rate_min = num(opts, "rate-min", 5.0f64);
    let trip = &ds.trips[trip_ix];
    let sparse = downsample(&trip.gps, rate_min * 60.0);
    let ttime = TravelTimeModel::fit(
        &ds.net,
        split
            .train
            .iter()
            .map(|&i| (&ds.trips[i].route, ds.trips[i].duration())),
    );
    let spatial = DeepStSpatial::new(&model);
    let recovery = Recovery::new(&ds.net, &ttime, &spatial, RecoveryConfig::default());
    let slot = ds.slot_of(trip.start_time);
    let dest = ds.unit_coord(&trip.dest_coord);
    let recovered = recovery
        .recover(&sparse, dest, ds.traffic_tensor(slot), slot)
        .ok_or("recovery failed (trajectory too short?)")?;
    println!(
        "trip #{trip_ix}: {} fixes downsampled to {}",
        trip.gps.len(),
        sparse.len()
    );
    println!("  truth:     {:?}", trip.route);
    println!("  recovered: {recovered:?}");
    println!("  accuracy = {:.3}", accuracy(&trip.route, &recovered));
    Ok(())
}

fn cmd_eval(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(opts)?;
    let model = load_model(opts, &ds)?;
    let split = ds.default_split();
    let max = num(opts, "max", 200usize).min(split.test.len());
    let predictor = DeepStPredictor::new(model);
    let mut rec = 0.0;
    let mut acc = 0.0;
    for &i in split.test.iter().take(max) {
        let q = query_for(&ds, i);
        let predicted = predictor.predict(&ds.net, &q);
        rec += recall_at_n(&ds.trips[i].route, &predicted);
        acc += accuracy(&ds.trips[i].route, &predicted);
    }
    println!("{} test trips:", max);
    println!("  recall@n = {:.3}", rec / max as f64);
    println!("  accuracy = {:.3}", acc / max as f64);
    Ok(())
}
