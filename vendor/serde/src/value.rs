//! The intermediate tree every (de)serialization in this workspace goes
//! through. Lives in `serde` so both the derive output and `serde_json`
//! can name it; `serde_json` re-exports it.

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Map),
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Obj(m)
    }
}

/// Insertion-ordered string→value map (matches serde_json's
/// `preserve_order` behaviour, which keeps emitted JSON diffable).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace, preserving first-insertion order.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}
