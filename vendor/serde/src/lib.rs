//! Offline stand-in for `serde`.
//!
//! Upstream serde's visitor architecture exists to decouple data formats
//! from data structures without an intermediate tree. This workspace only
//! ever serializes to JSON (via the vendored `serde_json`), so the stand-in
//! collapses the whole design to one intermediate tree: [`Value`].
//! `Serialize` renders a type *into* a `Value`; `Deserialize` rebuilds a
//! type *from* one. The derive macro (re-exported from `serde_derive`)
//! generates both for plain named-field structs — the only shape this
//! workspace derives.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Map, Value};

/// Deserialization failure: a human-readable path + expectation message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a `Value`.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self`, reporting the first structural mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- Serialize impls for std types the workspace serializes ----

macro_rules! ser_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError(format!(
                        "expected number for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

ser_num!(f32, f64, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(DeError(format!("expected array of len {N}, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) if items.len() == ser_tuple!(@count $($t)+) => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
    (@count $($t:ident)+) => { [$(ser_tuple!(@one $t)),+].len() };
    (@one $t:ident) => { () };
}

ser_tuple! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Obj(self.clone())
    }
}

impl Deserialize for Map {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(m) => Ok(m.clone()),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
