//! Offline stand-in for `proptest`.
//!
//! Implements the surface this workspace's property tests use — range and
//! `collection::vec` strategies, `ProptestConfig::with_cases`, the
//! `proptest!` macro with `pat in strategy` bindings, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` helpers — as plain
//! seeded random testing. No shrinking: a failing case reports its inputs
//! via the assertion message, and the per-test deterministic seed makes
//! every failure reproducible by rerunning the test.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, usize, u64, u32, i64, i32);

/// `Just`-style constant strategy (also lets plain closures act as
/// strategies through [`FnStrategy`] if needed later).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Runner configuration. Only `cases` matters for the stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// A strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len_spec)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob import every proptest file starts with.
pub mod prelude {
    pub use super::collection;
    pub use super::{Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Deterministic per-test RNG: seeded from the test path so each test gets
/// a distinct but stable stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Defines property tests. Each `pat in strategy` binding draws a fresh
/// value per case; the body runs `config.cases` times.
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must precede the catch-all below.
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        // The caller writes `#[test]` inside the block (as with upstream
        // proptest); it arrives via $meta, so none is added here.
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                // The body runs inside a closure so prop_assume! can
                // discard the case with a plain `return` (labels would
                // not cross macro-hygiene boundaries).
                let __case_fn = move || { $body };
                __case_fn();
            }
        }
    )*};
    // Leading #![proptest_config(...)] applies to every test in the block.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assertion that reports the failing case (no shrinking, so the raw
/// values are the report).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Discard the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_sizes(v in collection::vec(0u32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_discards(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn per_test_rng_is_stable() {
        let a: Vec<u64> = {
            use rand::Rng;
            let mut r = super::rng_for("foo::bar");
            (0..4).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            use rand::Rng;
            let mut r = super::rng_for("foo::bar");
            (0..4).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }
}
