//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the `st-bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples timer
//! instead of upstream's statistical machinery. `--test` runs every
//! benchmark body once and skips measurement, matching
//! `cargo bench -- --test` smoke-run semantics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmark's work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder-style, like upstream).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Internal: flip into smoke-test mode (`--test`).
    pub fn set_test_mode(&mut self, on: bool) {
        self.test_mode = on;
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, self.sample_size, self.test_mode, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.0),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.test_mode,
            f,
        );
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Benchmark identifier; `from_parameter` renders the parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        Self(format!("{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Passed to every benchmark body; `iter` times the supplied routine.
pub struct Bencher {
    test_mode: bool,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate: aim for ~2ms per sample so cheap kernels get a
        // stable per-iteration time without a long wall-clock cost.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        let n_samples = self.samples.capacity().max(2);
        for _ in 0..n_samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let mut b = Bencher {
        test_mode,
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok (smoke)");
        return;
    }
    if b.samples.is_empty() {
        println!("bench {id:<40} (no iter call)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let best = per_iter[0];
    println!(
        "bench {id:<40} median {} best {}",
        fmt_ns(median),
        fmt_ns(best)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:8.1} ns")
    } else if ns < 1e6 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.2} s ", ns / 1e9)
    }
}

/// Declare a benchmark group, in either of upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(test_mode: bool) {
            let mut c: $crate::Criterion = $cfg;
            c.set_test_mode(test_mode);
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running the listed groups. Understands `--test`
/// (smoke mode) and ignores the other flags cargo-bench forwards.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let test_mode = std::env::args().any(|a| a == "--test");
            $( $group(test_mode); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default().sample_size(2);
        c.set_test_mode(true);
        let mut hits = 0u32;
        c.bench_function("unit", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("grp");
            g.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
                hits += 1;
                b.iter(|| black_box(n * 2));
            });
            g.finish();
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn timed_mode_produces_samples() {
        let mut b = Bencher {
            test_mode: false,
            samples: Vec::with_capacity(3),
            iters_per_sample: 1,
        };
        b.iter(|| black_box((0..100).sum::<u64>()));
        assert!(b.samples.len() >= 2);
        assert!(b.iters_per_sample >= 1);
    }
}
