//! Offline stand-in for `serde_json`, built on the vendored `serde`'s
//! [`Value`] tree: a JSON printer (compact + pretty), a recursive-descent
//! parser, and a TT-muncher `json!` macro covering the literal shapes the
//! workspace writes (nested objects/arrays, multi-token expressions).

pub use serde::{Map, Value};

mod parse;

/// Error type shared by serialization and parsing.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Render any `Serialize` into its `Value` tree. Infallible here (the
/// Value model is total), but keeps upstream's fallible signature.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Compact one-line JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse::parse(s)?;
    Ok(T::from_value(&v)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; match serde_json's `null` for them.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Obj(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Build a [`Value`] from JSON-literal syntax.
///
/// TT-muncher: object/array arms are matched *before* the generic
/// `$val:expr` arm so nested `{...}`/`[...]` literals recurse into the
/// macro instead of being parsed as Rust blocks/arrays.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($items:tt)* ]) => { $crate::json_array!(@acc [] $($items)*) };
    ({ $($body:tt)* }) => { $crate::json_object!(@acc [] $($body)*) };
    ($val:expr) => { $crate::to_value(&$val).unwrap() };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Finished: emit the map from accumulated (key, value) pairs.
    (@acc [ $(($k:expr, $v:expr))* ]) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert(($k).to_string(), $v); )*
        $crate::Value::Obj(__m)
    }};
    // key: {object}, ...
    (@acc [ $($acc:tt)* ] $key:tt : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object!(@acc [ $($acc)* (($crate::json_object!(@key $key)), $crate::json!({ $($inner)* })) ] $($rest)*)
    };
    (@acc [ $($acc:tt)* ] $key:tt : { $($inner:tt)* }) => {
        $crate::json_object!(@acc [ $($acc)* (($crate::json_object!(@key $key)), $crate::json!({ $($inner)* })) ])
    };
    // key: [array], ...
    (@acc [ $($acc:tt)* ] $key:tt : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_object!(@acc [ $($acc)* (($crate::json_object!(@key $key)), $crate::json!([ $($inner)* ])) ] $($rest)*)
    };
    (@acc [ $($acc:tt)* ] $key:tt : [ $($inner:tt)* ]) => {
        $crate::json_object!(@acc [ $($acc)* (($crate::json_object!(@key $key)), $crate::json!([ $($inner)* ])) ])
    };
    // key: null, ...  (`null` is not a Rust expr, so it needs its own arm)
    (@acc [ $($acc:tt)* ] $key:tt : null , $($rest:tt)*) => {
        $crate::json_object!(@acc [ $($acc)* (($crate::json_object!(@key $key)), $crate::Value::Null) ] $($rest)*)
    };
    (@acc [ $($acc:tt)* ] $key:tt : null) => {
        $crate::json_object!(@acc [ $($acc)* (($crate::json_object!(@key $key)), $crate::Value::Null) ])
    };
    // key: expr, ...  (expr may span many tokens; `,` is in expr's follow set)
    (@acc [ $($acc:tt)* ] $key:tt : $val:expr , $($rest:tt)*) => {
        $crate::json_object!(@acc [ $($acc)* (($crate::json_object!(@key $key)), $crate::json!($val)) ] $($rest)*)
    };
    (@acc [ $($acc:tt)* ] $key:tt : $val:expr) => {
        $crate::json_object!(@acc [ $($acc)* (($crate::json_object!(@key $key)), $crate::json!($val)) ])
    };
    (@key $k:literal) => { $k };
    (@key $k:ident) => { stringify!($k) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    (@acc [ $($acc:tt)* ]) => {
        $crate::Value::Arr(vec![ $($acc)* ])
    };
    (@acc [ $($acc:tt)* ] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_array!(@acc [ $($acc)* $crate::json!({ $($inner)* }), ] $($rest)*)
    };
    (@acc [ $($acc:tt)* ] { $($inner:tt)* }) => {
        $crate::json_array!(@acc [ $($acc)* $crate::json!({ $($inner)* }), ])
    };
    (@acc [ $($acc:tt)* ] [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_array!(@acc [ $($acc)* $crate::json!([ $($inner)* ]), ] $($rest)*)
    };
    (@acc [ $($acc:tt)* ] [ $($inner:tt)* ]) => {
        $crate::json_array!(@acc [ $($acc)* $crate::json!([ $($inner)* ]), ])
    };
    (@acc [ $($acc:tt)* ] null , $($rest:tt)*) => {
        $crate::json_array!(@acc [ $($acc)* $crate::Value::Null, ] $($rest)*)
    };
    (@acc [ $($acc:tt)* ] null) => {
        $crate::json_array!(@acc [ $($acc)* $crate::Value::Null, ])
    };
    (@acc [ $($acc:tt)* ] $val:expr , $($rest:tt)*) => {
        $crate::json_array!(@acc [ $($acc)* $crate::json!($val), ] $($rest)*)
    };
    (@acc [ $($acc:tt)* ] $val:expr) => {
        $crate::json_array!(@acc [ $($acc)* $crate::json!($val), ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "rivertown",
            "count": 3,
            "nested": {"xs": [1, 2, 3], "flag": true},
            "maybe": null,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        assert!(s.contains("\"name\":\"rivertown\""));
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"a": [1.5, -2.25], "b": {"c": "x\"y"}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn multi_token_exprs_and_idents() {
        let n = 2usize;
        let label = String::from("k");
        let v = json!({
            "sum": 1 + 2,
            "call": label.len(),
            bare_key: n,
        });
        assert_eq!(v.get("sum").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("call").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("bare_key").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s": "a\nbA", "n": -1.5e2, "arr": []}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\nbA"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-150.0));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{invalid").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
    }
}
