//! Recursive-descent JSON parser producing the shared [`Value`] tree.

use super::{Error, Result};
use serde::{Map, Value};

pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}
