//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the *exact API subset it uses* — seeded [`rngs::StdRng`],
//! the [`Rng`]/[`SeedableRng`] traits, and [`seq::SliceRandom`] — backed by a
//! xoshiro256++ generator. Streams are deterministic per seed but are NOT the
//! same streams as upstream `rand` 0.8 (which uses ChaCha12 for `StdRng`);
//! everything in this workspace treats seeds as opaque reproducibility
//! handles, never as cross-library fixtures, so only in-workspace determinism
//! matters.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` over its natural domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from a range. Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over a natural domain (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard {
    /// Draw one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    };
}

float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2⁻⁶⁴·span — irrelevant at workspace scales.
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    };
}

int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(i64);
int_range!(i32);

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Snapshot the generator's internal state. Together with
        /// [`StdRng::from_state`] this allows exact mid-stream save/restore
        /// (e.g. crash-safe training checkpoints): restoring the snapshot
        /// continues the identical sample stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            // All-zero state is the one invalid xoshiro state; it can only
            // come from a corrupted snapshot.
            assert!(s != [0, 0, 0, 0], "invalid all-zero RNG state");
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; splitmix cannot emit
            // four zeros in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let _burn: Vec<u64> = (0..17).map(|_| a.gen::<u64>()).collect();
        let snap = a.state();
        let tail: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let mut b = StdRng::from_state(snap);
        let replay: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = r.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&y));
            let u: f32 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_domain() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..100 {
            let v = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig, "shuffle left 32 elements in place");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(orig.contains(v.choose(&mut r).unwrap()));
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
