//! Offline stand-in for `serde_derive`, written against `proc_macro` alone
//! (no syn/quote available offline). Supports exactly the shape this
//! workspace derives: non-generic structs with named fields. The generated
//! impls target the Value-based traits of the vendored `serde`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Struct name + named fields, extracted from the derive input.
struct StructShape {
    name: String,
    /// (field name, skipped) — skipped fields carry `#[serde(skip, ...)]`:
    /// omitted on serialize, `Default::default()` on deserialize.
    fields: Vec<(String, bool)>,
}

fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (#[...]) and visibility.
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // `pub(crate)` carries a parenthesized group after `pub`.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(name)) => break name.to_string(),
                other => return Err(format!("expected struct name, got {other:?}")),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return Err("derive stand-in supports structs only, not enums".into());
            }
            Some(_) => {}
            None => return Err("no `struct` keyword in derive input".into()),
        }
    };

    // Next meaningful token must be the brace group of named fields
    // (no generics are used on derived types in this workspace).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("derive stand-in does not support generic structs".into());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("derive stand-in does not support tuple/unit structs".into());
            }
            Some(_) => {}
            None => return Err("no field block in derive input".into()),
        }
    };

    // Field names are the idents immediately before a top-level `:`.
    // Types containing `<...>` or nested groups never confuse this because
    // after seeing one `:` we skip until the next top-level `,`, and
    // TokenTree groups (parens/brackets) are atomic.
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        // Skip field attributes and visibility, noting `#[serde(skip)]`.
        let mut skip = false;
        let field = loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        let mut inner = g.stream().into_iter();
                        if let Some(TokenTree::Ident(id)) = inner.next() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(opts)) = inner.next() {
                                    skip |= opts
                                        .stream()
                                        .into_iter()
                                        .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"));
                                }
                            }
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token in fields: {other}")),
                None => break String::new(),
            }
        };
        if field.is_empty() {
            break;
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
        }
        fields.push((field, skip));
        // Skip the type: consume until a `,` at angle-depth 0.
        let mut angle = 0i32;
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    Ok(StructShape { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut inserts = String::new();
    for (f, skip) in &shape.fields {
        if *skip {
            continue;
        }
        inserts.push_str(&format!(
            "__m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __m = ::serde::Map::new();\n\
                 {inserts}\
                 ::serde::Value::Obj(__m)\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut fields = String::new();
    for (f, skip) in &shape.fields {
        if *skip {
            fields.push_str(&format!("{f}: ::std::default::Default::default(),\n"));
            continue;
        }
        fields.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(\n\
                 __v.get({f:?}).unwrap_or(&::serde::Value::Null),\n\
             ).map_err(|e| ::serde::DeError(format!(\"{name}.{f}: {{}}\", e.0)))?,\n",
            name = shape.name,
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 Ok({name} {{ {fields} }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}
