//! `st-recovery`: route recovery from sparse trajectories (§V-C).
//!
//! Implements the STRS framework of [2]: `argmax_r P(t|r)·P(r)` over
//! candidate routes per observation gap. The spatial module `P(r)` is
//! pluggable; plugging DeepST's route likelihood in yields **STRS+**, the
//! paper's Table V comparison.

pub mod strs;
pub mod ttime;

pub use strs::{DeepStSpatial, MarkovSpatial, Recovery, RecoveryConfig, SpatialModel};
pub use ttime::TravelTimeModel;
