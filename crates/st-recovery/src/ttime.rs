//! The temporal inference module of STRS [2]: `P(t | r)`.
//!
//! Travel time of a route is modeled as a Gaussian whose mean and variance
//! are sums of per-segment statistics estimated from historical trips (each
//! trip's observed average speed is attributed to the segments it covers —
//! the same observable-only estimator the WSP baseline uses, plus second
//! moments).

use st_roadnet::{RoadNetwork, Route, SegmentId};

/// Per-segment travel-time statistics.
pub struct TravelTimeModel {
    mean: Vec<f64>,
    var: Vec<f64>,
}

impl TravelTimeModel {
    /// Fit from `(route, duration_secs)` pairs.
    pub fn fit<'a>(net: &RoadNetwork, trips: impl IntoIterator<Item = (&'a Route, f64)>) -> Self {
        let n = net.num_segments();
        // accumulate per-segment per-trip travel times (length / trip speed)
        let mut sum = vec![0.0f64; n];
        let mut sum_sq = vec![0.0f64; n];
        let mut cnt = vec![0u32; n];
        let mut g_sum = 0.0;
        let mut g_sq = 0.0;
        let mut g_cnt = 0u64;
        for (route, duration) in trips {
            let len = net.route_length(route);
            if duration <= 0.0 || len <= 0.0 {
                continue;
            }
            let speed = len / duration;
            for &s in route {
                let t = net.segment(s).length / speed;
                sum[s] += t;
                sum_sq[s] += t * t;
                cnt[s] += 1;
                g_sum += t;
                g_sq += t * t;
                g_cnt += 1;
            }
        }
        let g_mean = if g_cnt > 0 {
            g_sum / g_cnt as f64
        } else {
            10.0
        };
        let g_var = if g_cnt > 1 {
            (g_sq / g_cnt as f64 - g_mean * g_mean).max(1.0)
        } else {
            25.0
        };
        let mut mean = vec![0.0; n];
        let mut var = vec![0.0; n];
        for s in 0..n {
            if cnt[s] >= 2 {
                let m = sum[s] / cnt[s] as f64;
                mean[s] = m;
                var[s] = (sum_sq[s] / cnt[s] as f64 - m * m).max(0.25);
            } else {
                // unobserved: scale global stats by segment length ratio
                let scale = net.segment(s).length / 100.0;
                mean[s] = g_mean * scale.max(0.1);
                var[s] = g_var * scale.max(0.1);
            }
        }
        Self { mean, var }
    }

    /// Expected travel time of a segment (s).
    pub fn mean(&self, s: SegmentId) -> f64 {
        self.mean[s]
    }

    /// Gaussian log-likelihood of observing travel time `t` on `route`.
    pub fn log_prob(&self, route: &[SegmentId], t: f64) -> f64 {
        let mu: f64 = route.iter().map(|&s| self.mean[s]).sum();
        let var: f64 = route.iter().map(|&s| self.var[s]).sum::<f64>().max(1.0);
        -0.5 * ((t - mu) * (t - mu) / var + var.ln() + (2.0 * std::f64::consts::PI).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};

    fn setup() -> (RoadNetwork, TravelTimeModel, Route) {
        let net = grid_city(&GridConfig::small_test(), 9);
        let mut route = vec![0usize];
        for _ in 0..4 {
            route.push(net.next_segments(*route.last().unwrap())[0]);
        }
        let len = net.route_length(&route);
        // several trips at ~8 m/s with slight variation
        let trips: Vec<(Route, f64)> = (0..10)
            .map(|i| (route.clone(), len / (8.0 + 0.1 * i as f64)))
            .collect();
        let model = TravelTimeModel::fit(&net, trips.iter().map(|(r, d)| (r, *d)));
        (net, model, route)
    }

    #[test]
    fn observed_mean_is_sensible() {
        let (net, model, route) = setup();
        let mu: f64 = route.iter().map(|&s| model.mean(s)).sum();
        let len = net.route_length(&route);
        let implied_speed = len / mu;
        assert!(
            (implied_speed - 8.45).abs() < 0.5,
            "implied speed {implied_speed}"
        );
    }

    #[test]
    fn true_time_scores_higher_than_wrong_time() {
        let (net, model, route) = setup();
        let len = net.route_length(&route);
        let t_true = len / 8.45;
        let good = model.log_prob(&route, t_true);
        let bad = model.log_prob(&route, t_true * 3.0);
        assert!(good > bad);
    }

    #[test]
    fn discriminates_between_routes_by_time() {
        let (net, model, route) = setup();
        // a much longer route should fit a long observed time better
        let long_route: Route = {
            let mut r = route.clone();
            for _ in 0..6 {
                let nexts = net.next_segments(*r.last().unwrap());
                r.push(nexts[nexts.len() - 1]);
            }
            r
        };
        let t_long: f64 = long_route.iter().map(|&s| model.mean(s)).sum();
        assert!(model.log_prob(&long_route, t_long) > model.log_prob(&route, t_long));
    }

    #[test]
    fn empty_history_does_not_panic() {
        let net = grid_city(&GridConfig::small_test(), 9);
        let model = TravelTimeModel::fit(&net, std::iter::empty());
        assert!(model.log_prob(&[0, 1], 30.0).is_finite());
    }
}
