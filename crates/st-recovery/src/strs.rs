//! STRS route recovery (§V-C of the paper).
//!
//! Given a sparse trajectory, infer the traveled route between consecutive
//! observations by maximizing `P(t|r)·P(r)` over candidate routes:
//! the temporal module `P(t|r)` is [`crate::ttime::TravelTimeModel`]; the
//! spatial module `P(r)` is pluggable — a higher-order Markov prior stands
//! in for STRS's inverse-RL module, and substituting DeepST's route
//! likelihood yields **STRS+**.

use std::collections::HashMap;

use st_core::{DeepSt, TripContext};
use st_mapmatch::{MapMatcher, MatchConfig};
use st_roadnet::{k_shortest_routes, RoadNetwork, Route, SegmentId};
use st_sim::GpsPoint;

use crate::ttime::TravelTimeModel;

/// A spatial transition prior `log P(r)` over candidate routes.
pub trait SpatialModel {
    /// Log spatial likelihood of a candidate gap route. `dest_norm` is the
    /// normalized coordinate of the trajectory's final destination and
    /// `slot_id`/`traffic` identify the real-time traffic tensor; models
    /// that don't use them ignore them.
    fn log_prob(
        &self,
        net: &RoadNetwork,
        route: &[SegmentId],
        dest_norm: [f32; 2],
        traffic: &[f32],
        slot_id: usize,
    ) -> f64;

    /// Display name.
    fn name(&self) -> &str;
}

/// Second-order Markov spatial prior with backoff — the stand-in for STRS's
/// inverse-RL spatial module (see DESIGN.md §1).
pub struct MarkovSpatial {
    /// first-order counts: (a, b) -> count
    uni: HashMap<(SegmentId, SegmentId), f64>,
    /// second-order counts: (a, b, c) -> count
    bi: HashMap<(SegmentId, SegmentId, SegmentId), f64>,
}

impl MarkovSpatial {
    /// Fit transition counts from historical routes.
    pub fn fit<'a>(routes: impl IntoIterator<Item = &'a Route>) -> Self {
        let mut uni = HashMap::new();
        let mut bi = HashMap::new();
        for r in routes {
            for w in r.windows(2) {
                *uni.entry((w[0], w[1])).or_insert(0.0) += 1.0;
            }
            for w in r.windows(3) {
                *bi.entry((w[0], w[1], w[2])).or_insert(0.0) += 1.0;
            }
        }
        Self { uni, bi }
    }
}

impl SpatialModel for MarkovSpatial {
    fn log_prob(
        &self,
        net: &RoadNetwork,
        route: &[SegmentId],
        _dest: [f32; 2],
        _traffic: &[f32],
        _slot: usize,
    ) -> f64 {
        let mut total = 0.0;
        for i in 1..route.len() {
            let cur = route[i - 1];
            let nexts = net.next_segments(cur);
            let deg = nexts.len().max(1) as f64;
            // second-order with backoff to first-order, add-one smoothed
            let (num, den) = if i >= 2 {
                let c2 = self
                    .bi
                    .get(&(route[i - 2], cur, route[i]))
                    .copied()
                    .unwrap_or(0.0);
                if c2 > 0.0 {
                    let den: f64 = nexts
                        .iter()
                        .map(|&n| self.bi.get(&(route[i - 2], cur, n)).copied().unwrap_or(0.0))
                        .sum();
                    (c2 + 1.0, den + deg)
                } else {
                    let c1 = self.uni.get(&(cur, route[i])).copied().unwrap_or(0.0);
                    let den: f64 = nexts
                        .iter()
                        .map(|&n| self.uni.get(&(cur, n)).copied().unwrap_or(0.0))
                        .sum();
                    (c1 + 1.0, den + deg)
                }
            } else {
                let c1 = self.uni.get(&(cur, route[i])).copied().unwrap_or(0.0);
                let den: f64 = nexts
                    .iter()
                    .map(|&n| self.uni.get(&(cur, n)).copied().unwrap_or(0.0))
                    .sum();
                (c1 + 1.0, den + deg)
            };
            total += (num / den).ln();
        }
        total
    }

    fn name(&self) -> &str {
        "STRS"
    }
}

/// DeepST as the spatial module (STRS+), with per-slot context caching.
pub struct DeepStSpatial<'m> {
    model: &'m DeepSt,
    cache: std::cell::RefCell<HashMap<(usize, [u32; 2]), TripContext>>,
}

impl<'m> DeepStSpatial<'m> {
    /// Wrap a trained DeepST model.
    pub fn new(model: &'m DeepSt) -> Self {
        Self {
            model,
            cache: std::cell::RefCell::new(HashMap::new()),
        }
    }

    fn context(&self, dest_norm: [f32; 2], traffic: &[f32], slot: usize) -> TripContext {
        let key = (slot, [dest_norm[0].to_bits(), dest_norm[1].to_bits()]);
        let mut cache = self.cache.borrow_mut();
        cache
            .entry(key)
            .or_insert_with(|| {
                let c = self
                    .model
                    .cfg
                    .use_traffic
                    .then(|| self.model.encode_traffic(traffic));
                self.model.encode_context(dest_norm, c)
            })
            .clone()
    }
}

impl SpatialModel for DeepStSpatial<'_> {
    fn log_prob(
        &self,
        net: &RoadNetwork,
        route: &[SegmentId],
        dest_norm: [f32; 2],
        traffic: &[f32],
        slot: usize,
    ) -> f64 {
        let ctx = self.context(dest_norm, traffic, slot);
        self.model.score_route(net, route, &ctx)
    }

    fn name(&self) -> &str {
        "STRS+"
    }
}

/// Recovery configuration.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Number of candidate routes per gap (Yen's k).
    pub k_candidates: usize,
    /// Map-matching settings for the sparse observations.
    pub matching: MatchConfig,
    /// Relative weight of the spatial module against the temporal module.
    pub spatial_weight: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            k_candidates: 5,
            matching: MatchConfig {
                beta: 400.0,
                cand_radius: 150.0,
                ..MatchConfig::default()
            },
            spatial_weight: 1.0,
        }
    }
}

/// The STRS recovery engine: `argmax_r P(t|r)·P(r)` per observation gap.
pub struct Recovery<'a, S: SpatialModel> {
    net: &'a RoadNetwork,
    ttime: &'a TravelTimeModel,
    spatial: &'a S,
    matcher: MapMatcher<'a>,
    cfg: RecoveryConfig,
}

impl<'a, S: SpatialModel> Recovery<'a, S> {
    /// Assemble a recovery engine (builds the map-matching index once).
    pub fn new(
        net: &'a RoadNetwork,
        ttime: &'a TravelTimeModel,
        spatial: &'a S,
        cfg: RecoveryConfig,
    ) -> Self {
        let matcher = MapMatcher::new(net, cfg.matching.clone());
        Self {
            net,
            ttime,
            spatial,
            matcher,
            cfg,
        }
    }

    /// Recover the full route underlying a sparse trajectory.
    ///
    /// `dest_norm`, `traffic`, `slot_id` provide the context the spatial
    /// module may use. Returns `None` when matching or candidate generation
    /// fails.
    pub fn recover(
        &self,
        traj: &[GpsPoint],
        dest_norm: [f32; 2],
        traffic: &[f32],
        slot_id: usize,
    ) -> Option<Route> {
        if traj.len() < 2 {
            return None;
        }
        let anchors = self.matcher.match_points(traj)?;
        let mut full: Route = vec![anchors[0]];
        for i in 1..anchors.len() {
            let (from, to) = (full.last().copied().unwrap_or(anchors[0]), anchors[i]);
            if from == to {
                continue;
            }
            let dt = traj[i].t - traj[i - 1].t;
            let gap = self.recover_gap(from, to, dt, dest_norm, traffic, slot_id)?;
            full.extend_from_slice(&gap[1..]);
        }
        Some(full)
    }

    /// Recover a single observation gap: score the k shortest candidate
    /// routes by `log P(t|r) + w·log P(r)` and return the best.
    pub fn recover_gap(
        &self,
        from: SegmentId,
        to: SegmentId,
        travel_time: f64,
        dest_norm: [f32; 2],
        traffic: &[f32],
        slot_id: usize,
    ) -> Option<Route> {
        let cands = k_shortest_routes(self.net, from, to, self.cfg.k_candidates, &|s| {
            self.ttime.mean(s)
        });
        cands
            .into_iter()
            .map(|c| {
                let temporal = self.ttime.log_prob(&c.route, travel_time);
                let spatial = self
                    .spatial
                    .log_prob(self.net, &c.route, dest_norm, traffic, slot_id);
                (c.route, temporal + self.cfg.spatial_weight * spatial)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_sim::{downsample, CityPreset, Dataset};

    fn setup() -> (Dataset, TravelTimeModel, MarkovSpatial) {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 150, 31);
        let sp = ds.default_split();
        let train_routes: Vec<&Route> = sp.train.iter().map(|&i| &ds.trips[i].route).collect();
        let ttime = TravelTimeModel::fit(
            &ds.net,
            sp.train
                .iter()
                .map(|&i| (&ds.trips[i].route, ds.trips[i].duration())),
        );
        let spatial = MarkovSpatial::fit(train_routes);
        (ds, ttime, spatial)
    }

    #[test]
    fn markov_prefers_frequent_routes() {
        let (ds, _, spatial) = setup();
        // the most common transition out of some segment should beat a rare one
        let mut any_checked = false;
        for s in 0..ds.net.num_segments() {
            let nexts = ds.net.next_segments(s);
            if nexts.len() < 2 {
                continue;
            }
            let scores: Vec<f64> = nexts
                .iter()
                .map(|&n| spatial.log_prob(&ds.net, &[s, n], [0.0, 0.0], &[], 0))
                .collect();
            let spread = scores.iter().cloned().fold(f64::MIN, f64::max)
                - scores.iter().cloned().fold(f64::MAX, f64::min);
            if spread > 0.1 {
                any_checked = true;
                break;
            }
        }
        assert!(any_checked, "Markov prior is uniform everywhere");
    }

    #[test]
    fn recover_gap_returns_connected_route() {
        let (ds, ttime, spatial) = setup();
        let rec = Recovery::new(&ds.net, &ttime, &spatial, RecoveryConfig::default());
        let trip = &ds.trips[0];
        let (from, to) = (trip.route[0], *trip.route.last().unwrap());
        let t = trip.duration();
        let gap = rec.recover_gap(from, to, t, [0.5, 0.5], &[], 0).unwrap();
        assert!(ds.net.is_valid_route(&gap));
        assert_eq!(*gap.first().unwrap(), from);
        assert_eq!(*gap.last().unwrap(), to);
    }

    #[test]
    fn recovers_sparse_trajectories_reasonably() {
        let (ds, ttime, spatial) = setup();
        let rec = Recovery::new(&ds.net, &ttime, &spatial, RecoveryConfig::default());
        let sp = ds.default_split();
        let mut scored = 0;
        let mut acc_sum = 0.0;
        for &i in sp.test.iter().take(15) {
            let trip = &ds.trips[i];
            let sparse = downsample(&trip.gps, 60.0);
            if sparse.len() < 2 {
                continue;
            }
            let dest = ds.unit_coord(&trip.dest_coord);
            let Some(recovered) = rec.recover(&sparse, dest, &[], 0) else {
                continue;
            };
            assert!(ds.net.is_valid_route(&recovered));
            // accuracy (Eq. 9)
            let set: std::collections::BTreeSet<_> = recovered.iter().collect();
            let inter = trip.route.iter().filter(|s| set.contains(s)).count();
            acc_sum += inter as f64 / trip.route.len().max(recovered.len()) as f64;
            scored += 1;
        }
        assert!(scored >= 10, "too few recoveries: {scored}");
        let acc = acc_sum / scored as f64;
        assert!(acc > 0.6, "recovery accuracy too low: {acc}");
    }

    /// The spatial model STRS+ plugs in ([`DeepStSpatial`]) delegates every
    /// score to the wrapped DeepST: its graph must pass static analysis
    /// clean, and a planted defect on the same graph must be detected.
    #[test]
    fn strs_spatial_model_graph_passes_static_analysis() {
        use st_core::{DeepStConfig, Example};
        use st_tensor::analyze::LintKind;
        use st_tensor::{init, ops, Array, Binder, Tape};
        use std::sync::Arc;

        let (ds, _, _) = setup();
        let cfg = DeepStConfig::new(ds.net.num_segments(), ds.net.max_out_degree(), 8, 8)
            .without_traffic();
        let model = DeepSt::new(cfg, 7);
        let _spatial = DeepStSpatial::new(&model);
        let examples: Vec<Example> = ds
            .trips
            .iter()
            .filter_map(|t| {
                Example::new(
                    &ds.net,
                    t.route.clone(),
                    ds.unit_coord(&t.dest_coord),
                    Arc::new(Vec::new()),
                    0,
                )
            })
            .take(8)
            .collect();
        let refs: Vec<&Example> = examples.iter().collect();
        assert!(!refs.is_empty());

        // Clean: zero false positives on the graph STRS+ scores with.
        let diags = model.analyze_graph(&refs);
        assert!(diags.is_empty(), "analyzer false positives: {diags:?}");

        // Planted: a dead op subgraph on the same training tape is found.
        let mut rng = init::rng(0);
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let (loss, _) = model.batch_loss(&binder, &refs, &mut rng, false);
        let _stray = ops::square(binder.input(Array::vector(vec![1.0, 2.0])));
        let diags = st_tensor::analyze(
            &tape.export_spec(),
            loss.id(),
            &binder.bound_params(),
            &Default::default(),
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, LintKind::DetachedSubgraph);
    }
}
