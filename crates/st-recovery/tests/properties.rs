//! Property tests of the STRS recovery components.

use proptest::prelude::*;

use st_recovery::{MarkovSpatial, SpatialModel, TravelTimeModel};
use st_roadnet::{grid_city, GridConfig, Route};

fn make_route(net: &st_roadnet::RoadNetwork, start: usize, len: usize, bias: usize) -> Route {
    let mut r = vec![start % net.num_segments()];
    for step in 0..len {
        let nexts = net.next_segments(*r.last().unwrap());
        r.push(nexts[(bias + step) % nexts.len()]);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The Markov spatial prior returns finite, non-positive log-probs for
    /// any valid route, trained on any corpus.
    #[test]
    fn markov_logprob_well_formed(
        seed in 0u64..200,
        start in 0usize..50,
        len in 1usize..12,
        n_train in 0usize..20,
    ) {
        let net = grid_city(&GridConfig::small_test(), seed);
        let corpus: Vec<Route> = (0..n_train)
            .map(|i| make_route(&net, i * 3, 5, i))
            .collect();
        let spatial = MarkovSpatial::fit(corpus.iter());
        let route = make_route(&net, start, len, seed as usize);
        let lp = spatial.log_prob(&net, &route, [0.0, 0.0], &[], 0);
        prop_assert!(lp.is_finite());
        prop_assert!(lp <= 1e-9, "log-prob positive: {lp}");
        // extending a route never increases its log-probability
        let lp_prefix = spatial.log_prob(&net, &route[..route.len() - 1], [0.0, 0.0], &[], 0);
        prop_assert!(lp <= lp_prefix + 1e-9);
    }

    /// Travel-time likelihood peaks at the route's expected time.
    #[test]
    fn ttime_peaks_at_expectation(seed in 0u64..200, start in 0usize..50, len in 2usize..10) {
        let net = grid_city(&GridConfig::small_test(), seed);
        let train: Vec<(Route, f64)> = (0..10)
            .map(|i| {
                let r = make_route(&net, i * 5, 6, i);
                let d = net.route_length(&r) / 8.0; // 8 m/s
                (r, d)
            })
            .collect();
        let model = TravelTimeModel::fit(&net, train.iter().map(|(r, d)| (r, *d)));
        let route = make_route(&net, start, len, 1);
        let mu: f64 = route.iter().map(|&s| model.mean(s)).sum();
        let at_mu = model.log_prob(&route, mu);
        prop_assert!(at_mu >= model.log_prob(&route, mu * 0.3));
        prop_assert!(at_mu >= model.log_prob(&route, mu * 3.0));
        prop_assert!(at_mu.is_finite());
    }

    /// Travel-time means are positive for every segment regardless of how
    /// sparse the training corpus is.
    #[test]
    fn ttime_means_positive(seed in 0u64..200, n_train in 0usize..5) {
        let net = grid_city(&GridConfig::small_test(), seed);
        let train: Vec<(Route, f64)> = (0..n_train)
            .map(|i| {
                let r = make_route(&net, i, 4, i);
                let d = net.route_length(&r) / 7.0;
                (r, d)
            })
            .collect();
        let model = TravelTimeModel::fit(&net, train.iter().map(|(r, d)| (r, *d)));
        for s in 0..net.num_segments() {
            prop_assert!(model.mean(s) > 0.0, "segment {s} mean {}", model.mean(s));
        }
    }
}
