//! `st-mapmatch`: Hidden-Markov-Model map matching (Newson & Krumm, 2009 —
//! the paper's reference [42]), used to map GPS trajectories onto the road
//! network for route recovery.

pub mod hmm;

pub use hmm::{route_distance, MapMatcher, MatchConfig};
