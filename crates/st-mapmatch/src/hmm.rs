//! Hidden-Markov-Model map matching (Newson & Krumm, SIGSPATIAL 2009 — the
//! paper's reference [42]).
//!
//! States at each GPS point are nearby candidate segments; the emission
//! probability decays with the Gaussian of the projection distance, and the
//! transition probability decays exponentially with the difference between
//! the straight-line distance of consecutive points and the on-network route
//! distance between their projections. Decoding is Viterbi.

use st_roadnet::{geo, Point, RoadNetwork, Route, SegmentId, SegmentIndex};
use st_sim::GpsPoint;

/// Map-matcher configuration.
#[derive(Debug, Clone)]
pub struct MatchConfig {
    /// GPS noise standard deviation σ_z (m).
    pub sigma_z: f64,
    /// Transition scale β (m) — tolerance for detours between fixes.
    pub beta: f64,
    /// Candidate search radius (m).
    pub cand_radius: f64,
    /// Maximum candidates per point (closest kept).
    pub max_cands: usize,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            sigma_z: 15.0,
            beta: 60.0,
            cand_radius: 120.0,
            max_cands: 8,
        }
    }
}

/// The HMM map matcher.
pub struct MapMatcher<'a> {
    net: &'a RoadNetwork,
    index: SegmentIndex,
    cfg: MatchConfig,
}

impl<'a> MapMatcher<'a> {
    /// Build a matcher (constructs a spatial index over the network).
    pub fn new(net: &'a RoadNetwork, cfg: MatchConfig) -> Self {
        let index = SegmentIndex::build(net, cfg.cand_radius.max(50.0));
        Self { net, index, cfg }
    }

    /// Candidate segments for a point, with projection distances, closest
    /// first.
    fn candidates(&self, p: &Point) -> Vec<(SegmentId, f64)> {
        let mut cands: Vec<(SegmentId, f64)> = self
            .index
            .candidates(p, self.cfg.cand_radius + 400.0)
            .into_iter()
            .map(|s| (s, self.net.dist_to_segment(p, s)))
            .filter(|&(_, d)| d <= self.cfg.cand_radius)
            .collect();
        cands.sort_by(|a, b| a.1.total_cmp(&b.1));
        cands.truncate(self.cfg.max_cands);
        if cands.is_empty() {
            // fall back to the single nearest segment so matching never
            // breaks on an outlier fix
            if let Some(s) = self.index.nearest(self.net, p) {
                cands.push((s, self.net.dist_to_segment(p, s)));
            }
        }
        cands
    }

    /// Viterbi decode: the most likely candidate segment for every GPS point.
    /// Returns `None` for trajectories with fewer than 1 point.
    pub fn match_points(&self, traj: &[GpsPoint]) -> Option<Vec<SegmentId>> {
        if traj.is_empty() {
            return None;
        }
        let cand_sets: Vec<Vec<(SegmentId, f64)>> =
            traj.iter().map(|gp| self.candidates(&gp.p)).collect();
        if cand_sets.iter().any(Vec::is_empty) {
            return None;
        }
        // log emission: -d²/(2σ²)
        let emit = |d: f64| -(d * d) / (2.0 * self.cfg.sigma_z * self.cfg.sigma_z);
        let mut score: Vec<f64> = cand_sets[0].iter().map(|&(_, d)| emit(d)).collect();
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(traj.len());
        for i in 1..traj.len() {
            let gc = traj[i - 1].p.dist(&traj[i].p);
            let mut new_score = vec![f64::NEG_INFINITY; cand_sets[i].len()];
            let mut bp = vec![0usize; cand_sets[i].len()];
            for (j, &(sj, dj)) in cand_sets[i].iter().enumerate() {
                for (k, &(sk, _)) in cand_sets[i - 1].iter().enumerate() {
                    // st-lint: allow(float-eq) — NEG_INFINITY is an exact sentinel
                    if score[k] == f64::NEG_INFINITY {
                        continue;
                    }
                    let bound = gc * 4.0 + 8.0 * self.cfg.beta + 500.0;
                    let lt =
                        match route_distance(self.net, sk, &traj[i - 1].p, sj, &traj[i].p, bound) {
                            Some(rd) => -(rd - gc).abs() / self.cfg.beta,
                            None => continue,
                        };
                    let s = score[k] + lt + emit(dj);
                    if s > new_score[j] {
                        new_score[j] = s;
                        bp[j] = k;
                    }
                }
            }
            // If every transition was pruned (bound too tight / disconnected),
            // restart the chain at this point rather than failing outright.
            // st-lint: allow(float-eq) — NEG_INFINITY is an exact sentinel
            if new_score.iter().all(|&s| s == f64::NEG_INFINITY) {
                new_score = cand_sets[i].iter().map(|&(_, d)| emit(d)).collect();
            }
            score = new_score;
            back.push(bp);
        }
        // Backtrack.
        let mut j = score
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)?;
        let mut out = vec![0usize; traj.len()];
        out[traj.len() - 1] = j;
        for i in (1..traj.len()).rev() {
            j = back[i - 1][j];
            out[i - 1] = j;
        }
        Some(
            out.iter()
                .enumerate()
                .map(|(i, &k)| cand_sets[i][k].0)
                .collect(),
        )
    }

    /// Match and stitch: the full connected route through the matched
    /// segments (shortest-path gap filling between consecutive matches).
    pub fn match_route(&self, traj: &[GpsPoint]) -> Option<Route> {
        let matched = self.match_points(traj)?;
        let mut route: Route = vec![matched[0]];
        for &next in &matched[1..] {
            let cur = route.last().copied().unwrap_or(matched[0]);
            if next == cur {
                continue;
            }
            let (path, _) =
                st_roadnet::shortest_route(self.net, cur, next, &|s| self.net.segment(s).length)?;
            route.extend_from_slice(&path[1..]);
        }
        Some(route)
    }
}

/// On-network travel distance between the projection of `p_from` on
/// `from` and the projection of `p_to` on `to`, bounded Dijkstra with early
/// exit past `bound` meters. Returns `None` when no route within the bound.
pub fn route_distance(
    net: &RoadNetwork,
    from: SegmentId,
    p_from: &Point,
    to: SegmentId,
    p_to: &Point,
    bound: f64,
) -> Option<f64> {
    let (a1, b1) = (net.start_point(from), net.end_point(from));
    let (_, t_from) = geo::project_onto_segment(p_from, &a1, &b1);
    let (a2, b2) = (net.start_point(to), net.end_point(to));
    let (_, t_to) = geo::project_onto_segment(p_to, &a2, &b2);
    if from == to {
        return Some(((t_to - t_from) * net.segment(from).length).abs());
    }
    // Remaining distance on `from` after the projection, then the shortest
    // chain of intermediate segments, then the prefix of `to`.
    let head = (1.0 - t_from) * net.segment(from).length;
    let tail = t_to * net.segment(to).length;
    // Bounded Dijkstra over segment lengths: cost of the path between the
    // exit of `from` and the entry of `to` (sum of full intermediate
    // segments).
    let mid = bounded_mid_distance(net, from, to, bound)?;
    Some(head + mid + tail)
}

/// Sum of intermediate-segment lengths on the shortest chain
/// `from → … → to`, excluding both endpoints. Early-exits past `bound`.
fn bounded_mid_distance(
    net: &RoadNetwork,
    from: SegmentId,
    to: SegmentId,
    bound: f64,
) -> Option<f64> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct E(f64, SegmentId);
    impl Eq for E {}
    impl Ord for E {
        fn cmp(&self, other: &Self) -> Ordering {
            other.0.total_cmp(&self.0)
        }
    }
    impl PartialOrd for E {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut dist = std::collections::HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(from, 0.0f64);
    heap.push(E(0.0, from));
    while let Some(E(d, seg)) = heap.pop() {
        if d > bound {
            return None;
        }
        if seg == to {
            // subtract `to`'s own length: the caller adds the partial prefix
            return Some(d - net.segment(to).length);
        }
        if d > *dist.get(&seg).unwrap_or(&f64::INFINITY) {
            continue;
        }
        for &next in net.next_segments(seg) {
            let nd = d + net.segment(next).length;
            if nd <= bound && nd < *dist.get(&next).unwrap_or(&f64::INFINITY) {
                dist.insert(next, nd);
                heap.push(E(nd, next));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};
    use st_sim::{sample_gps, CityPreset, Dataset, TrafficConfig, TrafficModel};

    #[test]
    fn route_distance_same_segment() {
        let net = grid_city(&GridConfig::small_test(), 0);
        let a = net.start_point(0);
        let b = net.end_point(0);
        let p1 = a.lerp(&b, 0.2);
        let p2 = a.lerp(&b, 0.7);
        let d = route_distance(&net, 0, &p1, 0, &p2, 1e9).unwrap();
        assert!((d - 0.5 * net.segment(0).length).abs() < 1e-6);
    }

    #[test]
    fn route_distance_adjacent() {
        let net = grid_city(&GridConfig::small_test(), 0);
        let s = 0;
        let n = net.next_segments(s)[0];
        let p1 = net.start_point(s).lerp(&net.end_point(s), 0.5);
        let p2 = net.start_point(n).lerp(&net.end_point(n), 0.5);
        let d = route_distance(&net, s, &p1, n, &p2, 1e9).unwrap();
        let want = 0.5 * net.segment(s).length + 0.5 * net.segment(n).length;
        assert!((d - want).abs() < 1e-6, "{d} vs {want}");
    }

    #[test]
    fn route_distance_respects_bound() {
        let net = grid_city(&GridConfig::small_test(), 0);
        let far = net.num_segments() - 1;
        let p1 = net.midpoint(0);
        let p2 = net.midpoint(far);
        assert!(route_distance(&net, 0, &p1, far, &p2, 1.0).is_none());
    }

    #[test]
    fn matches_noiseless_dense_trace_exactly() {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 40, 21);
        let matcher = MapMatcher::new(&ds.net, MatchConfig::default());
        let tm = TrafficModel::generate(&ds.net, &TrafficConfig::default(), 99);
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        let mut exact = 0;
        let mut total = 0;
        for trip in ds.trips.iter().take(10) {
            // re-sample the trip's route densely with zero noise
            let (traj, _) = sample_gps(
                &ds.net,
                &tm,
                &trip.route,
                trip.start_time,
                4.0,
                0.0,
                &mut rng,
            );
            let matched = matcher.match_route(&traj).expect("match failed");
            total += 1;
            // The true route must appear as a contiguous subsequence; the
            // matcher may overhang by at most one segment at each end,
            // because the first/last fixes sit exactly on an intersection
            // vertex, where the incident segment is genuinely ambiguous.
            let contains = matched
                .windows(trip.route.len())
                .any(|w| w == trip.route.as_slice());
            if contains && matched.len() <= trip.route.len() + 2 {
                exact += 1;
            }
        }
        // Trips in the test city are forced to be ≥ 1 km on a 750 m-wide
        // grid, so some routes double back; twin-segment ambiguity then
        // occasionally costs more than the endpoint slack. Require 8/10.
        assert!(
            exact >= total - 2,
            "only {exact}/{total} noiseless traces matched (up to endpoint ambiguity)"
        );
    }

    #[test]
    fn noisy_trace_recovers_most_of_route() {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 40, 22);
        let matcher = MapMatcher::new(&ds.net, MatchConfig::default());
        let mut good = 0;
        let mut total = 0;
        for trip in ds.trips.iter().take(10) {
            let matched = matcher.match_route(&trip.gps).expect("match failed");
            let inter: usize = {
                let set: std::collections::BTreeSet<_> = matched.iter().collect();
                trip.route.iter().filter(|s| set.contains(s)).count()
            };
            total += trip.route.len();
            good += inter;
        }
        let frac = good as f64 / total as f64;
        assert!(frac > 0.8, "noisy match recall too low: {frac}");
    }

    #[test]
    fn empty_trajectory_is_none() {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 5, 23);
        let matcher = MapMatcher::new(&ds.net, MatchConfig::default());
        assert!(matcher.match_points(&[]).is_none());
    }

    #[test]
    fn single_point_matches_nearest() {
        let ds = Dataset::generate(&CityPreset::tiny_test(), 5, 24);
        let matcher = MapMatcher::new(&ds.net, MatchConfig::default());
        let p = ds.net.midpoint(3);
        let gp = st_sim::GpsPoint {
            p,
            t: 0.0,
            speed: 1.0,
        };
        let m = matcher.match_points(&[gp]).unwrap();
        assert_eq!(m.len(), 1);
        assert!(ds.net.dist_to_segment(&p, m[0]) < 1.0);
    }
}
