//! End-to-end tests of the fault-tolerant training loop (DESIGN.md §8):
//! crash-safe checkpoint/resume, divergence rollback with LR backoff, and
//! worker-failure containment, each driven by the deterministic
//! [`st_core::faultinject`] harness.
//!
//! The load-bearing property throughout is **bit-identity**: a run that
//! crashes and resumes, or whose workers panic and are retried, must end
//! with exactly the same parameter bits as the run nothing happened to.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use st_core::faultinject::{flip_byte, interrupted_write, truncate_file};
use st_core::train::Trainer;
use st_core::{
    DeepSt, DeepStConfig, Example, FaultInjector, FaultPlan, TrainConfig, TrainError, TrainEvent,
};
use st_nn::Module;
use st_roadnet::{grid_city, GridConfig, RoadNetwork};
use st_tensor::init;

/// A toy world: routes from a tiny grid with a fixed transition habit
/// (mirrors the unit-test helper in `st-core/src/train.rs`).
fn toy_examples(n: usize) -> (RoadNetwork, Vec<Example>) {
    let net = grid_city(&GridConfig::small_test(), 1);
    let tensor = Arc::new(vec![0.3f32; 64]);
    let mut out = Vec::new();
    let mut cur_seed = 0usize;
    while out.len() < n {
        cur_seed += 1;
        let start = cur_seed % net.num_segments();
        let mut route = vec![start];
        for step in 0..6 {
            let nexts = net.next_segments(*route.last().unwrap());
            let pick = if (cur_seed + step).is_multiple_of(5) {
                nexts.len() - 1
            } else {
                0
            };
            route.push(nexts[pick]);
        }
        let end = net.midpoint(*route.last().unwrap());
        let (min, max) = net.bounding_box();
        let dest = [
            ((end.x - min.x) / (max.x - min.x)) as f32,
            ((end.y - min.y) / (max.y - min.y)) as f32,
        ];
        if let Some(ex) = Example::new(&net, route, dest, Arc::clone(&tensor), 0) {
            out.push(ex);
        }
    }
    (net, out)
}

fn toy_model(net: &RoadNetwork, seed: u64) -> DeepSt {
    let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
    DeepSt::new(cfg, seed)
}

fn base_config() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 16,
        lr: 5e-3,
        patience: None,
        num_threads: 1,
        shard_size: 16,
        ..TrainConfig::default()
    }
}

/// Every parameter and batch-norm buffer of the model as raw f32 bits, for
/// exact (not approximate) comparison.
fn state_bits(model: &DeepSt) -> Vec<(String, Vec<u32>)> {
    model
        .state()
        .into_iter()
        .chain(model.buffers())
        .map(|(name, arr)| (name, arr.data().iter().map(|v| v.to_bits()).collect()))
        .collect()
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("st_core_ft_{tag}_{}.ckpt", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let mut tmp = path.clone().into_os_string();
    tmp.push(".tmp");
    let _ = std::fs::remove_file(PathBuf::from(tmp));
}

/// Tentpole acceptance: a run killed mid-epoch (injected `crash_at`) and
/// resumed from its last checkpoint finishes with parameters bit-identical
/// to a run that was never interrupted.
#[test]
fn resume_after_injected_crash_is_bit_identical() {
    let (net, examples) = toy_examples(40);
    let path = tmp_path("crash");
    cleanup(&path);

    // Reference: 3 epochs, no faults, no checkpointing.
    let mut reference = Trainer::new(toy_model(&net, 7), base_config());
    let mut rng = init::rng(11);
    reference
        .fit_ft(&examples, None, &mut rng, None)
        .expect("reference run failed");

    // Victim: same seed, checkpoint every epoch, killed in epoch 1 batch 1.
    let cfg = TrainConfig {
        checkpoint_path: Some(path.clone()),
        checkpoint_every: 1,
        ..base_config()
    };
    let injector = FaultInjector::new(FaultPlan {
        crash_at: Some((1, 1)),
        ..FaultPlan::default()
    });
    let mut victim = Trainer::new(toy_model(&net, 7), cfg.clone());
    let mut rng = init::rng(11);
    let err = victim
        .fit_ft(&examples, None, &mut rng, Some(&injector))
        .expect_err("injected crash did not surface");
    assert!(
        matches!(err, TrainError::Crashed { epoch: 1, batch: 1 }),
        "unexpected error: {err}"
    );
    assert_eq!(injector.fired().len(), 1);
    assert!(path.exists(), "no checkpoint survived the crash");

    // Survivor: fresh process — different init seed, different RNG seed;
    // everything that matters comes from the checkpoint.
    let cfg = TrainConfig {
        resume_from: Some(path.clone()),
        ..cfg
    };
    let mut survivor = Trainer::new(toy_model(&net, 999), cfg);
    let mut rng = init::rng(999);
    let hist = survivor
        .fit_ft(&examples, None, &mut rng, None)
        .expect("resumed run failed");
    assert_eq!(hist.resumed_from, Some(1));
    assert!(matches!(
        hist.events.first(),
        Some(TrainEvent::Resumed { epoch: 1, .. })
    ));

    assert_eq!(
        state_bits(&reference.model),
        state_bits(&survivor.model),
        "crash + resume drifted from the uninterrupted run"
    );
    cleanup(&path);
}

/// An injected NaN loss trips the divergence detector; the trainer rolls
/// back to the last good state, halves the learning rate, and the retried
/// epoch (fault is fire-once) converges to a finite loss.
#[test]
fn nan_divergence_rolls_back_and_recovers() {
    let (net, examples) = toy_examples(40);
    let injector = FaultInjector::new(FaultPlan {
        nan_loss_at: vec![(1, 0)],
        ..FaultPlan::default()
    });
    let mut trainer = Trainer::new(toy_model(&net, 3), base_config());
    let mut rng = init::rng(5);
    let hist = trainer
        .fit_ft(&examples, None, &mut rng, Some(&injector))
        .expect("rollback should recover, not abort");

    let diverged = hist.events.iter().any(|e| {
        matches!(
            e,
            TrainEvent::Divergence {
                epoch: 1,
                batch: 0,
                ..
            }
        )
    });
    assert!(diverged, "no divergence event recorded: {:?}", hist.events);
    let rolled = hist.events.iter().find_map(|e| match e {
        TrainEvent::RolledBack {
            rollbacks, new_lr, ..
        } => Some((*rollbacks, *new_lr)),
        _ => None,
    });
    let (rollbacks, new_lr) = rolled.expect("no rollback event recorded");
    assert_eq!(rollbacks, 1);
    assert!(
        (new_lr - 5e-3 * 0.5).abs() < 1e-9,
        "LR not halved: {new_lr}"
    );
    assert_eq!(hist.epochs.len(), 3, "retried epoch missing from history");
    assert!(hist.epochs.iter().all(|e| e.train_loss.is_finite()));
    assert!(injector.fired().len() == 1 && injector.pending() == 0);
}

/// Divergence on every retry (fresh fault per attempt) exhausts
/// `max_rollbacks` and aborts with a structured error instead of looping.
#[test]
fn rollback_limit_aborts_with_error() {
    let (net, examples) = toy_examples(40);
    // 40 examples / batch 16 → 3 batches; one fresh NaN per attempt.
    let injector = FaultInjector::new(FaultPlan {
        nan_loss_at: vec![(0, 0), (0, 1), (0, 2)],
        ..FaultPlan::default()
    });
    let cfg = TrainConfig {
        max_rollbacks: 2,
        ..base_config()
    };
    let mut trainer = Trainer::new(toy_model(&net, 3), cfg);
    let mut rng = init::rng(5);
    let err = trainer
        .fit_ft(&examples, None, &mut rng, Some(&injector))
        .expect_err("persistent divergence should abort");
    assert!(
        matches!(
            err,
            TrainError::RollbackLimit {
                epoch: 0,
                rollbacks: 3
            }
        ),
        "unexpected error: {err}"
    );
}

/// A panicking shard worker is contained, retried serially with its own
/// seed, and the run ends bit-identical to one with no fault at all.
#[test]
fn worker_panic_is_contained_and_bit_identical() {
    let (net, examples) = toy_examples(40);
    let cfg = TrainConfig {
        num_threads: 2,
        shard_size: 8, // two shards per 16-example batch
        ..base_config()
    };

    let mut reference = Trainer::new(toy_model(&net, 9), cfg.clone());
    let mut rng = init::rng(13);
    reference
        .fit_ft(&examples, None, &mut rng, None)
        .expect("reference run failed");

    let injector = FaultInjector::new(FaultPlan {
        panic_at: vec![(0, 0, 1), (2, 1, 0)],
        ..FaultPlan::default()
    });
    let mut faulty = Trainer::new(toy_model(&net, 9), cfg);
    let mut rng = init::rng(13);
    let hist = faulty
        .fit_ft(&examples, None, &mut rng, Some(&injector))
        .expect("contained panics should not abort the run");

    let recoveries: Vec<_> = hist
        .events
        .iter()
        .filter_map(|e| match e {
            TrainEvent::ShardFailure {
                epoch,
                batch,
                shard,
                recovered,
                ..
            } => Some((*epoch, *batch, *shard, *recovered)),
            _ => None,
        })
        .collect();
    assert_eq!(
        recoveries,
        vec![(0, 0, 1, true), (2, 1, 0, true)],
        "shard failures not recorded as recovered"
    );
    assert_eq!(
        state_bits(&reference.model),
        state_bits(&faulty.model),
        "serial shard retry drifted from the failure-free run"
    );
}

/// Resuming from a mangled checkpoint is a structured error — never a
/// panic, and never a silent fresh start.
#[test]
fn corrupt_checkpoint_is_an_error_not_a_panic() {
    let (net, examples) = toy_examples(24);
    let path = tmp_path("corrupt");
    cleanup(&path);
    let cfg = TrainConfig {
        epochs: 1,
        checkpoint_path: Some(path.clone()),
        ..base_config()
    };
    let mut trainer = Trainer::new(toy_model(&net, 1), cfg.clone());
    let mut rng = init::rng(2);
    trainer
        .fit_ft(&examples, None, &mut rng, None)
        .expect("seed run failed");
    let len = std::fs::metadata(&path).expect("stat checkpoint").len();

    let resume_cfg = TrainConfig {
        resume_from: Some(path.clone()),
        ..cfg.clone()
    };
    for mangle in ["truncate", "flip"] {
        match mangle {
            "truncate" => truncate_file(&path, len / 2).expect("truncate"),
            _ => flip_byte(&path, (len / 2) as usize, 0x40).expect("flip"),
        }
        let mut resumed = Trainer::new(toy_model(&net, 1), resume_cfg.clone());
        let mut rng = init::rng(2);
        let err = resumed
            .fit_ft(&examples, None, &mut rng, None)
            .expect_err("corrupt checkpoint accepted");
        assert!(
            matches!(err, TrainError::Checkpoint(_)),
            "{mangle}: unexpected error: {err}"
        );
        // Re-write a good checkpoint for the next mangling round.
        let mut fresh = Trainer::new(toy_model(&net, 1), cfg.clone());
        let mut rng = init::rng(2);
        fresh
            .fit_ft(&examples, None, &mut rng, None)
            .expect("re-seed run failed");
    }
    cleanup(&path);
}

/// A write interrupted before the atomic rename leaves only a stray
/// `.tmp` file; resume treats the missing real file as a fresh start.
#[test]
fn stray_tmp_from_interrupted_write_starts_fresh() {
    let (net, examples) = toy_examples(24);
    let path = tmp_path("interrupted");
    cleanup(&path);
    interrupted_write(&path, b"half a checkpoint that never landed", 10).expect("interrupted");
    assert!(!path.exists(), "interrupted write must not create the file");

    let cfg = TrainConfig {
        epochs: 1,
        resume_from: Some(path.clone()),
        ..base_config()
    };
    let mut trainer = Trainer::new(toy_model(&net, 4), cfg);
    let mut rng = init::rng(6);
    let hist = trainer
        .fit_ft(&examples, None, &mut rng, None)
        .expect("fresh start after interrupted write failed");
    assert_eq!(hist.resumed_from, None);
    cleanup(&path);
}

/// train(N) ≡ train(k) + save + load + train(N−k), bit for bit, for random
/// split points and for both serial and multi-threaded configurations.
fn resume_split_matches(k: usize, num_threads: usize, shard_size: usize) {
    const N: usize = 3;
    let (net, examples) = toy_examples(32);
    let path = tmp_path(&format!("split_{k}_{num_threads}_{shard_size}"));
    cleanup(&path);
    let cfg = TrainConfig {
        epochs: N,
        num_threads,
        shard_size,
        ..base_config()
    };

    let mut full = Trainer::new(toy_model(&net, 21), cfg.clone());
    let mut rng = init::rng(17);
    full.fit_ft(&examples, None, &mut rng, None)
        .expect("full run failed");

    let mut first = Trainer::new(
        toy_model(&net, 21),
        TrainConfig {
            epochs: k,
            checkpoint_path: Some(path.clone()),
            ..cfg.clone()
        },
    );
    let mut rng = init::rng(17);
    first
        .fit_ft(&examples, None, &mut rng, None)
        .expect("first half failed");

    let mut second = Trainer::new(
        toy_model(&net, 777),
        TrainConfig {
            resume_from: Some(path.clone()),
            ..cfg
        },
    );
    let mut rng = init::rng(777);
    let hist = second
        .fit_ft(&examples, None, &mut rng, None)
        .expect("second half failed");
    assert_eq!(hist.resumed_from, Some(k));
    assert_eq!(hist.epochs.len(), N - k);

    assert_eq!(
        state_bits(&full.model),
        state_bits(&second.model),
        "split at k={k} (threads={num_threads}, shard={shard_size}) drifted"
    );
    cleanup(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn train_n_equals_train_k_save_load_train_rest(
        k in 1usize..3,
        threaded in 0usize..2,
    ) {
        let (num_threads, shard_size) = if threaded == 1 { (3, 8) } else { (1, 16) };
        resume_split_matches(k, num_threads, shard_size);
    }
}
