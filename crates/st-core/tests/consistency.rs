//! Consistency tests between the three forward paths of the DeepST model:
//! batched training (`batch_loss`), per-route scoring (`score_route`), and
//! stepwise decoding (`step_state`). All three must compute the same
//! transition log-probabilities.

use std::sync::Arc;

use proptest::prelude::*;

use st_core::{DeepSt, DeepStConfig, Example};
use st_nn::Module;
use st_roadnet::{grid_city, GridConfig, RoadNetwork};
use st_tensor::{init, Binder, Tape};

fn setup(seed: u64) -> (RoadNetwork, DeepSt) {
    let net = grid_city(&GridConfig::small_test(), 3);
    let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
    (net, DeepSt::new(cfg, seed))
}

fn random_route(net: &RoadNetwork, start: usize, len: usize, seed: u64) -> Vec<usize> {
    let mut rng = init::rng(seed);
    let mut route = vec![start % net.num_segments()];
    for _ in 0..len {
        let nexts = net.next_segments(*route.last().unwrap());
        use rand::Rng;
        route.push(nexts[rng.gen_range(0..nexts.len())]);
    }
    route
}

#[test]
fn score_route_matches_step_state_decoding() {
    let (net, model) = setup(0);
    let route = random_route(&net, 0, 6, 1);
    let tensor = vec![0.2f32; 64];
    let c = model.encode_traffic(&tensor);
    let ctx = model.encode_context([0.4, 0.6], Some(c));
    // score via the scoring API
    let total = model.score_route(&net, &route, &ctx);
    // score via stepwise decoding (renormalization-free: same full softmax)
    let mut state = model.initial_state();
    let mut manual = 0.0f64;
    for i in 0..route.len() - 1 {
        let (ns, logps) = model.step_state(&state, route[i], &ctx);
        state = ns;
        let slot = net.neighbor_slot(route[i], route[i + 1]).unwrap();
        manual += logps[slot];
    }
    assert!(
        (total - manual).abs() < 1e-4,
        "score_route {total} != stepwise {manual}"
    );
}

#[test]
fn batch_loss_route_term_matches_score_route() {
    let (net, model) = setup(1);
    let tensor = Arc::new(vec![0.1f32; 64]);
    let route = random_route(&net, 2, 5, 2);
    let ex = Example::new(&net, route.clone(), [0.3, 0.7], Arc::clone(&tensor), 0).unwrap();
    // eval-mode batch loss on the single example
    let mut rng = init::rng(9);
    let tape = Tape::new();
    let binder = Binder::new(&tape);
    let (_, stats) = model.batch_loss(&binder, &[&ex], &mut rng, false);
    // eval-mode context: posterior mean c, soft π — identical to encode_*
    let c = model.encode_traffic(&tensor);
    let ctx = model.encode_context([0.3, 0.7], Some(c));
    let scored = model.score_route(&net, &route, &ctx);
    assert!(
        (stats.route_ll as f64 - scored).abs() < 1e-3,
        "batch route_ll {} != score_route {scored}",
        stats.route_ll
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Likelihood scores are finite and non-positive for any valid route.
    #[test]
    fn scores_are_log_probabilities(start in 0usize..40, len in 1usize..10, seed in 0u64..100) {
        let (net, model) = setup(2);
        let route = random_route(&net, start, len, seed);
        let c = model.encode_traffic(&vec![0.0f32; 64]);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        let s = model.score_route(&net, &route, &ctx);
        prop_assert!(s.is_finite());
        prop_assert!(s <= 0.0);
        // longer prefixes never increase the score
        let s_prefix = model.score_route(&net, &route[..route.len() - 1], &ctx);
        prop_assert!(s <= s_prefix + 1e-9);
    }

    /// Batched training handles ragged batches (mixed route lengths) —
    /// the loss stays finite and backward never panics.
    #[test]
    fn ragged_batches_train_cleanly(
        lens in proptest::collection::vec(1usize..14, 2..6),
        seed in 0u64..50,
    ) {
        let (net, model) = setup(4);
        let tensor = Arc::new(vec![0.1f32; 64]);
        let examples: Vec<Example> = lens
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| {
                Example::new(
                    &net,
                    random_route(&net, i * 11, l, seed + i as u64),
                    [0.2, 0.8],
                    Arc::clone(&tensor),
                    i % 3,
                )
            })
            .collect();
        prop_assume!(!examples.is_empty());
        let refs: Vec<&Example> = examples.iter().collect();
        let mut rng = init::rng(seed);
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let (loss, stats) = model.batch_loss(&binder, &refs, &mut rng, true);
        prop_assert!(loss.scalar_value().is_finite());
        prop_assert!(stats.transitions >= examples.len());
        let grads = tape.backward(loss);
        let touched = binder.accumulate_grads(&grads);
        prop_assert!(touched > 0);
        model.zero_grads();
    }

    /// The per-transition probabilities from step_state renormalize to 1
    /// over the full slot space.
    #[test]
    fn step_logprobs_normalize(seg in 0usize..40, seed in 0u64..100) {
        let (net, model) = setup(3);
        let seg = seg % net.num_segments();
        let mut rng = init::rng(seed);
        use rand::Rng;
        let ctx = model.encode_context(
            [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)],
            Some(model.encode_traffic(&vec![0.3f32; 64])),
        );
        let (_, logps) = model.step_state(&model.initial_state(), seg, &ctx);
        let total: f64 = logps.iter().map(|lp| lp.exp()).sum();
        prop_assert!((total - 1.0).abs() < 1e-4, "softmax total {total}");
    }
}
