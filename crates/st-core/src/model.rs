//! The DeepST model: parameters and shared forward components.
//!
//! Implements the complete generative model of Figure 3 in the paper:
//!
//! - route encoder: segment embeddings + stacked GRU (§IV-B);
//! - next-road head: `P(r_{i+1}|·) = softmax(αᵀf_r + βᵀf_x + γᵀc)` over the
//!   shared adjacent-slot space (§IV-A);
//! - destination proxies: the adjoint generative model with latent `π`,
//!   proxy means `M`, variances `S`, embeddings `W`, inference net `q(π|x)`
//!   (§IV-C);
//! - traffic pathway: CNN + MLP inference net `q(c|C)` with Gaussian
//!   reparameterization (§IV-D, Eq. 6).

use rand::rngs::StdRng;

use st_nn::{Activation, BnBatchStats, Embedding, Gru, Linear, Mlp, Module, TrafficCnn};
use st_tensor::{infer, init, ops, Array, Binder, Param, ScratchArena, Var};

use crate::config::DeepStConfig;
use crate::predict::TripContext;

/// The DeepST model (also covers the DeepST-C ablation via
/// [`DeepStConfig::use_traffic`]).
pub struct DeepSt {
    /// Model configuration.
    pub cfg: DeepStConfig,
    /// Road-segment embedding table.
    pub(crate) emb: Embedding,
    /// Stacked GRU squeezing the past route (f_r).
    pub(crate) gru: Gru,
    /// Projection α ∈ R^{hidden × A} of the route representation.
    pub(crate) alpha: Param,
    /// Projection β ∈ R^{n_x × A} of the destination representation.
    pub(crate) beta: Param,
    /// Projection γ ∈ R^{|c| × A} of the traffic representation.
    pub(crate) gamma: Param,
    /// Proxy embeddings W stored as `[K, n_x]` (`f_x(x) = Wπ`).
    pub(crate) w_proxy: Param,
    /// Proxy means M stored as `[K, 2]`.
    pub(crate) m_proxy: Param,
    /// Proxy raw variances (softplus-transformed) `[K, 2]`.
    pub(crate) s_proxy_raw: Param,
    /// Inference net q(π|x): coordinates → K logits.
    pub(crate) enc_dest: Mlp,
    /// Traffic CNN (Eq. 6).
    pub(crate) cnn: TrafficCnn,
    /// μ(f) head of q(c|C).
    pub(crate) mu_head: Linear,
    /// log σ²(f) head of q(c|C).
    pub(crate) logvar_head: Linear,
}

impl DeepSt {
    /// Initialize a model with the given seed.
    pub fn new(cfg: DeepStConfig, seed: u64) -> Self {
        cfg.validate();
        let mut rng = init::rng(seed);
        let a = cfg.max_neighbors;
        let emb = Embedding::with_block_rows(
            "deepst.emb",
            cfg.n_segments,
            cfg.emb_dim,
            cfg.emb_block_rows,
            &mut rng,
        );
        let gru = Gru::new(
            "deepst.gru",
            cfg.emb_dim,
            cfg.hidden,
            cfg.gru_layers,
            &mut rng,
        );
        let alpha = Param::new("deepst.alpha", init::xavier(cfg.hidden, a, &mut rng));
        let beta = Param::new("deepst.beta", init::xavier(cfg.n_x, a, &mut rng));
        let gamma = Param::new("deepst.gamma", init::xavier(cfg.c_dim, a, &mut rng));
        let w_proxy = Param::new(
            "deepst.w_proxy",
            init::randn(&[cfg.k_proxies, cfg.n_x], 0.1, &mut rng),
        );
        // Proxy means start spread over the unit square (coordinates are
        // normalized to [0,1]²); variances start moderate.
        let m_proxy = Param::new(
            "deepst.m_proxy",
            init::uniform(&[cfg.k_proxies, 2], 0.1, 0.9, &mut rng),
        );
        let s_proxy_raw = Param::new(
            "deepst.s_proxy_raw",
            Array::full(&[cfg.k_proxies, 2], -2.0), // softplus(-2) ≈ 0.127² scale
        );
        let enc_dest = Mlp::new(
            "deepst.enc_dest",
            &[2, 64, cfg.k_proxies],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let cnn = TrafficCnn::new("deepst.cnn", cfg.cnn_channels, &mut rng);
        let f_dim = cnn.out_dim();
        let mu_head = Linear::new("deepst.mu", f_dim, cfg.c_dim, &mut rng);
        let logvar_head = Linear::new("deepst.logvar", f_dim, cfg.c_dim, &mut rng);
        Self {
            cfg,
            emb,
            gru,
            alpha,
            beta,
            gamma,
            w_proxy,
            m_proxy,
            s_proxy_raw,
            enc_dest,
            cnn,
            mu_head,
            logvar_head,
        }
    }

    /// Destination inference: logits of `q(π|x)` for a batch of normalized
    /// coordinates `x [n, 2]`.
    pub(crate) fn dest_logits<'t, 'p>(&'p self, b: &Binder<'t, 'p>, x: Var<'t>) -> Var<'t> {
        self.enc_dest.forward(b, x)
    }

    /// Traffic inference `q(c|C)`: `(μ, log σ²)` for a batch of traffic
    /// tensors `[n, 1, H, W]`. With `bn_stats: Some(sink)` batch-norm
    /// running-statistic updates are recorded instead of applied (see
    /// [`st_nn::BnBatchStats`]).
    pub(crate) fn traffic_posterior<'t, 'p>(
        &'p self,
        b: &Binder<'t, 'p>,
        grids: Var<'t>,
        training: bool,
        bn_stats: Option<&mut BnBatchStats>,
    ) -> (Var<'t>, Var<'t>) {
        let f = self.cnn.forward_collect(b, grids, training, bn_stats);
        (self.mu_head.forward(b, f), self.logvar_head.forward(b, f))
    }

    /// Apply batch-norm statistics recorded by a deferred forward pass, in
    /// layer order.
    pub fn apply_bn_stats(&self, stats: &BnBatchStats) {
        self.cnn.apply_bn_stats(stats);
    }

    /// Next-road logits over the A slots:
    /// `αᵀh + βᵀ(Wπ) + γᵀc` for a batch (§IV-A). `c` is `None` for DeepST-C.
    pub(crate) fn slot_logits<'t, 'p>(
        &'p self,
        b: &Binder<'t, 'p>,
        h: Var<'t>,
        fx: Var<'t>,
        c: Option<Var<'t>>,
    ) -> Var<'t> {
        let alpha = b.var(&self.alpha);
        let beta = b.var(&self.beta);
        let mut logits = ops::add(ops::matmul(h, alpha), ops::matmul(fx, beta));
        if let Some(c) = c {
            let gamma = b.var(&self.gamma);
            logits = ops::add(logits, ops::matmul(c, gamma));
        }
        logits
    }

    /// Per-trip slot-head projections for the tape-free decode path:
    /// `fx·β` and (with traffic) `c·γ`, each `[1, max_neighbors]`. They are
    /// constant across a trip's steps, so [`crate::predict::InferSession`]
    /// computes them once and each step only runs the `h·α` GEMM.
    pub(crate) fn trip_projections(
        &self,
        arena: &mut ScratchArena,
        ctx: &TripContext,
    ) -> (Array, Option<Array>) {
        let fx_beta = infer::matmul(arena, &ctx.fx, &self.beta.value());
        let c_gamma = ctx
            .c
            .as_ref()
            .map(|c| infer::matmul(arena, c, &self.gamma.value()));
        (fx_beta, c_gamma)
    }

    /// Proxy variances `S` (softplus of the raw parameter) as a tape var.
    pub(crate) fn s_proxy<'t, 'p>(&'p self, b: &Binder<'t, 'p>) -> Var<'t> {
        ops::add_scalar(ops::softplus(b.var(&self.s_proxy_raw)), 1e-4)
    }

    /// The termination probability `f_s(r, x)` of §IV-A, implemented as a
    /// Gaussian in the destination-to-segment distance (meters). The paper's
    /// `1/(1 + ‖p(x,r) − x‖)` leaves units unspecified; a flat-tailed form
    /// makes distant stops only polynomially unlikely and biases
    /// maximum-probability decoding toward degenerate short routes, so we
    /// use `exp(−(d/scale)²)` — ≈1 at the destination, exponentially small
    /// far away.
    pub fn termination_prob(&self, dist_m: f64) -> f64 {
        let d = dist_m / self.cfg.term_scale_m;
        (-d * d).exp()
    }

    /// Draw a Gumbel-noise array for the π relaxation.
    pub(crate) fn gumbel_noise(&self, n: usize, rng: &mut StdRng) -> Array {
        let k = self.cfg.k_proxies;
        let mut a = Array::zeros(&[n, k]);
        for v in a.data_mut() {
            *v = init::sample_gumbel(rng);
        }
        a
    }

    /// Standard-normal noise for the c reparameterization.
    pub(crate) fn normal_noise(&self, n: usize, rng: &mut StdRng) -> Array {
        init::randn(&[n, self.cfg.c_dim], 1.0, rng)
    }

    /// Segment-embedding memory accounting (DESIGN.md §16), for the scale
    /// benchmark and CI budget asserts.
    pub fn emb_memory(&self) -> EmbMemory {
        let table = self.emb.table();
        EmbMemory {
            table_bytes: self.emb.table_bytes(),
            resident_grad_bytes: self.emb.resident_grad_bytes(),
            resident_blocks: table.resident_blocks(),
            num_blocks: table.num_blocks(),
        }
    }
}

/// Memory accounting for the (possibly sharded) segment-embedding table.
///
/// `table_bytes` is what a dense layout pays for its gradient the moment any
/// row is touched; `resident_grad_bytes` is what the blocked layout actually
/// allocated — the gap is the scale-out win measured by `bench_scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmbMemory {
    /// Bytes of the full value table (identical in both layouts).
    pub table_bytes: usize,
    /// Bytes of gradient storage currently materialized.
    pub resident_grad_bytes: usize,
    /// Row blocks whose gradient is materialized.
    pub resident_blocks: usize,
    /// Total row blocks in the table.
    pub num_blocks: usize,
}

impl Module for DeepSt {
    fn params(&self) -> Vec<&Param> {
        let mut p = self.emb.params();
        p.extend(self.gru.params());
        p.push(&self.alpha);
        p.push(&self.beta);
        p.push(&self.w_proxy);
        p.push(&self.m_proxy);
        p.push(&self.s_proxy_raw);
        p.extend(self.enc_dest.params());
        if self.cfg.use_traffic {
            p.push(&self.gamma);
            p.extend(self.cnn.params());
            p.extend(self.mu_head.params());
            p.extend(self.logvar_head.params());
        }
        p
    }

    fn param_groups(&self) -> Vec<Vec<&Param>> {
        // Must flatten to exactly `params()`: the embedding's blocks form
        // one logical tensor (grouped-clip norm is chained across them in
        // row order), everything else is a singleton group.
        let mut g = self.emb.param_groups();
        g.extend(self.gru.params().into_iter().map(|p| vec![p]));
        g.push(vec![&self.alpha]);
        g.push(vec![&self.beta]);
        g.push(vec![&self.w_proxy]);
        g.push(vec![&self.m_proxy]);
        g.push(vec![&self.s_proxy_raw]);
        g.extend(self.enc_dest.params().into_iter().map(|p| vec![p]));
        if self.cfg.use_traffic {
            g.push(vec![&self.gamma]);
            g.extend(self.cnn.params().into_iter().map(|p| vec![p]));
            g.extend(self.mu_head.params().into_iter().map(|p| vec![p]));
            g.extend(self.logvar_head.params().into_iter().map(|p| vec![p]));
        }
        g
    }

    fn buffers(&self) -> Vec<(String, st_tensor::Array)> {
        // Only the traffic CNN owns non-trainable state (BN running stats);
        // mirror the conditional structure of `params`.
        if self.cfg.use_traffic {
            self.cnn.buffers()
        } else {
            Vec::new()
        }
    }

    fn load_buffers(
        &self,
        buffers: &[(String, st_tensor::Array)],
    ) -> Result<(), st_nn::CheckpointError> {
        if self.cfg.use_traffic {
            self.cnn.load_buffers(buffers)
        } else if buffers.is_empty() {
            Ok(())
        } else {
            Err(st_nn::CheckpointError::Count {
                what: "buffer",
                expected: 0,
                found: buffers.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::Tape;

    fn small() -> DeepSt {
        DeepSt::new(DeepStConfig::new(20, 4, 8, 8), 0)
    }

    #[test]
    fn constructs_and_counts_params() {
        let m = small();
        assert!(m.num_params() > 1000);
        // DeepST-C has strictly fewer parameters
        let mc = DeepSt::new(DeepStConfig::new(20, 4, 8, 8).without_traffic(), 0);
        assert!(mc.num_params() < m.num_params());
    }

    #[test]
    fn slot_logits_shape() {
        let m = small();
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let h = b.input(Array::zeros(&[3, m.cfg.hidden]));
        let fx = b.input(Array::zeros(&[3, m.cfg.n_x]));
        let c = b.input(Array::zeros(&[3, m.cfg.c_dim]));
        let logits = m.slot_logits(&b, h, fx, Some(c));
        assert_eq!(logits.value().shape(), &[3, m.cfg.max_neighbors]);
        let logits_nc = m.slot_logits(&b, h, fx, None);
        assert_eq!(logits_nc.value().shape(), &[3, m.cfg.max_neighbors]);
    }

    #[test]
    fn traffic_posterior_shapes() {
        let m = small();
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let grids = b.input(Array::zeros(&[2, 1, 8, 8]));
        let (mu, logvar) = m.traffic_posterior(&b, grids, true, None);
        assert_eq!(mu.value().shape(), &[2, m.cfg.c_dim]);
        assert_eq!(logvar.value().shape(), &[2, m.cfg.c_dim]);
    }

    #[test]
    fn termination_monotone_decreasing() {
        let m = small();
        let p0 = m.termination_prob(0.0);
        let p_scale = m.termination_prob(m.cfg.term_scale_m);
        let p_far = m.termination_prob(10_000.0);
        assert!((p0 - 1.0).abs() < 1e-12);
        assert!((p_scale - (-1.0f64).exp()).abs() < 1e-9);
        assert!(p_far < 1e-6);
    }

    #[test]
    fn s_proxy_positive() {
        let m = small();
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let s = m.s_proxy(&b);
        assert!(s.value().min() > 0.0);
        assert_eq!(s.value().shape(), &[m.cfg.k_proxies, 2]);
    }
}
