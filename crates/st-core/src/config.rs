//! DeepST hyper-parameters.
//!
//! Defaults are the paper's §V-A settings scaled to CPU training (see
//! DESIGN.md §1 for the scaling table). Paper values in comments.

/// Hyper-parameters of the DeepST model.
#[derive(Debug, Clone)]
pub struct DeepStConfig {
    /// Number of road segments (the embedding vocabulary).
    pub n_segments: usize,
    /// `max_r N(r)` — width of the adjacent-slot output space (§IV-A).
    pub max_neighbors: usize,
    /// Road-segment embedding dimension fed to the GRU.
    pub emb_dim: usize,
    /// GRU hidden size = `n_r`, the route representation (paper: 256/128).
    pub hidden: usize,
    /// Stacked GRU layers (paper: 3).
    pub gru_layers: usize,
    /// Destination-proxy representation size `n_x` (paper: 128).
    pub n_x: usize,
    /// Number of destination proxies `K` (paper: 500–1000).
    pub k_proxies: usize,
    /// Traffic latent size `|c|` (paper: 256).
    pub c_dim: usize,
    /// Base channel count of the traffic CNN.
    pub cnn_channels: usize,
    /// Traffic grid height (cells).
    pub grid_h: usize,
    /// Traffic grid width (cells).
    pub grid_w: usize,
    /// Whether the traffic pathway is enabled. `false` gives DeepST-C
    /// (the ablation in Table IV).
    pub use_traffic: bool,
    /// Gumbel-Softmax temperature for the π relaxation (§IV-D).
    pub gumbel_temp: f32,
    /// Distance scale (m) of the termination function `f_s` — the distance
    /// at which the stop probability is ½ (§IV-A uses raw coordinate units;
    /// our coordinates are meters, so a scale is required).
    pub term_scale_m: f64,
    /// Hard cap on generated route length.
    pub max_route_len: usize,
    /// Rows per block of the (row-sharded) segment-embedding table. Small
    /// worlds fit in one block, which is byte-identical to the historical
    /// dense layout; graph-scale worlds shard so a step's tape/grad/moment
    /// bytes track the rows visited, not `n_segments`.
    pub emb_block_rows: usize,
}

impl DeepStConfig {
    /// Scaled-down defaults for a network with `n_segments` segments and
    /// `max_neighbors` slot width.
    pub fn new(n_segments: usize, max_neighbors: usize, grid_h: usize, grid_w: usize) -> Self {
        Self {
            n_segments,
            max_neighbors,
            emb_dim: 32,
            hidden: 64,    // paper: 256
            gru_layers: 2, // paper: 3
            n_x: 32,       // paper: 128
            k_proxies: 24, // paper: 500–1000 (scaled to hotspot count)
            c_dim: 16,     // paper: 256
            cnn_channels: 4,
            grid_h,
            grid_w,
            use_traffic: true,
            gumbel_temp: 0.7,
            term_scale_m: 150.0,
            max_route_len: 150,
            emb_block_rows: 4096, // = st_nn::Embedding::DEFAULT_BLOCK_ROWS
        }
    }

    /// Override the embedding block size (the scale benches and the
    /// dense-vs-sharded parity oracles set this explicitly).
    pub fn with_emb_block_rows(mut self, block_rows: usize) -> Self {
        assert!(block_rows >= 1);
        self.emb_block_rows = block_rows;
        self
    }

    /// The DeepST-C ablation: no traffic pathway.
    pub fn without_traffic(mut self) -> Self {
        self.use_traffic = false;
        self
    }

    /// Set the number of destination proxies (Table VI sweep).
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.k_proxies = k;
        self
    }

    /// Validate internal consistency.
    pub fn validate(&self) {
        assert!(self.n_segments > 0, "empty segment vocabulary");
        assert!(self.max_neighbors > 0, "max_neighbors must be positive");
        assert!(self.k_proxies > 0);
        assert!(self.gumbel_temp > 0.0);
        assert!(self.grid_h > 0 && self.grid_w > 0);
        assert!(self.max_route_len > 1);
        assert!(self.emb_block_rows >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        DeepStConfig::new(100, 4, 8, 8).validate();
    }

    #[test]
    fn ablation_flags() {
        let c = DeepStConfig::new(10, 3, 4, 4).without_traffic().with_k(7);
        assert!(!c.use_traffic);
        assert_eq!(c.k_proxies, 7);
    }

    #[test]
    #[should_panic]
    fn zero_segments_rejected() {
        DeepStConfig::new(0, 4, 8, 8).validate();
    }
}
