//! Route prediction (Algorithm 2) and route likelihood scoring (§IV-E).

use rand::rngs::StdRng;
use rand::Rng;

use st_tensor::{
    infer, ops, Array, Binder, Diagnostic, LintKind, ScratchArena, Severity, Tape, TapeFreeScope,
};

use st_nn::PackedGru;
use st_roadnet::{Point, RoadNetwork, Route, SegmentId};

use crate::model::DeepSt;

/// Encoded per-trip context: the destination representation `Wπ` and the
/// traffic representation `c` (posterior mean at evaluation).
#[derive(Debug, Clone)]
pub struct TripContext {
    /// `f_x(x) = Wπ`, shape `[1, n_x]`.
    pub fx: Array,
    /// Traffic latent `c`, shape `[1, |c|]`; `None` for DeepST-C.
    pub c: Option<Array>,
    /// Posterior proxy probabilities `q(π|x)`, shape `[K]`.
    pub pi: Array,
}

impl DeepSt {
    /// Encode the traffic tensor into the posterior mean of `c` (eval mode).
    /// Callers evaluating many trips should cache this per traffic slot.
    ///
    /// Runs on the tape-free inference runtime ([`st_tensor::infer`]): no
    /// autodiff tape is allocated, and the result is bit-identical to the
    /// taped eval-mode forward pass.
    pub fn encode_traffic(&self, tensor: &[f32]) -> Array {
        assert!(self.cfg.use_traffic, "traffic pathway disabled");
        let (h, w) = (self.cfg.grid_h, self.cfg.grid_w);
        assert_eq!(tensor.len(), h * w, "traffic tensor size mismatch");
        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let grid = Array::from_vec(&[1, 1, h, w], tensor.to_vec());
        let f = self.cnn.infer(&mut arena, &grid);
        self.mu_head.infer(&mut arena, &f)
    }

    /// Encode a normalized destination coordinate into `(q(π|x), Wπ)`.
    ///
    /// Tape-free: `q(π|x)` comes from the inference MLP's `infer` path and
    /// `Wπ` from a single GEMM against the shared proxy table.
    pub fn encode_dest(&self, dest: [f32; 2]) -> (Array, Array) {
        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let x = Array::from_vec(&[1, 2], dest.to_vec());
        let mut pi = self.enc_dest.infer(&mut arena, &x);
        infer::softmax_rows_mut(&mut pi);
        let fx = infer::matmul(&mut arena, &pi, &self.w_proxy.value());
        (pi.reshape(&[self.cfg.k_proxies]), fx)
    }

    /// Build the full evaluation context for one trip. `traffic` must be
    /// `Some` iff the model uses the traffic pathway; pass a cached
    /// [`DeepSt::encode_traffic`] output to avoid re-running the CNN.
    pub fn encode_context(&self, dest: [f32; 2], traffic_c: Option<Array>) -> TripContext {
        assert_eq!(
            traffic_c.is_some(),
            self.cfg.use_traffic,
            "traffic context must match cfg.use_traffic"
        );
        let (pi, fx) = self.encode_dest(dest);
        TripContext {
            fx,
            c: traffic_c,
            pi,
        }
    }

    /// Algorithm 2: generate the most likely route for a trip.
    ///
    /// `start` is `T.r₁`; `dest_m` is the rough destination coordinate in
    /// meters (used only by the termination function `f_s`); `ctx` holds the
    /// encoded destination/traffic representations. With `rng = None` the
    /// generation is greedy (argmax next road, threshold termination) — this
    /// is the "most likely route" used in the evaluation; with `Some(rng)`
    /// the route is sampled from the generative process.
    ///
    /// Inference runs on the tape-free runtime ([`InferSession`]): no
    /// autodiff tape is allocated at any step, scratch buffers are recycled
    /// through one [`ScratchArena`], and memory stays bounded by a single
    /// step's working set regardless of route length.
    pub fn predict_route(
        &self,
        net: &RoadNetwork,
        start: SegmentId,
        dest_m: &Point,
        ctx: &TripContext,
        rng: Option<&mut StdRng>,
    ) -> Route {
        let _sp = st_obs::span("predict/route");
        let mut sess = self.infer_session(ctx);
        let mut state = sess.zero_state(1);
        let mut route = vec![start];
        self.generate_from(net, &mut route, &mut sess, &mut state, dest_m, rng);
        route
    }

    /// Route likelihood score with posterior *sampling*, as §IV-E describes
    /// ("once we draw c and π from the posterior distribution"): averages
    /// the route likelihood over `l_samples` draws of `c ~ q(c|C)` and
    /// `π ~ q(π|x)` (log-mean-exp). [`DeepSt::score_route`] is the
    /// deterministic posterior-mean variant used in the evaluation.
    pub fn score_route_sampled(
        &self,
        net: &RoadNetwork,
        route: &[SegmentId],
        dest: [f32; 2],
        traffic: Option<&[f32]>,
        l_samples: usize,
        rng: &mut StdRng,
    ) -> f64 {
        assert!(l_samples >= 1);
        assert_eq!(traffic.is_some(), self.cfg.use_traffic);
        // posterior parameters
        let (mu, logvar) = match traffic {
            Some(t) => {
                let (h, w) = (self.cfg.grid_h, self.cfg.grid_w);
                let tape = Tape::new();
                let binder = Binder::new(&tape);
                let grid = binder.input(Array::from_vec(&[1, 1, h, w], t.to_vec()));
                let (mu, logvar) = self.traffic_posterior(&binder, grid, false, None);
                (Some((*mu.value()).clone()), Some((*logvar.value()).clone()))
            }
            None => (None, None),
        };
        let (pi_probs, _) = self.encode_dest(dest);
        let w_proxy = self.w_proxy.value().clone();

        let mut log_liks = Vec::with_capacity(l_samples);
        for _ in 0..l_samples {
            // c = μ + σ·ε
            let c = mu.as_ref().zip(logvar.as_ref()).map(|(m, lv)| {
                let mut c = m.clone();
                for i in 0..c.len() {
                    c.data_mut()[i] +=
                        (0.5 * lv.data()[i]).exp() * st_tensor::init::sample_normal(rng);
                }
                c
            });
            // π ~ Categorical(q(π|x)) — a hard one-hot draw, f_x = W·π
            let k = st_tensor::init::sample_categorical(pi_probs.data(), rng);
            let fx = Array::from_vec(&[1, self.cfg.n_x], w_proxy.row(k).to_vec());
            let ctx = TripContext {
                fx,
                c,
                pi: pi_probs.clone(),
            };
            log_liks.push(self.score_route(net, route, &ctx));
        }
        // log-mean-exp over the samples
        let m = log_liks.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !m.is_finite() {
            return m;
        }
        m + (log_liks.iter().map(|&l| (l - m).exp()).sum::<f64>() / l_samples as f64).ln()
    }

    /// Route likelihood score (§IV-E): `Σᵢ log P(r_{i+1}|r_{1:i}, Wπ, c)`.
    /// Returns `f64::NEG_INFINITY` for invalid (non-adjacent) routes.
    pub fn score_route(&self, net: &RoadNetwork, route: &[SegmentId], ctx: &TripContext) -> f64 {
        if route.len() < 2 {
            return 0.0;
        }
        let mut slots = Vec::with_capacity(route.len() - 1);
        for w in route.windows(2) {
            match net.neighbor_slot(w[0], w[1]) {
                Some(s) => slots.push(s),
                None => return f64::NEG_INFINITY,
            }
        }
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let fx = binder.input(ctx.fx.clone());
        let c = ctx.c.as_ref().map(|c| binder.input(c.clone()));
        let mut state = self.gru.zero_state(&binder, 1);
        let mut total = 0.0f64;
        for (i, &slot) in slots.iter().enumerate() {
            let inp = self.emb.forward(&binder, &[route[i]]);
            let hid = self.gru.step(&binder, inp, &mut state);
            let logits = self.slot_logits(&binder, hid, fx, c);
            let logp = ops::log_softmax_rows(logits);
            total += logp.value().data()[slot] as f64;
        }
        total
    }
}

impl DeepSt {
    /// Continue a partially observed trip: warm the GRU up on the already
    /// traveled `prefix`, then generate the remainder of the route toward
    /// the destination (the "future movement prediction" setting of the
    /// related work, §II). Returns the full route including the prefix.
    pub fn predict_continuation(
        &self,
        net: &RoadNetwork,
        prefix: &[SegmentId],
        dest_m: &Point,
        ctx: &TripContext,
        rng: Option<&mut StdRng>,
    ) -> Route {
        let _sp = st_obs::span("predict/continuation");
        assert!(net.is_valid_route(prefix), "prefix is not a valid route");
        let Some((_, warmup)) = prefix.split_last() else {
            // the paper's queries always carry at least T.r1
            return Vec::new();
        };
        // Warm up: consume all but the last prefix segment (the last one is
        // consumed by the generation loop's first step). The warm-up shares
        // the generation loop's session and log-prob buffer, so the whole
        // continuation allocates one arena total.
        let mut sess = self.infer_session(ctx);
        let mut state = sess.zero_state(1);
        let mut logps = Vec::new();
        for &seg in warmup {
            sess.step_into(&[seg], &mut state, &mut logps);
        }
        let mut route = prefix.to_vec();
        self.generate_from(net, &mut route, &mut sess, &mut state, dest_m, rng);
        route
    }

    /// Shared generation loop for [`DeepSt::predict_route`] and
    /// [`DeepSt::predict_continuation`]: extend `route` from its last
    /// segment and `state` until termination fires, a dead end is hit, or
    /// `cfg.max_route_len` is reached. Each exit cause bumps one of the
    /// `decode.term.{stop,dead_end,len_cap}` counters.
    ///
    /// Truncation behaviour: the slot head is `cfg.max_neighbors` wide, so
    /// at an intersection with a larger out-degree only the first
    /// `max_neighbors` adjacent segments can ever be chosen. Such steps are
    /// counted (`decode.truncated_transitions` / `decode.truncated_slots`)
    /// and surfaced once per process via `st_obs::warn_once`;
    /// [`DeepSt::lint_output_space`] reports the same condition statically.
    fn generate_from(
        &self,
        net: &RoadNetwork,
        route: &mut Route,
        sess: &mut InferSession<'_>,
        state: &mut [Array],
        dest_m: &Point,
        mut rng: Option<&mut StdRng>,
    ) {
        let Some(&last) = route.last() else { return };
        let mut cur = last;
        // One log-prob buffer for the whole route: `step_into` refills it
        // in place, so the loop allocates nothing per step.
        let mut logps: Vec<f64> = Vec::new();
        while route.len() < self.cfg.max_route_len {
            let nexts = net.next_segments(cur);
            if nexts.is_empty() {
                st_obs::counter("decode.term.dead_end").inc();
                return;
            }
            sess.step_into(&[cur], state, &mut logps);
            if nexts.len() > logps.len() {
                self.note_truncation(nexts.len(), logps.len());
            }
            let valid = &logps[..nexts.len().min(logps.len())];
            let slot = match rng.as_deref_mut() {
                None => {
                    // greedy argmax over valid slots (log-softmax is
                    // monotone, so this matches an argmax on raw logits)
                    let mut best = 0;
                    for (j, &v) in valid.iter().enumerate() {
                        if v > valid[best] {
                            best = j;
                        }
                    }
                    best
                }
                Some(r) => {
                    let probs: Vec<f32> = {
                        let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let e: Vec<f64> = valid.iter().map(|&v| (v - m).exp()).collect();
                        let z: f64 = e.iter().sum();
                        e.iter().map(|&v| (v / z) as f32).collect()
                    };
                    sample_index(&probs, r)
                }
            };
            let next = nexts[slot];
            route.push(next);
            cur = next;
            // termination: s ~ Bernoulli(f_s(r_{i+1}, x))
            let proj = net.project_onto(dest_m, next);
            let p_stop = self.termination_prob(proj.dist(dest_m));
            let stop = match rng.as_deref_mut() {
                None => p_stop > 0.5,
                Some(r) => r.gen::<f64>() < p_stop,
            };
            if stop {
                st_obs::counter("decode.term.stop").inc();
                return;
            }
        }
        st_obs::counter("decode.term.len_cap").inc();
    }

    /// Count one truncated transition and warn once per process.
    pub(crate) fn note_truncation(&self, out_degree: usize, slots: usize) {
        st_obs::counter("decode.truncated_transitions").inc();
        st_obs::counter("decode.truncated_slots").add((out_degree - slots) as u64);
        st_obs::warn_once(
            "decode.truncated-output-space",
            &format!(
                "out-degree {out_degree} exceeds the {slots}-slot output head \
                 (cfg.max_neighbors = {}): {} adjacent segment(s) are unreachable \
                 during decoding; see DeepSt::lint_output_space",
                self.cfg.max_neighbors,
                out_degree - slots
            ),
        );
    }

    /// One recurrent step outside any training tape: feed `token` into the
    /// GRU given `state` (one `[1, hidden]` array per layer) and return the
    /// new state plus the log-probabilities over the adjacent slots.
    ///
    /// Convenience wrapper over a one-shot [`InferSession`] — it re-derives
    /// the per-trip projections and allocates a fresh arena on every call.
    /// Loops that step many times (decoders, evaluators) should open one
    /// session with [`DeepSt::infer_session`] and use
    /// [`InferSession::step_into`] with a reused log-prob buffer instead.
    pub fn step_state(
        &self,
        state: &[Array],
        token: SegmentId,
        ctx: &TripContext,
    ) -> (Vec<Array>, Vec<f64>) {
        let mut sess = self.infer_session(ctx);
        let mut new_state = state.to_vec();
        let mut lp = Vec::new();
        sess.step_into(&[token], &mut new_state, &mut lp);
        (new_state, lp)
    }

    /// The pre-refactor taped step: binds the inputs to a fresh autodiff
    /// tape, runs the taped forward graph and discards the tape. Kept
    /// verbatim as the behavioural oracle for decode-parity tests and as the
    /// "per-step-tape baseline" of the decode benchmark; production decoding
    /// uses the tape-free [`InferSession`].
    pub fn step_state_taped(
        &self,
        state: &[Array],
        token: SegmentId,
        ctx: &TripContext,
    ) -> (Vec<Array>, Vec<f64>) {
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let fx = binder.input(ctx.fx.clone());
        let c = ctx.c.as_ref().map(|c| binder.input(c.clone()));
        let mut vars: Vec<_> = state.iter().map(|a| binder.input(a.clone())).collect();
        let inp = self.emb.forward(&binder, &[token]);
        let hid = self.gru.step(&binder, inp, &mut vars);
        let logits = self.slot_logits(&binder, hid, fx, c);
        let logp = ops::log_softmax_rows(logits);
        let new_state = vars.iter().map(|v| (*v.value()).clone()).collect();
        let lp = logp.value().data().iter().map(|&v| v as f64).collect();
        (new_state, lp)
    }

    /// Fresh per-layer zero state for [`DeepSt::step_state`].
    pub fn initial_state(&self) -> Vec<Array> {
        (0..self.gru.layers())
            .map(|_| Array::zeros(&[1, self.cfg.hidden]))
            .collect()
    }

    /// Open a tape-free decoding session for one trip: precomputes the
    /// constant slot-head projections (`fx·β`, `c·γ`), packs the recurrent
    /// weights once for the session, and owns the scratch arena every
    /// subsequent step allocates from. Full-precision
    /// ([`InferPrecision::F32`]) kernels.
    pub fn infer_session(&self, ctx: &TripContext) -> InferSession<'_> {
        self.infer_session_with(ctx, InferPrecision::F32)
    }

    /// [`DeepSt::infer_session`] with an explicit numeric precision for the
    /// decode hot loop. Weight packing/quantization happens here, once per
    /// session — the per-step path never touches `Param::value()` weights.
    pub fn infer_session_with(
        &self,
        ctx: &TripContext,
        precision: InferPrecision,
    ) -> InferSession<'_> {
        assert_eq!(
            ctx.c.is_some(),
            self.cfg.use_traffic,
            "trip context must match cfg.use_traffic"
        );
        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let (fx_beta, c_gamma) = self.trip_projections(&mut arena, ctx);
        InferSession {
            model: self,
            arena,
            fx_beta,
            c_gamma,
            kernels: StepKernels::new(self, precision),
        }
    }

    /// Open a tape-free decoding session shared by *many* trips at once:
    /// the serving runtime behind cross-request continuous batching. Weight
    /// packing and the per-token gate memo happen once for the session;
    /// per-trip slot-head projections are registered with
    /// [`MultiTripSession::add_trip`] and freed with
    /// [`MultiTripSession::remove_trip`] as requests join and leave the
    /// step batch. Full-precision ([`InferPrecision::F32`]) kernels — row
    /// `i` of a batched multi-trip step is bit-identical to stepping the
    /// same row alone in that trip's own [`InferSession`].
    pub fn multi_trip_session(&self) -> MultiTripSession<'_> {
        let _scope = TapeFreeScope::enter();
        MultiTripSession {
            model: self,
            arena: ScratchArena::new(),
            kernels: StepKernels::new(self, InferPrecision::F32),
            trips: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Test/validation hook: an [`InferPrecision::Int8`] session whose slot
    /// head is quantized to only `levels` magnitude levels instead of the
    /// full 127. This deliberately degrades the quantizer so the statistical
    /// route-match harness can prove it *fails* a planted regression — it is
    /// not a production knob.
    #[doc(hidden)]
    pub fn infer_session_int8_coarse(&self, ctx: &TripContext, levels: i32) -> InferSession<'_> {
        let mut sess = self.infer_session_with(ctx, InferPrecision::Int8);
        sess.kernels.head = HeadKernel::Quantized(infer::QuantizedMatrix::quantize_with_levels(
            &self.alpha.value(),
            levels,
        ));
        sess
    }

    /// Static check for the config/network mismatch that the generation
    /// loop's truncation counters observe dynamically:
    /// if `net.max_out_degree()` exceeds `cfg.max_neighbors`, some
    /// transitions can never be decoded (and, because
    /// [`crate::data::Example`] slots are derived from the same network,
    /// never trained). Returns a [`LintKind::TruncatedOutputSpace`] warning
    /// naming both numbers, or `None` when the output head covers every
    /// intersection.
    pub fn lint_output_space(&self, net: &RoadNetwork) -> Option<Diagnostic> {
        let deg = net.max_out_degree();
        if deg <= self.cfg.max_neighbors {
            return None;
        }
        Some(Diagnostic {
            kind: LintKind::TruncatedOutputSpace,
            severity: Severity::Warning,
            node: None,
            message: format!(
                "network max out-degree {deg} exceeds cfg.max_neighbors {}: slots {}..{deg} \
                 are unreachable in decoding and unlearnable in training",
                self.cfg.max_neighbors, self.cfg.max_neighbors
            ),
        })
    }
}

/// A reusable tape-free decoding session for one trip.
///
/// This is the batched inference runtime behind [`DeepSt::predict_route`],
/// [`DeepSt::predict_continuation`] and the beam decoder: the recurrent
/// state is packed as one `[n, hidden]` matrix per GRU layer, so one
/// [`InferSession::step_into`] call advances *all* `n` beam candidates with
/// a single batched GEMM per weight matrix. The per-trip projections `fx·β`
/// and `c·γ` are computed once at session start; each step only runs the
/// `h·α` product. All intermediates come from a [`ScratchArena`], so a
/// steady-state decode loop performs no heap allocation, and every step
/// runs inside a [`TapeFreeScope`] (debug builds assert that no autodiff
/// tape is ever created on this path).
///
/// Row `i` of a batched step is bit-identical to stepping row `i` alone —
/// the GEMM kernel accumulates each output row independently in the same
/// order — which is what makes batched beam decoding produce exactly the
/// same routes as the clone-and-step formulation.
pub struct InferSession<'m> {
    model: &'m DeepSt,
    arena: ScratchArena,
    /// `fx·β`, shape `[1, max_neighbors]`.
    fx_beta: Array,
    /// `c·γ`, shape `[1, max_neighbors]`; `None` for DeepST-C.
    c_gamma: Option<Array>,
    /// The trip-independent packed/quantized step kernels + token memo.
    kernels: StepKernels,
}

/// The trip-*independent* half of a decoding session: packed recurrent
/// weights, the slot-head kernel, the optional int8 embedding table and the
/// per-token `emb·Wx` gate memo. [`InferSession`] (one trip) and
/// [`MultiTripSession`] (many trips, continuous batching) both drive their
/// steps through one `StepKernels`, so the arithmetic of a step — and
/// therefore its bit pattern — cannot diverge between the two.
struct StepKernels {
    /// GRU weights packed once at session start for the fused step kernel.
    packed_gru: PackedGru,
    /// The slot head `α`, packed (f32) or quantized (int8) per `precision`.
    head: HeadKernel,
    /// int8 embedding table, present only under [`InferPrecision::Int8`].
    emb_q: Option<infer::QuantizedTable>,
    precision: InferPrecision,
    /// Per-token memo of the bottom GRU layer's `emb(token)·Wx` gate rows:
    /// that projection depends only on the token, and beam decoding revisits
    /// the same segments constantly. `gx0_slot[token]` indexes into
    /// `gx0_cache` (`usize::MAX` = not yet computed); rows are `3·hidden` wide.
    gx0_slot: Vec<usize>,
    gx0_cache: Vec<f32>,
}

impl StepKernels {
    fn new(model: &DeepSt, precision: InferPrecision) -> Self {
        let packed_gru = PackedGru::pack(&model.gru);
        let (head, emb_q) = match precision {
            InferPrecision::F32 => (
                HeadKernel::Packed(infer::PackedWeights::pack(&model.alpha.value())),
                None,
            ),
            InferPrecision::Int8 => (
                HeadKernel::Quantized(infer::QuantizedMatrix::quantize(&model.alpha.value())),
                Some(model.emb.quantize()),
            ),
        };
        Self {
            packed_gru,
            head,
            emb_q,
            precision,
            gx0_slot: vec![usize::MAX; model.emb.vocab()],
            gx0_cache: Vec::new(),
        }
    }

    /// One batched recurrent step to *raw* slot logits: per-token gate memo,
    /// fused GRU update of `state` in place, head projection of the top
    /// layer. Applies no per-trip bias and no softmax — callers layer those
    /// on per their trip layout. Returns `None` only for an empty state.
    fn step_logits(
        &mut self,
        model: &DeepSt,
        arena: &mut ScratchArena,
        tokens: &[SegmentId],
        state: &mut [Array],
    ) -> Option<Array> {
        let n = tokens.len();
        // Bottom-layer gate rows `emb(token)·Wx` come from the per-token
        // memo; a miss computes the row batch-of-one (bit-identical to any
        // batched row — the GEMM accumulates rows independently) and caches
        // it for the rest of the session.
        let g = 3 * self.packed_gru.hidden();
        let mut gx0 = arena.alloc_uninit(&[n, g]);
        for (i, &tok) in tokens.iter().enumerate() {
            let mut slot = self.gx0_slot[tok];
            if slot == usize::MAX {
                let x1 = match &self.emb_q {
                    Some(table) => infer::gather_rows_quantized(arena, table, &[tok]),
                    None => model.emb.infer(arena, &[tok]),
                };
                let g1 = self.packed_gru.gate_x0(arena, &x1);
                slot = self.gx0_cache.len() / g;
                self.gx0_cache.extend_from_slice(g1.data());
                self.gx0_slot[tok] = slot;
                arena.recycle(g1);
                arena.recycle(x1);
            }
            let row = &self.gx0_cache[slot * g..(slot + 1) * g];
            gx0.data_mut()[i * g..(i + 1) * g].copy_from_slice(row);
        }
        self.packed_gru
            .infer_step_fused_pregx(arena, &mut gx0, state);
        arena.recycle(gx0);
        let h = state.last()?;
        Some(match &self.head {
            HeadKernel::Packed(alpha) => infer::matmul_packed(arena, h, alpha),
            HeadKernel::Quantized(alpha) => infer::matmul_quantized(arena, h, alpha),
        })
    }
}

/// Numeric precision of an [`InferSession`]'s decode hot loop.
///
/// `F32` is the default and is bit-identical to the taped forward pass.
/// `Int8` quantizes the embedding table (per-row scales) and the slot-head
/// projection `α` (per-output-channel scales) to int8 with f32 accumulation;
/// the GRU recurrence stays f32. Int8 output is validated *statistically*
/// (route top-1 match rate and Jaccard overlap vs the f32 oracle), never
/// bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferPrecision {
    /// Full-precision packed kernels, bit-identical to the taped oracle.
    #[default]
    F32,
    /// int8 embeddings + output projection, f32 GRU and accumulation.
    Int8,
}

/// How [`InferSession::step_into`] projects hidden state to slot logits.
enum HeadKernel {
    /// `α` pre-packed for the f32 GEMM micro-kernel.
    Packed(infer::PackedWeights),
    /// `α` quantized to int8 with per-output-channel scales.
    Quantized(infer::QuantizedMatrix),
}

impl<'m> InferSession<'m> {
    /// The model this session decodes with.
    pub fn model(&self) -> &'m DeepSt {
        self.model
    }

    /// Packed zero state for `n` rows: one zeroed `[n, hidden]` per layer.
    pub fn zero_state(&mut self, n: usize) -> Vec<Array> {
        self.model.gru.infer_zero_state(&mut self.arena, n)
    }

    /// Advance all rows one step: feed `tokens[i]` into state row `i`,
    /// update `state` in place and refill `logp` with the
    /// `tokens.len() × max_neighbors` row-major slot log-probabilities.
    ///
    /// `logp` is a caller-provided buffer precisely so per-step decode loops
    /// allocate nothing: it is cleared and refilled, never reallocated once
    /// its capacity has grown to one step's size.
    pub fn step_into(&mut self, tokens: &[SegmentId], state: &mut [Array], logp: &mut Vec<f64>) {
        let _scope = TapeFreeScope::enter();
        let n = tokens.len();
        assert!(n > 0, "step_into needs at least one token");
        assert!(
            !state.is_empty() && state[0].shape()[0] == n,
            "state rows must match tokens"
        );
        let Some(mut logits) = self
            .kernels
            .step_logits(self.model, &mut self.arena, tokens, state)
        else {
            return;
        };
        // Same per-element association as the taped head:
        // (h·α + fx·β) then (+ c·γ).
        infer::add_bias_rows(&mut logits, self.fx_beta.data());
        if let Some(cg) = &self.c_gamma {
            infer::add_bias_rows(&mut logits, cg.data());
        }
        infer::log_softmax_rows_mut(&mut logits);
        logp.clear();
        logp.extend(logits.data().iter().map(|&v| f64::from(v)));
        self.arena.recycle(logits);
        // The tape-free runtime allocates no tape at all; pinning the gauge
        // at 0 keeps the old per-step-tape telemetry readable (it used to
        // report one taped step's high-water mark).
        st_obs::gauge("predict.step_tape_peak_bytes").max(0.0);
    }

    /// The pre-packing batched step: identical semantics to
    /// [`InferSession::step_into`] at [`InferPrecision::F32`] (bit-identical
    /// output, asserted in tests), but re-packs every weight matrix on every
    /// call. Kept as the decode-bench baseline so the fused-kernel speedup is
    /// measured against a live implementation, not a recorded number.
    pub fn step_into_generic(
        &mut self,
        tokens: &[SegmentId],
        state: &mut [Array],
        logp: &mut Vec<f64>,
    ) {
        let _scope = TapeFreeScope::enter();
        let n = tokens.len();
        assert!(n > 0, "step_into needs at least one token");
        assert!(
            !state.is_empty() && state[0].shape()[0] == n,
            "state rows must match tokens"
        );
        let x = self.model.emb.infer(&mut self.arena, tokens);
        self.model.gru.infer_step(&mut self.arena, &x, state);
        self.arena.recycle(x);
        let Some(h) = state.last() else { return };
        // st-lint: allow unpacked-gemm-in-infer — this *is* the unpacked
        // baseline the packed path is benchmarked against.
        let mut logits = infer::matmul(&mut self.arena, h, &self.model.alpha.value());
        for r in 0..n {
            for (o, &b) in logits.row_mut(r).iter_mut().zip(self.fx_beta.data()) {
                *o += b;
            }
            if let Some(cg) = &self.c_gamma {
                for (o, &g) in logits.row_mut(r).iter_mut().zip(cg.data()) {
                    *o += g;
                }
            }
        }
        infer::log_softmax_rows_mut(&mut logits);
        logp.clear();
        logp.extend(logits.data().iter().map(|&v| f64::from(v)));
        self.arena.recycle(logits);
        st_obs::gauge("predict.step_tape_peak_bytes").max(0.0);
    }

    /// The numeric precision this session decodes at.
    pub fn precision(&self) -> InferPrecision {
        self.kernels.precision
    }

    /// New packed state whose row `i` is `state`'s row `rows[i]` — the beam
    /// decoder's survivor selection. Rows may repeat (one parent expanding
    /// into several survivors) or be dropped.
    pub fn gather_state(&mut self, state: &[Array], rows: &[usize]) -> Vec<Array> {
        state
            .iter()
            .map(|layer| {
                let cols = layer.shape()[1];
                // Every row is overwritten below, so skip the zero fill.
                let mut out = self.arena.alloc_uninit(&[rows.len(), cols]);
                for (r, &src) in rows.iter().enumerate() {
                    out.row_mut(r).copy_from_slice(layer.row(src));
                }
                out
            })
            .collect()
    }

    /// Return a packed state's buffers to the session's arena pool.
    pub fn recycle_state(&mut self, state: Vec<Array>) {
        for a in state {
            self.arena.recycle(a);
        }
    }
}

/// Per-trip slot-head projections registered with a [`MultiTripSession`].
struct TripSlot {
    /// `fx·β`, shape `[1, max_neighbors]`.
    fx_beta: Array,
    /// `c·γ`, shape `[1, max_neighbors]`; `None` for DeepST-C.
    c_gamma: Option<Array>,
}

/// A tape-free decoding session shared by many concurrent trips — the
/// substrate for cross-request continuous batching in `st-serve`.
///
/// Where [`InferSession`] fixes one trip's context at construction, a
/// `MultiTripSession` keeps a slot map of per-trip projections (`fx·β`,
/// `c·γ`) and takes a per-row trip assignment on every step, so rows
/// belonging to *different* requests advance through one packed GEMM per
/// weight matrix. The GRU recurrence and head projection are trip-independent
/// (shared [`StepKernels`], including the per-token gate memo, which
/// therefore warms across requests); only the final slot-head bias is
/// per-trip, applied per row with exactly the elementwise order of
/// [`InferSession::step_into`]. Row `i` of a multi-trip step is bit-identical
/// to stepping row `i` alone in its own trip's session — the invariant the
/// `batching_parity` tests in `st-serve` pin end to end.
pub struct MultiTripSession<'m> {
    model: &'m DeepSt,
    arena: ScratchArena,
    kernels: StepKernels,
    /// Slot map of registered trips; `None` slots are free.
    trips: Vec<Option<TripSlot>>,
    free: Vec<usize>,
}

impl<'m> MultiTripSession<'m> {
    /// The model this session decodes with.
    pub fn model(&self) -> &'m DeepSt {
        self.model
    }

    /// Register one trip's context; returns the trip id used in
    /// [`MultiTripSession::step_into`] row assignments. Slots of removed
    /// trips are reused.
    pub fn add_trip(&mut self, ctx: &TripContext) -> usize {
        assert_eq!(
            ctx.c.is_some(),
            self.model.cfg.use_traffic,
            "trip context must match cfg.use_traffic"
        );
        let _scope = TapeFreeScope::enter();
        let (fx_beta, c_gamma) = self.model.trip_projections(&mut self.arena, ctx);
        let slot = TripSlot { fx_beta, c_gamma };
        match self.free.pop() {
            Some(i) => {
                self.trips[i] = Some(slot);
                i
            }
            None => {
                self.trips.push(Some(slot));
                self.trips.len() - 1
            }
        }
    }

    /// Unregister a trip (its request finished); the slot is recycled.
    /// The id must come from [`MultiTripSession::add_trip`] and not have
    /// been removed already.
    pub fn remove_trip(&mut self, trip: usize) {
        let slot = self.trips[trip].take();
        assert!(slot.is_some(), "trip {trip} is not registered");
        if let Some(s) = slot {
            self.arena.recycle(s.fx_beta);
            if let Some(cg) = s.c_gamma {
                self.arena.recycle(cg);
            }
        }
        self.free.push(trip);
    }

    /// Number of currently registered trips.
    pub fn active_trips(&self) -> usize {
        self.trips.len() - self.free.len()
    }

    /// Packed zero state for `n` rows: one zeroed `[n, hidden]` per layer.
    pub fn zero_state(&mut self, n: usize) -> Vec<Array> {
        self.model.gru.infer_zero_state(&mut self.arena, n)
    }

    /// Advance all rows one step: feed `tokens[i]` into state row `i`,
    /// which belongs to registered trip `trips[i]`; update `state` in place
    /// and refill `logp` with the `tokens.len() × max_neighbors` row-major
    /// slot log-probabilities. Rows of different trips may interleave
    /// freely; each row's bias comes from its own trip's projections.
    pub fn step_into(
        &mut self,
        tokens: &[SegmentId],
        trips: &[usize],
        state: &mut [Array],
        logp: &mut Vec<f64>,
    ) {
        let _scope = TapeFreeScope::enter();
        let n = tokens.len();
        assert!(n > 0, "step_into needs at least one token");
        assert_eq!(trips.len(), n, "one trip id per token row");
        assert!(
            !state.is_empty() && state[0].shape()[0] == n,
            "state rows must match tokens"
        );
        let Some(mut logits) = self
            .kernels
            .step_logits(self.model, &mut self.arena, tokens, state)
        else {
            return;
        };
        // Per-row biases in the same per-element association as the
        // single-trip path: (h·α + fx·β) then (+ c·γ). A plain elementwise
        // `+=` over one row is exactly what `infer::add_bias_rows` performs
        // on that row, so the bits match `InferSession::step_into`.
        for (r, &trip) in trips.iter().enumerate() {
            let slot = self.trips[trip].as_ref();
            assert!(
                slot.is_some(),
                "row {r} references unregistered trip {trip}"
            );
            let Some(slot) = slot else { continue };
            for (o, &b) in logits.row_mut(r).iter_mut().zip(slot.fx_beta.data()) {
                *o += b;
            }
            if let Some(cg) = &slot.c_gamma {
                for (o, &g) in logits.row_mut(r).iter_mut().zip(cg.data()) {
                    *o += g;
                }
            }
        }
        infer::log_softmax_rows_mut(&mut logits);
        logp.clear();
        logp.extend(logits.data().iter().map(|&v| f64::from(v)));
        self.arena.recycle(logits);
        st_obs::gauge("predict.step_tape_peak_bytes").max(0.0);
    }

    /// New packed state whose row `i` is `state`'s row `rows[i]` when
    /// `Some`, or a fresh zero row when `None` — survivor selection plus
    /// admission of newly joined requests in one gather. Rows may repeat or
    /// be dropped.
    pub fn gather_state_or_zero(&mut self, state: &[Array], rows: &[Option<usize>]) -> Vec<Array> {
        if state.is_empty() {
            // No prior step has run, so there are no rows to copy from;
            // every requested row must be fresh.
            assert!(
                rows.iter().all(Option::is_none),
                "cannot gather existing rows from an empty state"
            );
            return self.zero_state(rows.len());
        }
        state
            .iter()
            .map(|layer| {
                let cols = layer.shape()[1];
                // Every row is overwritten below, so skip the zero fill.
                let mut out = self.arena.alloc_uninit(&[rows.len(), cols]);
                for (r, &src) in rows.iter().enumerate() {
                    match src {
                        Some(src) => out.row_mut(r).copy_from_slice(layer.row(src)),
                        None => out.row_mut(r).fill(0.0),
                    }
                }
                out
            })
            .collect()
    }

    /// Return a packed state's buffers to the session's arena pool.
    pub fn recycle_state(&mut self, state: Vec<Array>) {
        for a in state {
            self.arena.recycle(a);
        }
    }
}

fn sample_index(probs: &[f32], rng: &mut StdRng) -> usize {
    let mut u: f32 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepStConfig;
    use st_roadnet::{grid_city, GridConfig};
    use st_tensor::init;

    fn setup() -> (st_roadnet::RoadNetwork, DeepSt) {
        let net = grid_city(&GridConfig::small_test(), 2);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 0);
        (net, model)
    }

    #[test]
    fn context_shapes() {
        let (_, model) = setup();
        let c = model.encode_traffic(&vec![0.1; 64]);
        assert_eq!(c.shape(), &[1, model.cfg.c_dim]);
        let ctx = model.encode_context([0.4, 0.6], Some(c));
        assert_eq!(ctx.fx.shape(), &[1, model.cfg.n_x]);
        assert_eq!(ctx.pi.shape(), &[model.cfg.k_proxies]);
        let sum: f32 = ctx.pi.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "π not a distribution");
    }

    /// The pre-PR-4 `predict_route`: one tape/binder shared across the
    /// whole generation loop (so the tape grows with route length). Kept
    /// verbatim as the behavioural oracle for the fresh-tape-per-step
    /// rewrite — greedy decoding must produce identical routes.
    fn reference_one_tape_greedy(
        model: &DeepSt,
        net: &st_roadnet::RoadNetwork,
        start: SegmentId,
        dest_m: &Point,
        ctx: &TripContext,
    ) -> Route {
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let fx = binder.input(ctx.fx.clone());
        let c = ctx.c.as_ref().map(|c| binder.input(c.clone()));
        let mut state = model.gru.zero_state(&binder, 1);
        let mut route = vec![start];
        let mut cur = start;
        loop {
            if route.len() >= model.cfg.max_route_len {
                break;
            }
            let nexts = net.next_segments(cur);
            if nexts.is_empty() {
                break;
            }
            let inp = model.emb.forward(&binder, &[cur]);
            let hid = model.gru.step(&binder, inp, &mut state);
            let logits = model.slot_logits(&binder, hid, fx, c);
            let lv = logits.value();
            let valid = &lv.data()[..nexts.len().min(model.cfg.max_neighbors)];
            let mut best = 0;
            for (j, &v) in valid.iter().enumerate() {
                if v > valid[best] {
                    best = j;
                }
            }
            let next = nexts[best];
            route.push(next);
            cur = next;
            let proj = net.project_onto(dest_m, next);
            if model.termination_prob(proj.dist(dest_m)) > 0.5 {
                break;
            }
        }
        route
    }

    #[test]
    fn stepwise_greedy_matches_one_tape_reference() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        for (start, dest_norm, dest) in [
            (0usize, [0.8f32, 0.8f32], Point::new(300.0, 300.0)),
            (3, [0.2, 0.9], Point::new(100.0, 300.0)),
            (7, [0.5, 0.1], Point::new(200.0, 50.0)),
        ] {
            let ctx = model.encode_context(dest_norm, Some(c.clone()));
            let expect = reference_one_tape_greedy(&model, &net, start, &dest, &ctx);
            let got = model.predict_route(&net, start, &dest, &ctx, None);
            assert_eq!(got, expect, "start {start} dest {dest:?}");
        }
    }

    #[test]
    fn generation_allocates_no_tapes() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        let ctx = model.encode_context([0.9, 0.9], Some(c));
        // The whole decode — context encoding included — runs on the
        // tape-free inference runtime: the thread's tape-creation counter
        // must not move across an entire route generation.
        let created = Tape::created_count();
        let route = model.predict_route(&net, 0, &Point::new(380.0, 380.0), &ctx, None);
        assert!(route.len() >= 2);
        assert_eq!(
            Tape::created_count(),
            created,
            "decoding allocated an autodiff tape"
        );
        // The per-step tape high-water gauge is pinned at 0 on this path
        // (it used to report one taped step's peak bytes).
        assert_eq!(st_obs::gauge("predict.step_tape_peak_bytes").get(), 0.0);
    }

    /// The tape-free step must reproduce the pre-refactor taped step
    /// bit-for-bit: log-probs (f64) and every state element (f32), over a
    /// multi-step rollout so state differences would compound and surface.
    #[test]
    fn infer_step_matches_taped_step_bitwise() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.3; 64]);
        let ctx = model.encode_context([0.4, 0.7], Some(c));
        let mut infer_state = model.initial_state();
        let mut taped_state = model.initial_state();
        let mut cur = 0usize;
        for step in 0..6 {
            let (ni, li) = model.step_state(&infer_state, cur, &ctx);
            let (nt, lt) = model.step_state_taped(&taped_state, cur, &ctx);
            let li_bits: Vec<u64> = li.iter().map(|v| v.to_bits()).collect();
            let lt_bits: Vec<u64> = lt.iter().map(|v| v.to_bits()).collect();
            assert_eq!(li_bits, lt_bits, "log-prob mismatch at step {step}");
            for (layer, (a, b)) in ni.iter().zip(&nt).enumerate() {
                let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb, "state mismatch at step {step} layer {layer}");
            }
            infer_state = ni;
            taped_state = nt;
            cur = net.next_segments(cur)[0];
        }
    }

    /// The fused packed step (the default `step_into`) and the retained
    /// generic step must agree bit-for-bit at f32 precision: log-probs (f64)
    /// and every state element (f32), over a multi-step batched rollout.
    #[test]
    fn fused_step_matches_generic_step_bitwise() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.25; 64]);
        let ctx = model.encode_context([0.3, 0.8], Some(c));
        let mut fused = model.infer_session(&ctx);
        let mut generic = model.infer_session(&ctx);
        let mut state_f = fused.zero_state(3);
        let mut state_g = generic.zero_state(3);
        let mut tokens: Vec<usize> = vec![0, 3, 7];
        let (mut lp_f, mut lp_g) = (Vec::new(), Vec::new());
        for step in 0..6 {
            fused.step_into(&tokens, &mut state_f, &mut lp_f);
            generic.step_into_generic(&tokens, &mut state_g, &mut lp_g);
            let fb: Vec<u64> = lp_f.iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u64> = lp_g.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, gb, "log-prob mismatch at step {step}");
            for (layer, (a, b)) in state_f.iter().zip(&state_g).enumerate() {
                let ab: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(ab, bb, "state mismatch at step {step} layer {layer}");
            }
            tokens = tokens.iter().map(|&t| net.next_segments(t)[0]).collect();
        }
    }

    /// The int8 session must emit valid, finite log-distributions that stay
    /// close to the f32 oracle (the hard route-level accuracy gate lives in
    /// the decode benchmark), and must be deterministic across sessions.
    #[test]
    fn int8_session_tracks_f32_distributions() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.15; 64]);
        let ctx = model.encode_context([0.7, 0.4], Some(c));
        let mut f32s = model.infer_session(&ctx);
        let mut q = model.infer_session_with(&ctx, InferPrecision::Int8);
        let mut q2 = model.infer_session_with(&ctx, InferPrecision::Int8);
        assert_eq!(q.precision(), InferPrecision::Int8);
        assert_eq!(f32s.precision(), InferPrecision::F32);
        let a = model.cfg.max_neighbors;
        let mut sf = f32s.zero_state(2);
        let mut sq = q.zero_state(2);
        let mut sq2 = q2.zero_state(2);
        let mut tokens: Vec<usize> = vec![1, 5];
        let (mut lf, mut lq, mut lq2) = (Vec::new(), Vec::new(), Vec::new());
        for step in 0..6 {
            f32s.step_into(&tokens, &mut sf, &mut lf);
            q.step_into(&tokens, &mut sq, &mut lq);
            q2.step_into(&tokens, &mut sq2, &mut lq2);
            assert_eq!(lq, lq2, "int8 decode must be deterministic");
            for (row, chunk) in lq.chunks(a).enumerate() {
                let sum: f64 = chunk.iter().map(|&v| v.exp()).sum();
                assert!(
                    (sum - 1.0).abs() < 1e-5,
                    "row {row} not a distribution at step {step}: {sum}"
                );
            }
            let worst = lf
                .iter()
                .zip(&lq)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst < 0.2,
                "int8 log-probs drifted {worst} from f32 at step {step}"
            );
            tokens = tokens.iter().map(|&t| net.next_segments(t)[0]).collect();
        }
    }

    /// Row `i` of a batched session step equals stepping row `i` alone —
    /// the property that makes packed-state beam decoding bit-identical to
    /// the clone-and-step formulation.
    #[test]
    fn batched_step_rows_match_single_rows() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.1; 64]);
        let ctx = model.encode_context([0.6, 0.3], Some(c));
        // Distinct tokens per row, two chained steps so states diverge.
        let tokens0: Vec<usize> = (0..5).map(|i| i % net.num_segments()).collect();
        let tokens1: Vec<usize> = tokens0.iter().map(|&t| net.next_segments(t)[0]).collect();
        let n = tokens0.len();

        let mut sess = model.infer_session(&ctx);
        let mut batched = sess.zero_state(n);
        let mut lp_b = Vec::new();
        sess.step_into(&tokens0, &mut batched, &mut lp_b);
        let mut lp_b2 = Vec::new();
        sess.step_into(&tokens1, &mut batched, &mut lp_b2);

        let a = model.cfg.max_neighbors;
        for r in 0..n {
            let mut single = sess.zero_state(1);
            let mut lp_s = Vec::new();
            sess.step_into(&tokens0[r..=r], &mut single, &mut lp_s);
            let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
            assert_eq!(
                bits(&lp_b[r * a..(r + 1) * a]),
                bits(&lp_s),
                "row {r} step 0"
            );
            sess.step_into(&tokens1[r..=r], &mut single, &mut lp_s);
            assert_eq!(
                bits(&lp_b2[r * a..(r + 1) * a]),
                bits(&lp_s),
                "row {r} step 1"
            );
            for (layer, (b, s)) in batched.iter().zip(&single).enumerate() {
                let bb: Vec<u32> = b.row(r).iter().map(|v| v.to_bits()).collect();
                let sb: Vec<u32> = s.row(0).iter().map(|v| v.to_bits()).collect();
                assert_eq!(bb, sb, "row {r} layer {layer} state");
            }
            sess.recycle_state(single);
        }
    }

    /// Interleaved rows of a multi-trip batched step must be bit-identical
    /// to stepping each row alone in its own trip's [`InferSession`] — the
    /// invariant cross-request continuous batching stands on. Uses two
    /// different trip contexts and chains steps so state differences would
    /// compound and surface.
    #[test]
    fn multi_trip_rows_match_single_trip_sessions() {
        let (net, model) = setup();
        let ca = model.encode_traffic(&vec![0.1; 64]);
        let cb = model.encode_traffic(&vec![0.7; 64]);
        let ctx_a = model.encode_context([0.2, 0.8], Some(ca));
        let ctx_b = model.encode_context([0.9, 0.3], Some(cb));

        let mut multi = model.multi_trip_session();
        let ta = multi.add_trip(&ctx_a);
        let tb = multi.add_trip(&ctx_b);
        assert_eq!(multi.active_trips(), 2);
        // Rows interleave the two trips: a, b, a, b.
        let trips = [ta, tb, ta, tb];
        let mut tokens: Vec<usize> = vec![0, 0, 3, 5];
        let mut state = multi.zero_state(4);
        let mut lp = Vec::new();

        let mut sess_a = model.infer_session(&ctx_a);
        let mut sess_b = model.infer_session(&ctx_b);
        let mut singles: Vec<(usize, Vec<Array>)> = (0..4)
            .map(|r| {
                if trips[r] == ta {
                    (r, sess_a.zero_state(1))
                } else {
                    (r, sess_b.zero_state(1))
                }
            })
            .collect();

        let a = model.cfg.max_neighbors;
        let mut lp_s = Vec::new();
        for step in 0..5 {
            multi.step_into(&tokens, &trips, &mut state, &mut lp);
            for (r, single) in singles.iter_mut() {
                let sess = if trips[*r] == ta {
                    &mut sess_a
                } else {
                    &mut sess_b
                };
                sess.step_into(&tokens[*r..=*r], single, &mut lp_s);
                let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
                assert_eq!(
                    bits(&lp[*r * a..(*r + 1) * a]),
                    bits(&lp_s),
                    "row {r} step {step} log-probs"
                );
                for (layer, (m, s)) in state.iter().zip(single.iter()).enumerate() {
                    let mb: Vec<u32> = m.row(*r).iter().map(|v| v.to_bits()).collect();
                    let sb: Vec<u32> = s.row(0).iter().map(|v| v.to_bits()).collect();
                    assert_eq!(mb, sb, "row {r} step {step} layer {layer} state");
                }
            }
            tokens = tokens.iter().map(|&t| net.next_segments(t)[0]).collect();
        }
    }

    /// Removing a trip frees its slot for reuse; stepping rows of the
    /// remaining trip is unaffected, and `gather_state_or_zero` zero-fills
    /// `None` rows (fresh request admission) while copying `Some` rows.
    #[test]
    fn multi_trip_slots_recycle_and_gather_zero_fills() {
        let (_, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        let mut multi = model.multi_trip_session();
        let t0 = multi.add_trip(&ctx);
        let t1 = multi.add_trip(&ctx);
        multi.remove_trip(t0);
        assert_eq!(multi.active_trips(), 1);
        let t2 = multi.add_trip(&ctx);
        assert_eq!(t2, t0, "freed slot must be reused");

        let mut state = multi.zero_state(2);
        let mut lp = Vec::new();
        multi.step_into(&[1, 2], &[t1, t2], &mut state, &mut lp);
        let picked = multi.gather_state_or_zero(&state, &[Some(1), None, Some(0)]);
        for (layer, src) in picked.iter().zip(&state) {
            assert_eq!(layer.shape(), &[3, model.cfg.hidden]);
            assert_eq!(layer.row(0), src.row(1));
            assert!(
                layer.row(1).iter().all(|&v| v == 0.0),
                "None row not zeroed"
            );
            assert_eq!(layer.row(2), src.row(0));
        }
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn multi_trip_double_remove_panics() {
        let (_, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        let mut multi = model.multi_trip_session();
        let t = multi.add_trip(&ctx);
        multi.remove_trip(t);
        multi.remove_trip(t);
    }

    /// `gather_state` must copy exactly the requested rows, with repeats.
    #[test]
    fn gather_state_selects_rows() {
        let (_, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        let mut sess = model.infer_session(&ctx);
        let mut state = sess.zero_state(3);
        let mut lp = Vec::new();
        sess.step_into(&[0, 1, 2], &mut state, &mut lp);
        let picked = sess.gather_state(&state, &[2, 0, 2, 1]);
        for (layer, src) in picked.iter().zip(&state) {
            assert_eq!(layer.shape(), &[4, model.cfg.hidden]);
            for (dst_row, &src_row) in [2usize, 0, 2, 1].iter().enumerate() {
                assert_eq!(layer.row(dst_row), src.row(src_row));
            }
        }
    }

    #[test]
    fn lint_output_space_flags_narrow_head() {
        let (net, model) = setup();
        // This config was built from net.max_out_degree(), so it is clean.
        assert!(model.lint_output_space(&net).is_none());
        // A config one slot narrower than the network must be flagged.
        let mut cfg = model.cfg.clone();
        cfg.max_neighbors = net.max_out_degree() - 1;
        let narrow = DeepSt::new(cfg, 0);
        let diag = narrow.lint_output_space(&net).expect("expected diagnostic");
        assert_eq!(diag.kind, st_tensor::LintKind::TruncatedOutputSpace);
        assert_eq!(diag.severity, st_tensor::Severity::Warning);
        assert!(diag.message.contains("max_neighbors"));
        // And decoding with it counts truncated transitions. Start from a
        // segment whose successor list has the full max out-degree, so the
        // very first step is guaranteed to truncate.
        let start = (0..net.num_segments())
            .find(|&s| net.next_segments(s).len() == net.max_out_degree())
            .expect("grid has a max-degree intersection");
        let before = st_obs::counter("decode.truncated_transitions").get();
        let c = narrow.encode_traffic(&vec![0.2; 64]);
        let ctx = narrow.encode_context([0.9, 0.9], Some(c));
        let route = narrow.predict_route(&net, start, &Point::new(380.0, 380.0), &ctx, None);
        assert!(net.is_valid_route(&route));
        assert!(
            st_obs::counter("decode.truncated_transitions").get() > before,
            "no truncation observed on a narrow head"
        );
    }

    #[test]
    fn greedy_prediction_is_valid_and_deterministic() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        let ctx = model.encode_context([0.8, 0.8], Some(c));
        let dest = Point::new(300.0, 300.0);
        let r1 = model.predict_route(&net, 0, &dest, &ctx, None);
        let r2 = model.predict_route(&net, 0, &dest, &ctx, None);
        assert_eq!(r1, r2);
        assert!(net.is_valid_route(&r1));
        assert!(r1.len() <= model.cfg.max_route_len);
        assert_eq!(r1[0], 0);
    }

    #[test]
    fn sampled_prediction_is_valid() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        let ctx = model.encode_context([0.2, 0.9], Some(c));
        let dest = Point::new(100.0, 300.0);
        let mut rng = init::rng(7);
        for _ in 0..5 {
            let r = model.predict_route(&net, 3, &dest, &ctx, Some(&mut rng));
            assert!(net.is_valid_route(&r));
        }
    }

    #[test]
    fn score_penalizes_invalid_routes() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.0; 64]);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        // invalid: two non-adjacent segments
        let mut bad = vec![0usize, 0];
        for s in 0..net.num_segments() {
            if !net.adjacent(0, s) {
                bad = vec![0, s];
                break;
            }
        }
        assert_eq!(model.score_route(&net, &bad, &ctx), f64::NEG_INFINITY);
        // valid routes have finite, negative log-likelihood
        let good = vec![0, net.next_segments(0)[0]];
        let s = model.score_route(&net, &good, &ctx);
        assert!(s.is_finite() && s < 0.0);
    }

    #[test]
    fn sampled_score_close_to_mean_score() {
        let (net, model) = setup();
        let tensor = vec![0.2f32; 64];
        let c = model.encode_traffic(&tensor);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        let mut route = vec![0usize];
        for _ in 0..4 {
            route.push(net.next_segments(*route.last().unwrap())[0]);
        }
        let mean_score = model.score_route(&net, &route, &ctx);
        let mut rng = init::rng(5);
        let sampled =
            model.score_route_sampled(&net, &route, [0.5, 0.5], Some(&tensor), 16, &mut rng);
        assert!(sampled.is_finite());
        // the sampled estimate is in the same ballpark as the mean-posterior
        // score (an untrained model's posterior is diffuse, so allow slack)
        assert!(
            (sampled - mean_score).abs() < mean_score.abs() * 0.8 + 2.0,
            "sampled {sampled} vs mean {mean_score}"
        );
        // invalid routes still score −∞
        let mut bad = route.clone();
        bad.push(0);
        if !net.adjacent(*route.last().unwrap(), 0) {
            assert_eq!(
                model.score_route_sampled(&net, &bad, [0.5, 0.5], Some(&tensor), 4, &mut rng),
                f64::NEG_INFINITY
            );
        }
    }

    #[test]
    fn continuation_extends_prefix() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.1; 64]);
        let ctx = model.encode_context([0.7, 0.2], Some(c));
        let mut prefix = vec![0usize];
        for _ in 0..3 {
            prefix.push(net.next_segments(*prefix.last().unwrap())[0]);
        }
        let dest = Point::new(250.0, 80.0);
        let route = model.predict_continuation(&net, &prefix, &dest, &ctx, None);
        assert!(route.len() >= prefix.len());
        assert_eq!(&route[..prefix.len()], prefix.as_slice());
        assert!(net.is_valid_route(&route));
        // deterministic
        let again = model.predict_continuation(&net, &prefix, &dest, &ctx, None);
        assert_eq!(route, again);
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn continuation_rejects_empty_prefix() {
        let (net, model) = setup();
        let ctx = model.encode_context([0.5, 0.5], Some(model.encode_traffic(&vec![0.0; 64])));
        let _ = model.predict_continuation(&net, &[], &Point::new(0.0, 0.0), &ctx, None);
    }

    #[test]
    fn score_sums_over_transitions() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.0; 64]);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        let mut route = vec![0usize];
        for _ in 0..4 {
            route.push(net.next_segments(*route.last().unwrap())[0]);
        }
        let full = model.score_route(&net, &route, &ctx);
        let prefix = model.score_route(&net, &route[..2], &ctx);
        assert!(
            full < prefix,
            "longer route should have lower log-likelihood"
        );
        // single-segment route scores 0 (empty product)
        assert_eq!(model.score_route(&net, &route[..1], &ctx), 0.0);
    }
}
