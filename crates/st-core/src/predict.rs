//! Route prediction (Algorithm 2) and route likelihood scoring (§IV-E).

use rand::rngs::StdRng;
use rand::Rng;

use st_tensor::{ops, Array, Binder, Diagnostic, LintKind, Severity, Tape};

use st_roadnet::{Point, RoadNetwork, Route, SegmentId};

use crate::model::DeepSt;

/// Encoded per-trip context: the destination representation `Wπ` and the
/// traffic representation `c` (posterior mean at evaluation).
#[derive(Debug, Clone)]
pub struct TripContext {
    /// `f_x(x) = Wπ`, shape `[1, n_x]`.
    pub fx: Array,
    /// Traffic latent `c`, shape `[1, |c|]`; `None` for DeepST-C.
    pub c: Option<Array>,
    /// Posterior proxy probabilities `q(π|x)`, shape `[K]`.
    pub pi: Array,
}

impl DeepSt {
    /// Encode the traffic tensor into the posterior mean of `c` (eval mode).
    /// Callers evaluating many trips should cache this per traffic slot.
    pub fn encode_traffic(&self, tensor: &[f32]) -> Array {
        assert!(self.cfg.use_traffic, "traffic pathway disabled");
        let (h, w) = (self.cfg.grid_h, self.cfg.grid_w);
        assert_eq!(tensor.len(), h * w, "traffic tensor size mismatch");
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let grid = binder.input(Array::from_vec(&[1, 1, h, w], tensor.to_vec()));
        let (mu, _) = self.traffic_posterior(&binder, grid, false, None);
        (*mu.value()).clone()
    }

    /// Encode a normalized destination coordinate into `(q(π|x), Wπ)`.
    pub fn encode_dest(&self, dest: [f32; 2]) -> (Array, Array) {
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let x = binder.input(Array::from_vec(&[1, 2], dest.to_vec()));
        let logits = self.dest_logits(&binder, x);
        let pi = ops::softmax_rows(logits);
        let w = binder.var(&self.w_proxy);
        let fx = ops::matmul(pi, w);
        (
            (*pi.value()).clone().reshape(&[self.cfg.k_proxies]),
            (*fx.value()).clone(),
        )
    }

    /// Build the full evaluation context for one trip. `traffic` must be
    /// `Some` iff the model uses the traffic pathway; pass a cached
    /// [`DeepSt::encode_traffic`] output to avoid re-running the CNN.
    pub fn encode_context(&self, dest: [f32; 2], traffic_c: Option<Array>) -> TripContext {
        assert_eq!(
            traffic_c.is_some(),
            self.cfg.use_traffic,
            "traffic context must match cfg.use_traffic"
        );
        let (pi, fx) = self.encode_dest(dest);
        TripContext {
            fx,
            c: traffic_c,
            pi,
        }
    }

    /// Algorithm 2: generate the most likely route for a trip.
    ///
    /// `start` is `T.r₁`; `dest_m` is the rough destination coordinate in
    /// meters (used only by the termination function `f_s`); `ctx` holds the
    /// encoded destination/traffic representations. With `rng = None` the
    /// generation is greedy (argmax next road, threshold termination) — this
    /// is the "most likely route" used in the evaluation; with `Some(rng)`
    /// the route is sampled from the generative process.
    ///
    /// Inference runs one fresh tape per step ([`DeepSt::step_state`]), so
    /// memory stays bounded by a single step's graph instead of growing
    /// O(route_len × ops) the way a shared tape would.
    pub fn predict_route(
        &self,
        net: &RoadNetwork,
        start: SegmentId,
        dest_m: &Point,
        ctx: &TripContext,
        rng: Option<&mut StdRng>,
    ) -> Route {
        let _sp = st_obs::span("predict/route");
        let mut route = vec![start];
        self.generate_from(net, &mut route, self.initial_state(), dest_m, ctx, rng);
        route
    }

    /// Route likelihood score with posterior *sampling*, as §IV-E describes
    /// ("once we draw c and π from the posterior distribution"): averages
    /// the route likelihood over `l_samples` draws of `c ~ q(c|C)` and
    /// `π ~ q(π|x)` (log-mean-exp). [`DeepSt::score_route`] is the
    /// deterministic posterior-mean variant used in the evaluation.
    pub fn score_route_sampled(
        &self,
        net: &RoadNetwork,
        route: &[SegmentId],
        dest: [f32; 2],
        traffic: Option<&[f32]>,
        l_samples: usize,
        rng: &mut StdRng,
    ) -> f64 {
        assert!(l_samples >= 1);
        assert_eq!(traffic.is_some(), self.cfg.use_traffic);
        // posterior parameters
        let (mu, logvar) = match traffic {
            Some(t) => {
                let (h, w) = (self.cfg.grid_h, self.cfg.grid_w);
                let tape = Tape::new();
                let binder = Binder::new(&tape);
                let grid = binder.input(Array::from_vec(&[1, 1, h, w], t.to_vec()));
                let (mu, logvar) = self.traffic_posterior(&binder, grid, false, None);
                (Some((*mu.value()).clone()), Some((*logvar.value()).clone()))
            }
            None => (None, None),
        };
        let (pi_probs, _) = self.encode_dest(dest);
        let w_proxy = self.w_proxy.value().clone();

        let mut log_liks = Vec::with_capacity(l_samples);
        for _ in 0..l_samples {
            // c = μ + σ·ε
            let c = mu.as_ref().zip(logvar.as_ref()).map(|(m, lv)| {
                let mut c = m.clone();
                for i in 0..c.len() {
                    c.data_mut()[i] +=
                        (0.5 * lv.data()[i]).exp() * st_tensor::init::sample_normal(rng);
                }
                c
            });
            // π ~ Categorical(q(π|x)) — a hard one-hot draw, f_x = W·π
            let k = st_tensor::init::sample_categorical(pi_probs.data(), rng);
            let fx = Array::from_vec(&[1, self.cfg.n_x], w_proxy.row(k).to_vec());
            let ctx = TripContext {
                fx,
                c,
                pi: pi_probs.clone(),
            };
            log_liks.push(self.score_route(net, route, &ctx));
        }
        // log-mean-exp over the samples
        let m = log_liks.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !m.is_finite() {
            return m;
        }
        m + (log_liks.iter().map(|&l| (l - m).exp()).sum::<f64>() / l_samples as f64).ln()
    }

    /// Route likelihood score (§IV-E): `Σᵢ log P(r_{i+1}|r_{1:i}, Wπ, c)`.
    /// Returns `f64::NEG_INFINITY` for invalid (non-adjacent) routes.
    pub fn score_route(&self, net: &RoadNetwork, route: &[SegmentId], ctx: &TripContext) -> f64 {
        if route.len() < 2 {
            return 0.0;
        }
        let mut slots = Vec::with_capacity(route.len() - 1);
        for w in route.windows(2) {
            match net.neighbor_slot(w[0], w[1]) {
                Some(s) => slots.push(s),
                None => return f64::NEG_INFINITY,
            }
        }
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let fx = binder.input(ctx.fx.clone());
        let c = ctx.c.as_ref().map(|c| binder.input(c.clone()));
        let mut state = self.gru.zero_state(&binder, 1);
        let mut total = 0.0f64;
        for (i, &slot) in slots.iter().enumerate() {
            let inp = self.emb.forward(&binder, &[route[i]]);
            let hid = self.gru.step(&binder, inp, &mut state);
            let logits = self.slot_logits(&binder, hid, fx, c);
            let logp = ops::log_softmax_rows(logits);
            total += logp.value().data()[slot] as f64;
        }
        total
    }
}

impl DeepSt {
    /// Continue a partially observed trip: warm the GRU up on the already
    /// traveled `prefix`, then generate the remainder of the route toward
    /// the destination (the "future movement prediction" setting of the
    /// related work, §II). Returns the full route including the prefix.
    pub fn predict_continuation(
        &self,
        net: &RoadNetwork,
        prefix: &[SegmentId],
        dest_m: &Point,
        ctx: &TripContext,
        rng: Option<&mut StdRng>,
    ) -> Route {
        let _sp = st_obs::span("predict/continuation");
        assert!(net.is_valid_route(prefix), "prefix is not a valid route");
        let Some((_, warmup)) = prefix.split_last() else {
            // the paper's queries always carry at least T.r1
            return Vec::new();
        };
        // Warm up: consume all but the last prefix segment (the last one is
        // consumed by the generation loop's first step).
        let mut state = self.initial_state();
        for &seg in warmup {
            let (ns, _) = self.step_state(&state, seg, ctx);
            state = ns;
        }
        let mut route = prefix.to_vec();
        self.generate_from(net, &mut route, state, dest_m, ctx, rng);
        route
    }

    /// Shared generation loop for [`DeepSt::predict_route`] and
    /// [`DeepSt::predict_continuation`]: extend `route` from its last
    /// segment and `state` until termination fires, a dead end is hit, or
    /// `cfg.max_route_len` is reached. Each exit cause bumps one of the
    /// `decode.term.{stop,dead_end,len_cap}` counters.
    ///
    /// Truncation behaviour: the slot head is `cfg.max_neighbors` wide, so
    /// at an intersection with a larger out-degree only the first
    /// `max_neighbors` adjacent segments can ever be chosen. Such steps are
    /// counted (`decode.truncated_transitions` / `decode.truncated_slots`)
    /// and surfaced once per process via `st_obs::warn_once`;
    /// [`DeepSt::lint_output_space`] reports the same condition statically.
    fn generate_from(
        &self,
        net: &RoadNetwork,
        route: &mut Route,
        mut state: Vec<Array>,
        dest_m: &Point,
        ctx: &TripContext,
        mut rng: Option<&mut StdRng>,
    ) {
        let Some(&last) = route.last() else { return };
        let mut cur = last;
        while route.len() < self.cfg.max_route_len {
            let nexts = net.next_segments(cur);
            if nexts.is_empty() {
                st_obs::counter("decode.term.dead_end").inc();
                return;
            }
            let (ns, logps) = self.step_state(&state, cur, ctx);
            state = ns;
            if nexts.len() > logps.len() {
                self.note_truncation(nexts.len(), logps.len());
            }
            let valid = &logps[..nexts.len().min(logps.len())];
            let slot = match rng.as_deref_mut() {
                None => {
                    // greedy argmax over valid slots (log-softmax is
                    // monotone, so this matches an argmax on raw logits)
                    let mut best = 0;
                    for (j, &v) in valid.iter().enumerate() {
                        if v > valid[best] {
                            best = j;
                        }
                    }
                    best
                }
                Some(r) => {
                    let probs: Vec<f32> = {
                        let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                        let e: Vec<f64> = valid.iter().map(|&v| (v - m).exp()).collect();
                        let z: f64 = e.iter().sum();
                        e.iter().map(|&v| (v / z) as f32).collect()
                    };
                    sample_index(&probs, r)
                }
            };
            let next = nexts[slot];
            route.push(next);
            cur = next;
            // termination: s ~ Bernoulli(f_s(r_{i+1}, x))
            let proj = net.project_onto(dest_m, next);
            let p_stop = self.termination_prob(proj.dist(dest_m));
            let stop = match rng.as_deref_mut() {
                None => p_stop > 0.5,
                Some(r) => r.gen::<f64>() < p_stop,
            };
            if stop {
                st_obs::counter("decode.term.stop").inc();
                return;
            }
        }
        st_obs::counter("decode.term.len_cap").inc();
    }

    /// Count one truncated transition and warn once per process.
    pub(crate) fn note_truncation(&self, out_degree: usize, slots: usize) {
        st_obs::counter("decode.truncated_transitions").inc();
        st_obs::counter("decode.truncated_slots").add((out_degree - slots) as u64);
        st_obs::warn_once(
            "decode.truncated-output-space",
            &format!(
                "out-degree {out_degree} exceeds the {slots}-slot output head \
                 (cfg.max_neighbors = {}): {} adjacent segment(s) are unreachable \
                 during decoding; see DeepSt::lint_output_space",
                self.cfg.max_neighbors,
                out_degree - slots
            ),
        );
    }

    /// One recurrent step outside any training tape: feed `token` into the
    /// GRU given `state` (one `[1, hidden]` array per layer) and return the
    /// new state plus the log-probabilities over the adjacent slots.
    ///
    /// This is the building block for beam decoding: states are plain
    /// arrays, so beam items can be cloned and expanded independently.
    pub fn step_state(
        &self,
        state: &[Array],
        token: SegmentId,
        ctx: &TripContext,
    ) -> (Vec<Array>, Vec<f64>) {
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let fx = binder.input(ctx.fx.clone());
        let c = ctx.c.as_ref().map(|c| binder.input(c.clone()));
        let mut vars: Vec<_> = state.iter().map(|a| binder.input(a.clone())).collect();
        let inp = self.emb.forward(&binder, &[token]);
        let hid = self.gru.step(&binder, inp, &mut vars);
        let logits = self.slot_logits(&binder, hid, fx, c);
        let logp = ops::log_softmax_rows(logits);
        let new_state = vars.iter().map(|v| (*v.value()).clone()).collect();
        let lp = logp.value().data().iter().map(|&v| v as f64).collect();
        // High-water mark of one inference step's tape. Constant per model
        // config — the regression test for the bounded-memory guarantee of
        // the fresh-tape-per-step design reads this gauge.
        st_obs::gauge("predict.step_tape_peak_bytes").max(tape.peak_bytes() as f64);
        (new_state, lp)
    }

    /// Fresh per-layer zero state for [`DeepSt::step_state`].
    pub fn initial_state(&self) -> Vec<Array> {
        (0..self.gru.layers())
            .map(|_| Array::zeros(&[1, self.cfg.hidden]))
            .collect()
    }

    /// Static check for the config/network mismatch that the generation
    /// loop's truncation counters observe dynamically:
    /// if `net.max_out_degree()` exceeds `cfg.max_neighbors`, some
    /// transitions can never be decoded (and, because
    /// [`crate::data::Example`] slots are derived from the same network,
    /// never trained). Returns a [`LintKind::TruncatedOutputSpace`] warning
    /// naming both numbers, or `None` when the output head covers every
    /// intersection.
    pub fn lint_output_space(&self, net: &RoadNetwork) -> Option<Diagnostic> {
        let deg = net.max_out_degree();
        if deg <= self.cfg.max_neighbors {
            return None;
        }
        Some(Diagnostic {
            kind: LintKind::TruncatedOutputSpace,
            severity: Severity::Warning,
            node: None,
            message: format!(
                "network max out-degree {deg} exceeds cfg.max_neighbors {}: slots {}..{deg} \
                 are unreachable in decoding and unlearnable in training",
                self.cfg.max_neighbors, self.cfg.max_neighbors
            ),
        })
    }
}

fn sample_index(probs: &[f32], rng: &mut StdRng) -> usize {
    let mut u: f32 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepStConfig;
    use st_roadnet::{grid_city, GridConfig};
    use st_tensor::init;

    fn setup() -> (st_roadnet::RoadNetwork, DeepSt) {
        let net = grid_city(&GridConfig::small_test(), 2);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 0);
        (net, model)
    }

    #[test]
    fn context_shapes() {
        let (_, model) = setup();
        let c = model.encode_traffic(&vec![0.1; 64]);
        assert_eq!(c.shape(), &[1, model.cfg.c_dim]);
        let ctx = model.encode_context([0.4, 0.6], Some(c));
        assert_eq!(ctx.fx.shape(), &[1, model.cfg.n_x]);
        assert_eq!(ctx.pi.shape(), &[model.cfg.k_proxies]);
        let sum: f32 = ctx.pi.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "π not a distribution");
    }

    /// The pre-PR-4 `predict_route`: one tape/binder shared across the
    /// whole generation loop (so the tape grows with route length). Kept
    /// verbatim as the behavioural oracle for the fresh-tape-per-step
    /// rewrite — greedy decoding must produce identical routes.
    fn reference_one_tape_greedy(
        model: &DeepSt,
        net: &st_roadnet::RoadNetwork,
        start: SegmentId,
        dest_m: &Point,
        ctx: &TripContext,
    ) -> Route {
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let fx = binder.input(ctx.fx.clone());
        let c = ctx.c.as_ref().map(|c| binder.input(c.clone()));
        let mut state = model.gru.zero_state(&binder, 1);
        let mut route = vec![start];
        let mut cur = start;
        loop {
            if route.len() >= model.cfg.max_route_len {
                break;
            }
            let nexts = net.next_segments(cur);
            if nexts.is_empty() {
                break;
            }
            let inp = model.emb.forward(&binder, &[cur]);
            let hid = model.gru.step(&binder, inp, &mut state);
            let logits = model.slot_logits(&binder, hid, fx, c);
            let lv = logits.value();
            let valid = &lv.data()[..nexts.len().min(model.cfg.max_neighbors)];
            let mut best = 0;
            for (j, &v) in valid.iter().enumerate() {
                if v > valid[best] {
                    best = j;
                }
            }
            let next = nexts[best];
            route.push(next);
            cur = next;
            let proj = net.project_onto(dest_m, next);
            if model.termination_prob(proj.dist(dest_m)) > 0.5 {
                break;
            }
        }
        route
    }

    #[test]
    fn stepwise_greedy_matches_one_tape_reference() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        for (start, dest_norm, dest) in [
            (0usize, [0.8f32, 0.8f32], Point::new(300.0, 300.0)),
            (3, [0.2, 0.9], Point::new(100.0, 300.0)),
            (7, [0.5, 0.1], Point::new(200.0, 50.0)),
        ] {
            let ctx = model.encode_context(dest_norm, Some(c.clone()));
            let expect = reference_one_tape_greedy(&model, &net, start, &dest, &ctx);
            let got = model.predict_route(&net, start, &dest, &ctx, None);
            assert_eq!(got, expect, "start {start} dest {dest:?}");
        }
    }

    #[test]
    fn generation_tape_is_bounded_per_step() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        let ctx = model.encode_context([0.9, 0.9], Some(c));
        let gauge = st_obs::gauge("predict.step_tape_peak_bytes");
        // One step pins the per-step high-water mark for this model config.
        let _ = model.step_state(&model.initial_state(), 0, &ctx);
        let per_step = gauge.get();
        assert!(per_step > 0.0, "step tape peak not recorded");
        // Generating a route far across the grid (many steps) must not
        // grow the tape beyond a single step's graph: the gauge tracks the
        // max over all steps, so it must not move.
        let route = model.predict_route(&net, 0, &Point::new(380.0, 380.0), &ctx, None);
        assert!(route.len() >= 2);
        assert!(
            gauge.get() <= per_step + 0.5,
            "tape grew with route length: {} -> {}",
            per_step,
            gauge.get()
        );
    }

    #[test]
    fn lint_output_space_flags_narrow_head() {
        let (net, model) = setup();
        // This config was built from net.max_out_degree(), so it is clean.
        assert!(model.lint_output_space(&net).is_none());
        // A config one slot narrower than the network must be flagged.
        let mut cfg = model.cfg.clone();
        cfg.max_neighbors = net.max_out_degree() - 1;
        let narrow = DeepSt::new(cfg, 0);
        let diag = narrow.lint_output_space(&net).expect("expected diagnostic");
        assert_eq!(diag.kind, st_tensor::LintKind::TruncatedOutputSpace);
        assert_eq!(diag.severity, st_tensor::Severity::Warning);
        assert!(diag.message.contains("max_neighbors"));
        // And decoding with it counts truncated transitions. Start from a
        // segment whose successor list has the full max out-degree, so the
        // very first step is guaranteed to truncate.
        let start = (0..net.num_segments())
            .find(|&s| net.next_segments(s).len() == net.max_out_degree())
            .expect("grid has a max-degree intersection");
        let before = st_obs::counter("decode.truncated_transitions").get();
        let c = narrow.encode_traffic(&vec![0.2; 64]);
        let ctx = narrow.encode_context([0.9, 0.9], Some(c));
        let route = narrow.predict_route(&net, start, &Point::new(380.0, 380.0), &ctx, None);
        assert!(net.is_valid_route(&route));
        assert!(
            st_obs::counter("decode.truncated_transitions").get() > before,
            "no truncation observed on a narrow head"
        );
    }

    #[test]
    fn greedy_prediction_is_valid_and_deterministic() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        let ctx = model.encode_context([0.8, 0.8], Some(c));
        let dest = Point::new(300.0, 300.0);
        let r1 = model.predict_route(&net, 0, &dest, &ctx, None);
        let r2 = model.predict_route(&net, 0, &dest, &ctx, None);
        assert_eq!(r1, r2);
        assert!(net.is_valid_route(&r1));
        assert!(r1.len() <= model.cfg.max_route_len);
        assert_eq!(r1[0], 0);
    }

    #[test]
    fn sampled_prediction_is_valid() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.2; 64]);
        let ctx = model.encode_context([0.2, 0.9], Some(c));
        let dest = Point::new(100.0, 300.0);
        let mut rng = init::rng(7);
        for _ in 0..5 {
            let r = model.predict_route(&net, 3, &dest, &ctx, Some(&mut rng));
            assert!(net.is_valid_route(&r));
        }
    }

    #[test]
    fn score_penalizes_invalid_routes() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.0; 64]);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        // invalid: two non-adjacent segments
        let mut bad = vec![0usize, 0];
        for s in 0..net.num_segments() {
            if !net.adjacent(0, s) {
                bad = vec![0, s];
                break;
            }
        }
        assert_eq!(model.score_route(&net, &bad, &ctx), f64::NEG_INFINITY);
        // valid routes have finite, negative log-likelihood
        let good = vec![0, net.next_segments(0)[0]];
        let s = model.score_route(&net, &good, &ctx);
        assert!(s.is_finite() && s < 0.0);
    }

    #[test]
    fn sampled_score_close_to_mean_score() {
        let (net, model) = setup();
        let tensor = vec![0.2f32; 64];
        let c = model.encode_traffic(&tensor);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        let mut route = vec![0usize];
        for _ in 0..4 {
            route.push(net.next_segments(*route.last().unwrap())[0]);
        }
        let mean_score = model.score_route(&net, &route, &ctx);
        let mut rng = init::rng(5);
        let sampled =
            model.score_route_sampled(&net, &route, [0.5, 0.5], Some(&tensor), 16, &mut rng);
        assert!(sampled.is_finite());
        // the sampled estimate is in the same ballpark as the mean-posterior
        // score (an untrained model's posterior is diffuse, so allow slack)
        assert!(
            (sampled - mean_score).abs() < mean_score.abs() * 0.8 + 2.0,
            "sampled {sampled} vs mean {mean_score}"
        );
        // invalid routes still score −∞
        let mut bad = route.clone();
        bad.push(0);
        if !net.adjacent(*route.last().unwrap(), 0) {
            assert_eq!(
                model.score_route_sampled(&net, &bad, [0.5, 0.5], Some(&tensor), 4, &mut rng),
                f64::NEG_INFINITY
            );
        }
    }

    #[test]
    fn continuation_extends_prefix() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.1; 64]);
        let ctx = model.encode_context([0.7, 0.2], Some(c));
        let mut prefix = vec![0usize];
        for _ in 0..3 {
            prefix.push(net.next_segments(*prefix.last().unwrap())[0]);
        }
        let dest = Point::new(250.0, 80.0);
        let route = model.predict_continuation(&net, &prefix, &dest, &ctx, None);
        assert!(route.len() >= prefix.len());
        assert_eq!(&route[..prefix.len()], prefix.as_slice());
        assert!(net.is_valid_route(&route));
        // deterministic
        let again = model.predict_continuation(&net, &prefix, &dest, &ctx, None);
        assert_eq!(route, again);
    }

    #[test]
    #[should_panic(expected = "prefix")]
    fn continuation_rejects_empty_prefix() {
        let (net, model) = setup();
        let ctx = model.encode_context([0.5, 0.5], Some(model.encode_traffic(&vec![0.0; 64])));
        let _ = model.predict_continuation(&net, &[], &Point::new(0.0, 0.0), &ctx, None);
    }

    #[test]
    fn score_sums_over_transitions() {
        let (net, model) = setup();
        let c = model.encode_traffic(&vec![0.0; 64]);
        let ctx = model.encode_context([0.5, 0.5], Some(c));
        let mut route = vec![0usize];
        for _ in 0..4 {
            route.push(net.next_segments(*route.last().unwrap())[0]);
        }
        let full = model.score_route(&net, &route, &ctx);
        let prefix = model.score_route(&net, &route[..2], &ctx);
        assert!(
            full < prefix,
            "longer route should have lower log-likelihood"
        );
        // single-segment route scores 0 (empty product)
        assert_eq!(model.score_route(&net, &route[..1], &ctx), 0.0);
    }
}
