//! Deterministic data-parallel gradient computation.
//!
//! A minibatch is split into fixed-size *shards*; each shard's forward and
//! backward pass is independent given the current parameters, so shards can
//! run on worker threads. The design keeps three invariants:
//!
//! 1. **The tape stays single-threaded.** [`st_tensor::Tape`] is `!Send`;
//!    every worker owns its own tape (reused across shards via
//!    [`st_tensor::Tape::reset`]) and only shares the model immutably.
//!    [`st_tensor::Param`] values sit behind `RwLock`s, so `&DeepSt` is
//!    `Sync`: workers take read locks to copy parameter values onto their
//!    tapes, and only the calling thread ever takes write locks.
//! 2. **Workers never mutate the model.** Gradients are returned as *owned*
//!    per-shard arrays ([`st_tensor::Binder::collect_grads`]) and batch-norm
//!    running-statistic updates are *recorded* ([`st_nn::BnBatchStats`])
//!    rather than applied.
//! 3. **The result is independent of the thread count.** The shard
//!    partition depends only on `shard_size`, each shard gets its own seeded
//!    RNG (seeds drawn in shard order by the caller), and the caller reduces
//!    shard results in shard order. Whether 1 or N threads ran the shards,
//!    every floating-point operation happens with the same operands in the
//!    same order — `num_threads = 4` is bit-identical to `num_threads = 1`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use st_nn::BnBatchStats;
use st_tensor::{Array, Binder, Param, Tape};

use crate::data::Example;
use crate::faultinject::FaultInjector;
use crate::model::DeepSt;
use crate::train::ElboStats;

/// Everything a shard's forward/backward pass produces, ready for the
/// caller to reduce in shard order.
pub struct ShardOutput<'p> {
    /// Loss value (−ELBO / shard size) of the shard.
    pub loss: f32,
    /// Number of examples in the shard.
    pub count: usize,
    /// ELBO term breakdown.
    pub stats: ElboStats,
    /// Owned gradients, one entry per distinct parameter in binding order.
    pub grads: Vec<(&'p Param, Array)>,
    /// Deferred batch-norm statistic updates, in layer order.
    pub bn_updates: BnBatchStats,
    /// High-water mark of this shard's tape arena, in bytes.
    pub peak_tape_bytes: usize,
}

/// Run one shard on `tape` (resetting it first), drawing noise from `rng`,
/// and collect its output.
///
/// Exposed so the trainer can run a single-shard minibatch inline against
/// the epoch's main RNG — that path consumes the RNG stream exactly like
/// the classic serial trainer, keeping existing seeded runs reproducible.
pub fn run_shard_with_rng<'p>(
    model: &'p DeepSt,
    tape: &Tape,
    shard: &[&Example],
    rng: &mut StdRng,
) -> ShardOutput<'p> {
    // Opened on whichever thread runs the shard, so worker-pool shards
    // trace as that worker's spans rather than the coordinator's.
    let _sp = st_obs::span("train/shard");
    tape.reset();
    let binder = Binder::new(tape);
    let mut bn_updates = BnBatchStats::new();
    let (loss, stats) = model.batch_loss_collect(&binder, shard, rng, true, Some(&mut bn_updates));
    let loss_val = loss.scalar_value();
    let grads = if loss_val.is_finite() {
        let g = tape.backward(loss);
        binder.collect_grads(&g)
    } else {
        // The caller drops the whole minibatch; no point doing the backward.
        Vec::new()
    };
    ShardOutput {
        loss: loss_val,
        count: shard.len(),
        stats,
        grads,
        bn_updates,
        peak_tape_bytes: tape.peak_bytes(),
    }
}

/// Fault-injection context for one minibatch's shards (testing only): lets
/// the injector address individual shards by `(epoch, batch, shard)`.
#[derive(Clone, Copy)]
pub struct ShardFaultCtx<'a> {
    /// The armed injector.
    pub injector: &'a FaultInjector,
    /// Epoch coordinate of this minibatch.
    pub epoch: usize,
    /// Batch coordinate within the epoch.
    pub batch: usize,
}

/// A shard whose worker panicked, surfaced instead of aborting the epoch.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Shard index within the minibatch.
    pub shard: usize,
    /// Panic payload (or a placeholder for non-string payloads).
    pub message: String,
    /// Whether the serial retry on the calling thread succeeded. When true
    /// the shard's output is present and bit-identical to a failure-free
    /// run (the retry reuses the shard's own seed).
    pub recovered: bool,
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with non-string payload".to_string()
    }
}

/// Run shard `index` with panic containment. Safe to unwind through: the
/// worker only ever takes `RwLock` *read* guards on model parameters (read
/// guards do not poison) and all tape/binder state is local to the call.
fn run_shard_contained<'p>(
    model: &'p DeepSt,
    tape: &Tape,
    shard: &[&Example],
    seed: u64,
    index: usize,
    faults: Option<ShardFaultCtx<'_>>,
) -> Result<ShardOutput<'p>, String> {
    catch_unwind(AssertUnwindSafe(|| {
        if let Some(f) = faults {
            if f.injector.take_panic(f.epoch, f.batch, index) {
                // st-lint: allow(panic-in-lib) — deliberate injected fault
                panic!(
                    "injected worker panic (epoch {}, batch {}, shard {index})",
                    f.epoch, f.batch
                );
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        run_shard_with_rng(model, tape, shard, &mut rng)
    }))
    .map_err(panic_message)
}

/// Compute gradients for `batch`, split into shards of `shard_size`, using
/// up to `num_threads` worker threads.
///
/// `seeds` must hold one RNG seed per shard (i.e. `batch.len().div_ceil(shard_size)`
/// entries), drawn by the caller in shard order. Outputs are returned in
/// shard order regardless of which worker ran which shard.
///
/// `num_threads` is a cap, not a demand: the effective worker count is also
/// bounded by the shard count and by [`std::thread::available_parallelism`]
/// (oversubscribing physical cores only adds context-switch and cache
/// pressure). When a single worker would remain, the shards run inline on
/// the calling thread against `inline_tape` — reusing its arena across
/// minibatches instead of growing a fresh one each call. Worker count never
/// affects results, only which thread happens to run which shard.
///
/// **Failure containment**: a worker panic is caught rather than aborting
/// the process; the failed shard is retried serially on the calling thread
/// with its original seed (so a successful retry is bit-identical to a
/// failure-free run) and reported in the returned [`ShardFailure`] list.
/// A shard that fails its retry too is absent from the output list — its
/// failure entry has `recovered == false` and the caller decides whether
/// the minibatch is salvageable.
pub fn run_shards<'p>(
    model: &'p DeepSt,
    batch: &[&Example],
    shard_size: usize,
    num_threads: usize,
    seeds: &[u64],
    inline_tape: &Tape,
    faults: Option<ShardFaultCtx<'_>>,
) -> (Vec<ShardOutput<'p>>, Vec<ShardFailure>) {
    assert!(shard_size > 0, "shard_size must be positive");
    let shards: Vec<&[&Example]> = batch.chunks(shard_size).collect();
    assert_eq!(
        seeds.len(),
        shards.len(),
        "need one seed per shard ({} shards, {} seeds)",
        shards.len(),
        seeds.len()
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = num_threads.min(shards.len()).min(cores);
    let slots: Vec<Result<ShardOutput<'p>, String>> = if workers <= 1 {
        shards
            .iter()
            .zip(seeds)
            .enumerate()
            .map(|(i, (shard, &seed))| {
                run_shard_contained(model, inline_tape, shard, seed, i, faults)
            })
            .collect()
    } else {
        run_shards_on(model, &shards, seeds, workers, faults)
    };

    let mut outputs = Vec::with_capacity(shards.len());
    let mut failures = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Ok(out) => outputs.push(out),
            Err(message) => {
                // Serial retry on the calling thread, same seed, no
                // injection (a fired fault is consumed; a deterministic
                // real panic will simply fail again and be reported).
                match run_shard_contained(model, inline_tape, shards[i], seeds[i], i, None) {
                    Ok(out) => {
                        outputs.push(out);
                        failures.push(ShardFailure {
                            shard: i,
                            message,
                            recovered: true,
                        });
                    }
                    Err(retry_message) => failures.push(ShardFailure {
                        shard: i,
                        message: format!("{message}; serial retry failed: {retry_message}"),
                        recovered: false,
                    }),
                }
            }
        }
    }
    (outputs, failures)
}

/// Run `shards` on exactly `workers` threads (no core cap). Factored out so
/// the determinism test can force real worker threads even on single-core
/// hosts, where [`run_shards`] would fall back to the inline path. Worker
/// panics are contained per shard and returned as `Err` slots.
pub(crate) fn run_shards_on<'p>(
    model: &'p DeepSt,
    shards: &[&[&Example]],
    seeds: &[u64],
    workers: usize,
    faults: Option<ShardFaultCtx<'_>>,
) -> Vec<Result<ShardOutput<'p>, String>> {
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<ShardOutput<'p>, String>>>> =
        shards.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One tape per worker, reused across the shards it claims.
                // A contained panic mid-shard may leave partial state in the
                // arena; reset happens at the start of every shard run.
                let tape = Tape::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= shards.len() {
                        break;
                    }
                    let out = run_shard_contained(model, &tape, shards[i], seeds[i], i, faults);
                    *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| Err(format!("worker died before finishing shard {i}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `&DeepSt` must be shareable across worker threads.
    #[test]
    fn model_ref_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<DeepSt>();
        assert_sync::<Example>();
    }
}
