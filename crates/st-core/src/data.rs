//! Training examples: the observable view of a trip.
//!
//! A model sees `(r, x, C)`: the traveled route, the rough destination
//! coordinate (normalized to the unit square), and the shared traffic tensor
//! of the trip's start slot. Slot targets (the index of `r_{i+1}` among
//! `r_i`'s adjacent segments) are precomputed once.

use std::sync::Arc;

use st_roadnet::{RoadNetwork, SegmentId};

/// One training/evaluation example.
#[derive(Debug, Clone)]
pub struct Example {
    /// The traveled route (≥ 2 segments for training).
    pub route: Vec<SegmentId>,
    /// Slot index of each transition: `slots[i]` is the position of
    /// `route[i+1]` among `next_segments(route[i])`.
    pub slots: Vec<usize>,
    /// Normalized destination coordinate `T.x ∈ [0,1]²`.
    pub dest: [f32; 2],
    /// Traffic tensor of the trip's slot (`[H·W]`, shared across trips in
    /// the same slot).
    pub traffic: Arc<Vec<f32>>,
    /// The traffic slot id (used to cache per-slot encodings at eval).
    pub slot_id: usize,
}

impl Example {
    /// Build an example, validating adjacency. Returns `None` if the route
    /// is shorter than 2 segments or contains a non-adjacent transition.
    pub fn new(
        net: &RoadNetwork,
        route: Vec<SegmentId>,
        dest: [f32; 2],
        traffic: Arc<Vec<f32>>,
        slot_id: usize,
    ) -> Option<Self> {
        if route.len() < 2 {
            return None;
        }
        let mut slots = Vec::with_capacity(route.len() - 1);
        for w in route.windows(2) {
            slots.push(net.neighbor_slot(w[0], w[1])?);
        }
        Some(Self {
            route,
            slots,
            dest,
            traffic,
            slot_id,
        })
    }

    /// Number of transitions (`n − 1`).
    pub fn num_transitions(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_roadnet::{grid_city, GridConfig};

    #[test]
    fn builds_valid_example() {
        let net = grid_city(&GridConfig::small_test(), 0);
        let mut route = vec![0usize];
        for _ in 0..3 {
            route.push(net.next_segments(*route.last().unwrap())[0]);
        }
        let ex = Example::new(&net, route.clone(), [0.5, 0.5], Arc::new(vec![0.0; 64]), 0)
            .expect("valid route rejected");
        assert_eq!(ex.num_transitions(), 3);
        for (i, &slot) in ex.slots.iter().enumerate() {
            assert_eq!(net.next_segments(route[i])[slot], route[i + 1]);
        }
    }

    #[test]
    fn rejects_short_and_invalid() {
        let net = grid_city(&GridConfig::small_test(), 0);
        assert!(Example::new(&net, vec![0], [0.0, 0.0], Arc::new(vec![]), 0).is_none());
        // a non-adjacent pair
        let far = net.num_segments() - 1;
        assert!(
            Example::new(&net, vec![0, far], [0.0, 0.0], Arc::new(vec![]), 0).is_none()
                || net.adjacent(0, far)
        );
    }
}
