//! ELBO computation (Eq. 7) and the training loop (Algorithm 1).

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use st_nn::Module;
use st_tensor::optim::{clip_grad_norm, Adam, Optimizer};
use st_tensor::{ops, Array, Binder, Tape, Var};

use crate::data::Example;
use crate::model::DeepSt;

/// Scalar summary of one ELBO evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElboStats {
    /// Total ELBO over the batch (nats).
    pub elbo: f32,
    /// Route log-likelihood term.
    pub route_ll: f32,
    /// Destination log-likelihood term (already (n−1)-weighted, Eq. 7).
    pub dest_ll: f32,
    /// KL(q(c|C) ‖ p(c)).
    pub kl_c: f32,
    /// KL(q(π|x) ‖ p(π)) — *once*; Eq. 7 subtracts it twice.
    pub kl_pi: f32,
    /// Number of transitions in the batch.
    pub transitions: usize,
}

impl DeepSt {
    /// Build the negative-ELBO loss of a minibatch on `tape`.
    ///
    /// Returns `(loss_var, stats)`. `training` toggles sampling (Gumbel and
    /// Gaussian reparameterizations, batch-norm batch statistics); at eval
    /// the posterior means/soft assignments are used.
    pub fn batch_loss<'t, 'p>(
        &'p self,
        binder: &Binder<'t, 'p>,
        batch: &[&Example],
        rng: &mut StdRng,
        training: bool,
    ) -> (Var<'t>, ElboStats) {
        assert!(!batch.is_empty());
        let n = batch.len();
        let k = self.cfg.k_proxies;

        // ---------- destination pathway (§IV-C) ----------
        let x_data: Vec<f32> = batch.iter().flat_map(|e| e.dest).collect();
        let x = binder.input(Array::from_vec(&[n, 2], x_data));
        let logits_pi = self.dest_logits(binder, x);
        let log_q_pi = ops::log_softmax_rows(logits_pi);
        let q_pi = ops::softmax_rows(logits_pi);
        // Gumbel-Softmax relaxation of π (training); soft posterior at eval.
        let pi = if training {
            let noise = binder.input(self.gumbel_noise(n, rng));
            ops::softmax_rows(ops::scale(
                ops::add(logits_pi, noise),
                1.0 / self.cfg.gumbel_temp,
            ))
        } else {
            q_pi
        };
        let w = binder.var(&self.w_proxy);
        let fx = ops::matmul(pi, w); // [n, n_x]

        // Adjoint generative likelihood log P(x | π, M, S).
        let m = binder.var(&self.m_proxy);
        let s = self.s_proxy(binder);
        let mean = ops::matmul(pi, m); // [n, 2]
        let var = ops::add_scalar(ops::matmul(pi, s), 1e-5);
        let diff2 = ops::square(ops::sub(x, mean));
        let log2pi = (2.0 * std::f32::consts::PI).ln();
        let per_dim = ops::add(ops::add_scalar(ops::ln(var), log2pi), ops::div(diff2, var));
        let logpdf_x = ops::scale(ops::row_sum(per_dim), -0.5); // [n]
        // Eq. 7 replicates the destination term over the n−1 transitions.
        let weights: Vec<f32> = batch.iter().map(|e| e.num_transitions() as f32).collect();
        let dest_ll = ops::sum_all(ops::mask_rows(
            ops::reshape(logpdf_x, &[n, 1]),
            &weights,
        ));

        // KL(q(π|x) ‖ Uniform(K)) = Σ q log q + log K, per row.
        let kl_pi_rows = ops::add_scalar(
            ops::row_sum(ops::mul(q_pi, log_q_pi)),
            (k as f32).ln(),
        );
        let kl_pi = ops::sum_all(kl_pi_rows);

        // ---------- traffic pathway (§IV-D) ----------
        let (c, kl_c): (Option<Var<'t>>, Option<Var<'t>>) = if self.cfg.use_traffic {
            // Deduplicate traffic tensors: trips in the same slot share C.
            let mut slot_index: HashMap<usize, usize> = HashMap::new();
            let mut unique: Vec<&Example> = Vec::new();
            let mut row_of: Vec<usize> = Vec::with_capacity(n);
            for e in batch {
                let next = unique.len();
                let entry = *slot_index.entry(e.slot_id).or_insert_with(|| {
                    unique.push(e);
                    next
                });
                row_of.push(entry);
            }
            let (h, wd) = (self.cfg.grid_h, self.cfg.grid_w);
            let mut grid_data = Vec::with_capacity(unique.len() * h * wd);
            for e in &unique {
                assert_eq!(e.traffic.len(), h * wd, "traffic tensor size mismatch");
                grid_data.extend_from_slice(&e.traffic);
            }
            let grids = binder.input(Array::from_vec(&[unique.len(), 1, h, wd], grid_data));
            let (mu_all, logvar_all) = self.traffic_posterior(binder, grids, training);
            let mu = ops::gather_rows(mu_all, &row_of);
            let logvar = ops::gather_rows(logvar_all, &row_of);
            let c = if training {
                let eps = binder.input(self.normal_noise(n, rng));
                ops::add(mu, ops::mul(ops::exp(ops::scale(logvar, 0.5)), eps))
            } else {
                mu
            };
            // KL(N(μ,σ²) ‖ N(0,1)) = −½ Σ (1 + logσ² − μ² − σ²).
            let kl_rows = ops::scale(
                ops::row_sum(ops::sub(
                    ops::add_scalar(logvar, 1.0),
                    ops::add(ops::square(mu), ops::exp(logvar)),
                )),
                -0.5,
            );
            (Some(c), Some(ops::sum_all(kl_rows)))
        } else {
            (None, None)
        };

        // ---------- route pathway (§IV-A, §IV-B) ----------
        let max_len = batch.iter().map(|e| e.route.len()).max().unwrap();
        let mut state = self.gru.zero_state(binder, n);
        let mut route_ll: Option<Var<'t>> = None;
        let mut transitions = 0usize;
        for i in 0..max_len - 1 {
            let mut tokens = Vec::with_capacity(n);
            let mut targets = Vec::with_capacity(n);
            let mut mask = Vec::with_capacity(n);
            for e in batch {
                if i + 1 < e.route.len() {
                    tokens.push(e.route[i]);
                    targets.push(e.slots[i]);
                    mask.push(1.0);
                    transitions += 1;
                } else {
                    tokens.push(0);
                    targets.push(0);
                    mask.push(0.0);
                }
            }
            let inp = self.emb.forward(binder, &tokens);
            let hid = self.gru.step(binder, inp, &mut state);
            let logits = self.slot_logits(binder, hid, fx, c);
            let logp = ops::log_softmax_rows(logits);
            let picked = ops::pick_per_row(logp, &targets);
            let masked = ops::sum_all(ops::mask_rows(ops::reshape(picked, &[n, 1]), &mask));
            route_ll = Some(match route_ll {
                Some(acc) => ops::add(acc, masked),
                None => masked,
            });
        }
        let route_ll = route_ll.expect("batch with no transitions");

        // ---------- ELBO (Eq. 7) ----------
        // ELBO = route_ll + dest_ll − KL_c − 2·KL_π ; loss = −ELBO / n.
        let mut elbo = ops::add(route_ll, dest_ll);
        if let Some(klc) = kl_c {
            elbo = ops::sub(elbo, klc);
        }
        elbo = ops::sub(elbo, ops::scale(kl_pi, 2.0));
        let loss = ops::scale(elbo, -1.0 / n as f32);

        let stats = ElboStats {
            elbo: elbo.scalar_value(),
            route_ll: route_ll.scalar_value(),
            dest_ll: dest_ll.scalar_value(),
            kl_c: kl_c.map(|v| v.scalar_value()).unwrap_or(0.0),
            kl_pi: kl_pi.scalar_value(),
            transitions,
        };
        (loss, stats)
    }

    /// Mean negative ELBO per trip over `examples` (no parameter updates).
    pub fn evaluate_loss(&self, examples: &[Example], batch_size: usize, rng: &mut StdRng) -> f32 {
        assert!(!examples.is_empty());
        let mut total = 0.0f64;
        let mut count = 0usize;
        for chunk in examples.chunks(batch_size) {
            let refs: Vec<&Example> = chunk.iter().collect();
            let tape = Tape::new();
            let binder = Binder::new(&tape);
            let (loss, _) = self.batch_loss(&binder, &refs, rng, false);
            total += loss.scalar_value() as f64 * refs.len() as f64;
            count += refs.len();
        }
        (total / count as f64) as f32
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss (−ELBO/trip).
    pub train_loss: f32,
    /// Mean validation loss, if a validation set was supplied.
    pub val_loss: Option<f32>,
    /// Wall-clock seconds spent in this epoch.
    pub seconds: f64,
}

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs (paper: 15).
    pub epochs: usize,
    /// Minibatch size (paper: 128).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Early-stopping patience on validation loss (None disables).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 64, lr: 3e-3, grad_clip: 5.0, patience: Some(3) }
    }
}

/// Trains a [`DeepSt`] model (Algorithm 1 of the paper).
pub struct Trainer {
    /// The model being trained.
    pub model: DeepSt,
    opt: Adam,
    cfg: TrainConfig,
}

impl Trainer {
    /// Create a trainer owning `model`.
    pub fn new(model: DeepSt, cfg: TrainConfig) -> Self {
        let opt = Adam::new(cfg.lr);
        Self { model, opt, cfg }
    }

    /// One pass over the training data. Returns the mean loss per trip.
    pub fn train_epoch(&mut self, examples: &[Example], rng: &mut StdRng) -> f32 {
        assert!(!examples.is_empty(), "empty training set");
        let mut order: Vec<usize> = (0..examples.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut count = 0usize;
        for chunk in order.chunks(self.cfg.batch_size) {
            let refs: Vec<&Example> = chunk.iter().map(|&i| &examples[i]).collect();
            let tape = Tape::new();
            let binder = Binder::new(&tape);
            let (loss, _) = self.model.batch_loss(&binder, &refs, rng, true);
            let loss_val = loss.scalar_value();
            if !loss_val.is_finite() {
                // Skip a pathological batch rather than poisoning parameters.
                continue;
            }
            let grads = tape.backward(loss);
            binder.accumulate_grads(&grads);
            let params = self.model.params();
            clip_grad_norm(&params, self.cfg.grad_clip);
            self.opt.step(&params);
            total += loss_val as f64 * refs.len() as f64;
            count += refs.len();
        }
        (total / count.max(1) as f64) as f32
    }

    /// Full training run with optional validation-based early stopping.
    /// Returns the per-epoch history.
    pub fn fit(
        &mut self,
        train: &[Example],
        val: Option<&[Example]>,
        rng: &mut StdRng,
    ) -> Vec<EpochStats> {
        let mut history = Vec::new();
        let mut best_val = f32::INFINITY;
        let mut bad_epochs = 0usize;
        for epoch in 0..self.cfg.epochs {
            let t0 = Instant::now();
            let train_loss = self.train_epoch(train, rng);
            let val_loss = val.map(|v| {
                self.model
                    .evaluate_loss(v, self.cfg.batch_size, rng)
            });
            history.push(EpochStats {
                epoch,
                train_loss,
                val_loss,
                seconds: t0.elapsed().as_secs_f64(),
            });
            if let Some(vl) = val_loss {
                if vl < best_val - 1e-4 {
                    best_val = vl;
                    bad_epochs = 0;
                } else {
                    bad_epochs += 1;
                    if let Some(p) = self.cfg.patience {
                        if bad_epochs >= p {
                            break;
                        }
                    }
                }
            }
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepStConfig;
    use crate::model::DeepSt;
    use st_roadnet::{grid_city, GridConfig};
    use st_tensor::init;
    use std::rc::Rc;

    /// A toy world: routes from a tiny grid with a fixed transition habit.
    fn toy_examples(n: usize, seed: u64) -> (st_roadnet::RoadNetwork, Vec<Example>) {
        let net = grid_city(&GridConfig::small_test(), 1);
        let mut rng = init::rng(seed);
        let tensor = Rc::new(vec![0.3f32; 64]);
        let mut out = Vec::new();
        let mut cur_seed = 0usize;
        while out.len() < n {
            cur_seed += 1;
            let start = cur_seed % net.num_segments();
            let mut route = vec![start];
            for step in 0..6 {
                let nexts = net.next_segments(*route.last().unwrap());
                // habit: always pick the lowest-heading slot, with a little noise
                let pick = if (cur_seed + step).is_multiple_of(5) { nexts.len() - 1 } else { 0 };
                route.push(nexts[pick]);
            }
            let end = net.midpoint(*route.last().unwrap());
            let (min, max) = net.bounding_box();
            let dest = [
                ((end.x - min.x) / (max.x - min.x)) as f32,
                ((end.y - min.y) / (max.y - min.y)) as f32,
            ];
            if let Some(ex) = Example::new(&net, route, dest, Rc::clone(&tensor), 0) {
                out.push(ex);
            }
        }
        let _ = &mut rng;
        (net, out)
    }

    #[test]
    fn elbo_is_finite_and_loss_positive() {
        let (net, examples) = toy_examples(8, 0);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 0);
        let mut rng = init::rng(1);
        let refs: Vec<&Example> = examples.iter().collect();
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let (loss, stats) = model.batch_loss(&binder, &refs, &mut rng, true);
        assert!(loss.scalar_value().is_finite());
        assert!(stats.kl_pi >= -1e-3, "KL(π) negative: {}", stats.kl_pi);
        assert!(stats.kl_c >= -1e-3, "KL(c) negative: {}", stats.kl_c);
        assert!(stats.route_ll <= 0.0);
        assert!(stats.transitions > 0);
    }

    #[test]
    fn training_reduces_loss() {
        let (net, examples) = toy_examples(60, 3);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 0);
        let mut rng = init::rng(2);
        let tc = TrainConfig { epochs: 6, batch_size: 20, lr: 5e-3, grad_clip: 5.0, patience: None };
        let mut trainer = Trainer::new(model, tc);
        let first = trainer.train_epoch(&examples, &mut rng);
        for _ in 0..5 {
            trainer.train_epoch(&examples, &mut rng);
        }
        let last = trainer.model.evaluate_loss(&examples, 20, &mut rng);
        assert!(
            last < first * 0.9,
            "training did not reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn fit_records_history_and_early_stops() {
        let (net, examples) = toy_examples(40, 5);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8)
            .without_traffic();
        let model = DeepSt::new(cfg, 1);
        let tc = TrainConfig { epochs: 4, batch_size: 16, lr: 3e-3, grad_clip: 5.0, patience: Some(2) };
        let mut trainer = Trainer::new(model, tc);
        let mut rng = init::rng(3);
        let hist = trainer.fit(&examples[..30], Some(&examples[30..]), &mut rng);
        assert!(!hist.is_empty() && hist.len() <= 4);
        for h in &hist {
            assert!(h.train_loss.is_finite());
            assert!(h.val_loss.unwrap().is_finite());
            assert!(h.seconds >= 0.0);
        }
    }

    #[test]
    fn deepst_c_has_zero_kl_c() {
        let (net, examples) = toy_examples(6, 7);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8)
            .without_traffic();
        let model = DeepSt::new(cfg, 2);
        let mut rng = init::rng(4);
        let refs: Vec<&Example> = examples.iter().collect();
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let (_, stats) = model.batch_loss(&binder, &refs, &mut rng, true);
        assert_eq!(stats.kl_c, 0.0);
    }
}
