//! ELBO computation (Eq. 7) and the training loop (Algorithm 1), plus the
//! fault-tolerant variant ([`Trainer::fit_ft`]): crash-safe
//! checkpoint/resume, divergence detection with rollback + LR backoff, and
//! worker-failure containment (see DESIGN.md §8).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use st_nn::{analyze_module_graph, BnBatchStats, CheckpointError, Module};
use st_tensor::optim::{clip_grad_norm_grouped, Adam, AdamState, Optimizer};
use st_tensor::{init, ops, Array, Binder, Diagnostic, Tape, Var};

use crate::checkpoint::{self, ResumePoint};
use crate::data::Example;
use crate::faultinject::FaultInjector;
use crate::model::DeepSt;
use crate::parallel::{panic_message, ShardFailure, ShardFaultCtx};

/// Scalar summary of one ELBO evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElboStats {
    /// Total ELBO over the batch (nats).
    pub elbo: f32,
    /// Route log-likelihood term.
    pub route_ll: f32,
    /// Destination log-likelihood term (already (n−1)-weighted, Eq. 7).
    pub dest_ll: f32,
    /// KL(q(c|C) ‖ p(c)).
    pub kl_c: f32,
    /// KL(q(π|x) ‖ p(π)) — *once*; Eq. 7 subtracts it twice.
    pub kl_pi: f32,
    /// Number of transitions in the batch.
    pub transitions: usize,
}

impl DeepSt {
    /// Build the negative-ELBO loss of a minibatch on `tape`.
    ///
    /// Returns `(loss_var, stats)`. `training` toggles sampling (Gumbel and
    /// Gaussian reparameterizations, batch-norm batch statistics); at eval
    /// the posterior means/soft assignments are used.
    pub fn batch_loss<'t, 'p>(
        &'p self,
        binder: &Binder<'t, 'p>,
        batch: &[&Example],
        rng: &mut StdRng,
        training: bool,
    ) -> (Var<'t>, ElboStats) {
        self.batch_loss_collect(binder, batch, rng, training, None)
    }

    /// [`DeepSt::batch_loss`] with deferred batch-norm statistics: when
    /// `bn_stats` is `Some(sink)`, running-statistic (EMA) updates are
    /// recorded into the sink instead of applied to the model, so parallel
    /// workers stay read-only and the main thread can apply updates in a
    /// deterministic shard order (see [`crate::parallel`]).
    pub fn batch_loss_collect<'t, 'p>(
        &'p self,
        binder: &Binder<'t, 'p>,
        batch: &[&Example],
        rng: &mut StdRng,
        training: bool,
        bn_stats: Option<&mut BnBatchStats>,
    ) -> (Var<'t>, ElboStats) {
        assert!(!batch.is_empty());
        let n = batch.len();
        let k = self.cfg.k_proxies;

        // ---------- destination pathway (§IV-C) ----------
        let x_data: Vec<f32> = batch.iter().flat_map(|e| e.dest).collect();
        let x = binder.input(Array::from_vec(&[n, 2], x_data));
        let logits_pi = self.dest_logits(binder, x);
        let log_q_pi = ops::log_softmax_rows(logits_pi);
        let q_pi = ops::softmax_rows(logits_pi);
        // Gumbel-Softmax relaxation of π (training); soft posterior at eval.
        let pi = if training {
            let noise = binder.input(self.gumbel_noise(n, rng));
            ops::softmax_rows(ops::scale(
                ops::add(logits_pi, noise),
                1.0 / self.cfg.gumbel_temp,
            ))
        } else {
            q_pi
        };
        let w = binder.var(&self.w_proxy);
        let fx = ops::matmul(pi, w); // [n, n_x]

        // Adjoint generative likelihood log P(x | π, M, S).
        let m = binder.var(&self.m_proxy);
        let s = self.s_proxy(binder);
        let mean = ops::matmul(pi, m); // [n, 2]
        let var = ops::add_scalar(ops::matmul(pi, s), 1e-5);
        let diff2 = ops::square(ops::sub(x, mean));
        let log2pi = (2.0 * std::f32::consts::PI).ln();
        let per_dim = ops::add(ops::add_scalar(ops::ln(var), log2pi), ops::div(diff2, var));
        let logpdf_x = ops::scale(ops::row_sum(per_dim), -0.5); // [n]
                                                                // Eq. 7 replicates the destination term over the n−1 transitions.
        let weights: Vec<f32> = batch.iter().map(|e| e.num_transitions() as f32).collect();
        let dest_ll = ops::sum_all(ops::mask_rows(ops::reshape(logpdf_x, &[n, 1]), &weights));

        // KL(q(π|x) ‖ Uniform(K)) = Σ q log q + log K, per row.
        let kl_pi_rows = ops::add_scalar(ops::row_sum(ops::mul(q_pi, log_q_pi)), (k as f32).ln());
        let kl_pi = ops::sum_all(kl_pi_rows);

        // ---------- traffic pathway (§IV-D) ----------
        let (c, kl_c): (Option<Var<'t>>, Option<Var<'t>>) = if self.cfg.use_traffic {
            // Deduplicate traffic tensors: trips in the same slot share C.
            let mut slot_index: HashMap<usize, usize> = HashMap::new();
            let mut unique: Vec<&Example> = Vec::new();
            let mut row_of: Vec<usize> = Vec::with_capacity(n);
            for e in batch {
                let next = unique.len();
                let entry = *slot_index.entry(e.slot_id).or_insert_with(|| {
                    unique.push(e);
                    next
                });
                row_of.push(entry);
            }
            let (h, wd) = (self.cfg.grid_h, self.cfg.grid_w);
            let mut grid_data = Vec::with_capacity(unique.len() * h * wd);
            for e in &unique {
                assert_eq!(e.traffic.len(), h * wd, "traffic tensor size mismatch");
                grid_data.extend_from_slice(&e.traffic);
            }
            let grids = binder.input(Array::from_vec(&[unique.len(), 1, h, wd], grid_data));
            let (mu_all, logvar_all) = self.traffic_posterior(binder, grids, training, bn_stats);
            let mu = ops::gather_rows(mu_all, &row_of);
            let logvar = ops::gather_rows(logvar_all, &row_of);
            let c = if training {
                let eps = binder.input(self.normal_noise(n, rng));
                ops::add(mu, ops::mul(ops::exp(ops::scale(logvar, 0.5)), eps))
            } else {
                mu
            };
            // KL(N(μ,σ²) ‖ N(0,1)) = −½ Σ (1 + logσ² − μ² − σ²).
            let kl_rows = ops::scale(
                ops::row_sum(ops::sub(
                    ops::add_scalar(logvar, 1.0),
                    ops::add(ops::square(mu), ops::exp(logvar)),
                )),
                -0.5,
            );
            (Some(c), Some(ops::sum_all(kl_rows)))
        } else {
            (None, None)
        };

        // ---------- route pathway (§IV-A, §IV-B) ----------
        let max_len = batch.iter().map(|e| e.route.len()).max().unwrap_or(1);
        let mut state = self.gru.zero_state(binder, n);
        let mut route_ll: Option<Var<'t>> = None;
        let mut transitions = 0usize;
        for i in 0..max_len - 1 {
            let mut tokens = Vec::with_capacity(n);
            let mut targets = Vec::with_capacity(n);
            let mut mask = Vec::with_capacity(n);
            for e in batch {
                if i + 1 < e.route.len() {
                    tokens.push(e.route[i]);
                    targets.push(e.slots[i]);
                    mask.push(1.0);
                    transitions += 1;
                } else {
                    tokens.push(0);
                    targets.push(0);
                    mask.push(0.0);
                }
            }
            let inp = self.emb.forward(binder, &tokens);
            let hid = self.gru.step(binder, inp, &mut state);
            let logits = self.slot_logits(binder, hid, fx, c);
            let logp = ops::log_softmax_rows(logits);
            let picked = ops::pick_per_row(logp, &targets);
            let masked = ops::sum_all(ops::mask_rows(ops::reshape(picked, &[n, 1]), &mask));
            route_ll = Some(match route_ll {
                Some(acc) => ops::add(acc, masked),
                None => masked,
            });
        }
        // A batch of length-1 routes has no transitions; its route term is 0.
        let route_ll = route_ll.unwrap_or_else(|| binder.input(Array::zeros(&[1])));

        // ---------- ELBO (Eq. 7) ----------
        // ELBO = route_ll + dest_ll − KL_c − 2·KL_π ; loss = −ELBO / n.
        let mut elbo = ops::add(route_ll, dest_ll);
        if let Some(klc) = kl_c {
            elbo = ops::sub(elbo, klc);
        }
        elbo = ops::sub(elbo, ops::scale(kl_pi, 2.0));
        let loss = ops::scale(elbo, -1.0 / n as f32);

        let stats = ElboStats {
            elbo: elbo.scalar_value(),
            route_ll: route_ll.scalar_value(),
            dest_ll: dest_ll.scalar_value(),
            kl_c: kl_c.map(|v| v.scalar_value()).unwrap_or(0.0),
            kl_pi: kl_pi.scalar_value(),
            transitions,
        };
        (loss, stats)
    }

    /// Statically analyze the training graph this model builds for `batch`:
    /// record one forward pass (no kernels beyond the forward itself, no
    /// backward) and run the [`st_tensor::analyze`] passes plus the
    /// module-level never-bound-parameter check over the exported spec.
    ///
    /// The pass is side-effect free: it draws noise from a private seeded
    /// RNG and routes batch-norm statistics into a throwaway sink, so
    /// neither the caller's RNG stream nor the model's running buffers move
    /// — [`Trainer::fit_ft`]'s bit-identical resume guarantee is preserved
    /// when analysis runs before epoch 0.
    pub fn analyze_graph(&self, batch: &[&Example]) -> Vec<Diagnostic> {
        assert!(
            !batch.is_empty(),
            "analyze_graph needs at least one example"
        );
        let mut rng = init::rng(0);
        let mut sink = BnBatchStats::default();
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let (loss, _) = self.batch_loss_collect(&binder, batch, &mut rng, true, Some(&mut sink));
        analyze_module_graph(&tape, &binder, loss.id(), self)
    }

    /// Mean negative ELBO per trip over `examples` (no parameter updates).
    pub fn evaluate_loss(&self, examples: &[Example], batch_size: usize, rng: &mut StdRng) -> f32 {
        assert!(!examples.is_empty());
        let mut total = 0.0f64;
        let mut count = 0usize;
        for chunk in examples.chunks(batch_size) {
            let refs: Vec<&Example> = chunk.iter().collect();
            let tape = Tape::new();
            let binder = Binder::new(&tape);
            let (loss, _) = self.batch_loss(&binder, &refs, rng, false);
            total += loss.scalar_value() as f64 * refs.len() as f64;
            count += refs.len();
        }
        (total / count as f64) as f32
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss (−ELBO/trip).
    pub train_loss: f32,
    /// Mean validation loss, if a validation set was supplied.
    pub val_loss: Option<f32>,
    /// Wall-clock seconds spent in this epoch.
    pub seconds: f64,
}

/// Training-loop configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs (paper: 15).
    pub epochs: usize,
    /// Minibatch size (paper: 128).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Early-stopping patience on validation loss (None disables).
    pub patience: Option<usize>,
    /// Worker threads for data-parallel gradient computation. `1` (or `0`)
    /// runs everything on the calling thread; the result is bit-identical
    /// for any value (see [`crate::parallel`]).
    pub num_threads: usize,
    /// Examples per shard. The shard partition — and therefore the exact
    /// arithmetic — depends only on this, never on `num_threads`.
    ///
    /// The default equals the default `batch_size`, i.e. one shard per
    /// minibatch: identical semantics to classic serial training. Setting
    /// it below `batch_size` enables intra-batch parallelism, at the cost
    /// of noisier per-shard batch-norm statistics (each shard normalizes
    /// with its own batch moments).
    pub shard_size: usize,
    /// Where [`Trainer::fit_ft`] writes training checkpoints. `None` (the
    /// default) disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many completed epochs (and always at
    /// the final/early-stopped epoch). Values < 1 are treated as 1.
    pub checkpoint_every: usize,
    /// Resume [`Trainer::fit_ft`] from this checkpoint if the file exists;
    /// a missing file starts fresh, a corrupt one is an error.
    pub resume_from: Option<PathBuf>,
    /// Rolling window of recent batch losses used by the divergence
    /// detector (batches).
    pub divergence_window: usize,
    /// A batch loss above `divergence_factor ×` the rolling-window median
    /// counts as divergence.
    pub divergence_factor: f32,
    /// Maximum divergence rollbacks across the whole run before
    /// [`Trainer::fit_ft`] gives up with [`TrainError::RollbackLimit`].
    pub max_rollbacks: u32,
    /// Learning-rate multiplier applied on each rollback.
    pub lr_backoff: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 64,
            lr: 3e-3,
            grad_clip: 5.0,
            patience: Some(3),
            num_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shard_size: 64,
            checkpoint_path: None,
            checkpoint_every: 1,
            resume_from: None,
            divergence_window: 8,
            divergence_factor: 10.0,
            max_rollbacks: 3,
            lr_backoff: 0.5,
        }
    }
}

/// A structured occurrence during a fault-tolerant run, recorded in
/// [`TrainHistory::events`] in the order it happened.
#[derive(Debug, Clone)]
pub enum TrainEvent {
    /// Training resumed from a checkpoint.
    Resumed {
        /// Epochs already completed when the checkpoint was written.
        epoch: usize,
        /// Optimizer steps already taken.
        step: u64,
    },
    /// A checkpoint was written.
    Checkpointed {
        /// Epochs completed at write time.
        epoch: usize,
        /// Destination file.
        path: PathBuf,
    },
    /// A shard worker panicked and was contained.
    ShardFailure {
        /// Epoch coordinate.
        epoch: usize,
        /// Batch coordinate within the epoch.
        batch: usize,
        /// Shard index within the batch.
        shard: usize,
        /// Whether the serial retry recovered the shard.
        recovered: bool,
        /// Panic payload.
        message: String,
    },
    /// The divergence detector fired.
    Divergence {
        /// Epoch coordinate.
        epoch: usize,
        /// Batch coordinate within the epoch.
        batch: usize,
        /// What tripped the detector.
        reason: String,
        /// Offending batch loss (NaN for worker-failure divergence).
        loss: f32,
    },
    /// The pre-training graph analyzer reported a finding (shape mismatch,
    /// unreachable parameter, NaN hazard, …) before epoch 0.
    LintWarning {
        /// The analyzer finding, verbatim.
        diagnostic: Diagnostic,
    },
    /// The trainer restored the last good state and backed off the LR.
    RolledBack {
        /// Epoch being retried.
        epoch: usize,
        /// Total rollbacks so far this run.
        rollbacks: u32,
        /// Learning rate after backoff.
        new_lr: f32,
    },
}

/// Mirror a [`TrainEvent`] into the st-obs event stream, unifying the
/// trainer's structured events with the trace a recorded run exports.
/// No-op (and no JSON is built) unless recording is on.
fn obs_train_event(ev: &TrainEvent) {
    if !st_obs::recording() {
        return;
    }
    use serde_json::json;
    let (name, fields) = match ev {
        TrainEvent::Resumed { epoch, step } => (
            "train.resumed",
            json!({"epoch": *epoch as f64, "step": *step as f64}),
        ),
        TrainEvent::Checkpointed { epoch, path } => (
            "train.checkpointed",
            json!({"epoch": *epoch as f64, "path": path.display().to_string()}),
        ),
        TrainEvent::ShardFailure {
            epoch,
            batch,
            shard,
            recovered,
            message,
        } => (
            "train.shard_failure",
            json!({
                "epoch": *epoch as f64,
                "batch": *batch as f64,
                "shard": *shard as f64,
                "recovered": *recovered,
                "message": message.as_str(),
            }),
        ),
        TrainEvent::Divergence {
            epoch,
            batch,
            reason,
            loss,
        } => (
            "train.divergence",
            json!({
                "epoch": *epoch as f64,
                "batch": *batch as f64,
                "reason": reason.as_str(),
                "loss": *loss as f64,
            }),
        ),
        TrainEvent::LintWarning { diagnostic } => (
            "train.lint_warning",
            json!({
                "kind": diagnostic.kind.to_string(),
                "severity": diagnostic.severity.to_string(),
                "message": diagnostic.message.as_str(),
            }),
        ),
        TrainEvent::RolledBack {
            epoch,
            rollbacks,
            new_lr,
        } => (
            "train.rolled_back",
            json!({
                "epoch": *epoch as f64,
                "rollbacks": *rollbacks as f64,
                "new_lr": *new_lr as f64,
            }),
        ),
    };
    st_obs::event(name, fields);
}

/// Push a [`TrainEvent`] onto `events`, mirroring it into st-obs first.
fn push_event(events: &mut Vec<TrainEvent>, ev: TrainEvent) {
    obs_train_event(&ev);
    events.push(ev);
}

/// Record one epoch's headline numbers as an st-obs event (when recording).
fn obs_epoch_stats(epoch: usize, train_loss: f32, val_loss: Option<f32>, seconds: f64) {
    if !st_obs::recording() {
        return;
    }
    use serde_json::{json, Value};
    let val = match val_loss {
        Some(v) => Value::Num(v as f64),
        None => Value::Null,
    };
    st_obs::event(
        "train.epoch",
        json!({
            "epoch": epoch as f64,
            "train_loss": train_loss as f64,
            "val_loss": val,
            "seconds": seconds,
        }),
    );
}

/// Fatal failure of a fault-tolerant run.
#[derive(Debug)]
pub enum TrainError {
    /// Checkpoint save/load failed.
    Checkpoint(CheckpointError),
    /// Divergence persisted through [`TrainConfig::max_rollbacks`] retries.
    RollbackLimit {
        /// Epoch where the limit was hit.
        epoch: usize,
        /// Rollbacks performed.
        rollbacks: u32,
    },
    /// The fault injector simulated a process kill ([`FaultPlan::crash_at`]).
    /// Re-running with [`TrainConfig::resume_from`] continues the run.
    ///
    /// [`FaultPlan::crash_at`]: crate::faultinject::FaultPlan::crash_at
    Crashed {
        /// Epoch coordinate of the simulated kill.
        epoch: usize,
        /// Batch coordinate of the simulated kill.
        batch: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            TrainError::RollbackLimit { epoch, rollbacks } => write!(
                f,
                "training diverged at epoch {epoch} after {rollbacks} rollbacks"
            ),
            TrainError::Crashed { epoch, batch } => {
                write!(f, "injected crash at epoch {epoch}, batch {batch}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Outcome of a fault-tolerant run: per-epoch stats plus every structured
/// fault/recovery event.
#[derive(Debug, Default)]
pub struct TrainHistory {
    /// Per-epoch statistics (same as [`Trainer::fit`]'s return).
    pub epochs: Vec<EpochStats>,
    /// Structured fault/recovery events in occurrence order.
    pub events: Vec<TrainEvent>,
    /// Epoch the run resumed from, if it resumed.
    pub resumed_from: Option<usize>,
}

/// Trains a [`DeepSt`] model (Algorithm 1 of the paper).
pub struct Trainer {
    /// The model being trained.
    pub model: DeepSt,
    /// High-water mark of any worker's tape arena seen so far, in bytes.
    pub peak_tape_bytes: usize,
    /// Findings from the pre-training graph analysis (run once before epoch
    /// 0 by [`Trainer::fit`] / [`Trainer::fit_ft`]); empty until then, and
    /// empty afterwards when the graph is clean.
    pub lint_report: Vec<Diagnostic>,
    opt: Adam,
    cfg: TrainConfig,
}

impl Trainer {
    /// Create a trainer owning `model`.
    pub fn new(model: DeepSt, cfg: TrainConfig) -> Self {
        let opt = Adam::new(cfg.lr);
        Self {
            model,
            peak_tape_bytes: 0,
            lint_report: Vec::new(),
            opt,
            cfg,
        }
    }

    /// Run the static graph analyzer over the training graph the model will
    /// build for the first minibatch, storing the findings in
    /// [`Trainer::lint_report`] (and returning a copy). Called once before
    /// epoch 0 by [`Trainer::fit`] / [`Trainer::fit_ft`]; side-effect free
    /// (see [`DeepSt::analyze_graph`]).
    fn pre_train_lint(&mut self, train: &[Example]) -> Vec<Diagnostic> {
        let n = self.cfg.batch_size.min(train.len()).max(1);
        let refs: Vec<&Example> = train.iter().take(n).collect();
        self.lint_report = self.model.analyze_graph(&refs);
        // Output-space coverage: Example slots come from
        // `net.neighbor_slot`, so a slot at or past `max_neighbors` is a
        // training target the slot head cannot represent — the loss
        // silently mis-attributes it. One scan over the full training set
        // (cheap: a max over pre-extracted usizes).
        let max_slot = train
            .iter()
            .flat_map(|e| e.slots.iter().copied())
            .max()
            .unwrap_or(0);
        if max_slot >= self.model.cfg.max_neighbors {
            self.lint_report.push(Diagnostic {
                kind: st_tensor::LintKind::TruncatedOutputSpace,
                severity: st_tensor::Severity::Error,
                node: None,
                message: format!(
                    "training data contains slot {max_slot} but the output head has only \
                     {} slots (cfg.max_neighbors): those transitions are unlearnable",
                    self.model.cfg.max_neighbors
                ),
            });
        }
        self.lint_report.clone()
    }

    /// One pass over the training data. Returns the mean loss per trip.
    ///
    /// Each minibatch is split into [`TrainConfig::shard_size`] shards whose
    /// gradients are computed by up to [`TrainConfig::num_threads`] workers
    /// ([`crate::parallel::run_shards`]); the reduction, batch-norm updates
    /// and optimizer step all happen here in fixed shard order, so the
    /// trained parameters do not depend on the thread count.
    pub fn train_epoch(&mut self, examples: &[Example], rng: &mut StdRng) -> f32 {
        assert!(!examples.is_empty(), "empty training set");
        let _sp = st_obs::span("train/epoch");
        let g_loss = st_obs::gauge("train.batch_loss");
        let g_norm = st_obs::gauge("train.grad_norm");
        let shard_size = self.cfg.shard_size.max(1);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut count = 0usize;
        let serial_tape = Tape::new();
        for chunk in order.chunks(self.cfg.batch_size) {
            let _sb = st_obs::span("train/batch");
            let refs: Vec<&Example> = chunk.iter().map(|&i| &examples[i]).collect();
            let num_shards = refs.len().div_ceil(shard_size);
            let outputs = if num_shards == 1 {
                // One shard per minibatch (the default): draw noise straight
                // from the epoch RNG, exactly like the classic serial
                // trainer, so existing seeded runs stay reproducible.
                vec![crate::parallel::run_shard_with_rng(
                    &self.model,
                    &serial_tape,
                    &refs,
                    rng,
                )]
            } else {
                // One seed per shard, drawn in shard order from the main
                // RNG — the noise each shard sees is a function of its
                // position, not of which worker thread picks it up.
                let seeds: Vec<u64> = (0..num_shards).map(|_| rng.gen::<u64>()).collect();
                let (outputs, failures) = crate::parallel::run_shards(
                    &self.model,
                    &refs,
                    shard_size,
                    self.cfg.num_threads,
                    &seeds,
                    &serial_tape,
                    None,
                );
                if failures.iter().any(|f| !f.recovered) {
                    // Legacy path: treat an unrecoverable shard like a
                    // pathological minibatch and skip it. `fit_ft` turns
                    // this into a structured divergence event instead.
                    continue;
                }
                outputs
            };
            if outputs.iter().any(|o| !o.loss.is_finite()) {
                // Skip a pathological minibatch rather than poisoning
                // parameters. Nothing has been accumulated yet.
                continue;
            }
            let n = refs.len() as f32;
            for out in &outputs {
                // Shard losses are means over n_s examples; the minibatch
                // gradient is the n_s/n-weighted sum of shard gradients.
                let w = out.count as f32 / n;
                for (p, g) in &out.grads {
                    p.accumulate_grad_scaled(w, g);
                }
                if !out.bn_updates.is_empty() {
                    // Empty when the traffic pathway is disabled (DeepST-C).
                    self.model.apply_bn_stats(&out.bn_updates);
                }
                total += out.loss as f64 * out.count as f64;
                self.peak_tape_bytes = self.peak_tape_bytes.max(out.peak_tape_bytes);
            }
            let params = self.model.params();
            let grad_norm = clip_grad_norm_grouped(&self.model.param_groups(), self.cfg.grad_clip);
            g_norm.set(grad_norm as f64);
            g_loss.set(
                outputs
                    .iter()
                    .map(|o| o.loss as f64 * o.count as f64)
                    .sum::<f64>()
                    / n as f64,
            );
            self.opt.step(&params);
            count += refs.len();
        }
        (total / count.max(1) as f64) as f32
    }

    /// Full training run with optional validation-based early stopping.
    /// Returns the per-epoch history.
    pub fn fit(
        &mut self,
        train: &[Example],
        val: Option<&[Example]>,
        rng: &mut StdRng,
    ) -> Vec<EpochStats> {
        let _sp = st_obs::span("train/fit");
        let mut history = Vec::new();
        let mut best_val = f32::INFINITY;
        let mut bad_epochs = 0usize;
        for diagnostic in self.pre_train_lint(train) {
            obs_train_event(&TrainEvent::LintWarning { diagnostic });
        }
        for epoch in 0..self.cfg.epochs {
            let t0 = Instant::now();
            let train_loss = self.train_epoch(train, rng);
            let val_loss = val.map(|v| self.model.evaluate_loss(v, self.cfg.batch_size, rng));
            let seconds = t0.elapsed().as_secs_f64();
            obs_epoch_stats(epoch, train_loss, val_loss, seconds);
            history.push(EpochStats {
                epoch,
                train_loss,
                val_loss,
                seconds,
            });
            if let Some(vl) = val_loss {
                if vl < best_val - 1e-4 {
                    best_val = vl;
                    bad_epochs = 0;
                } else {
                    bad_epochs += 1;
                    if let Some(p) = self.cfg.patience {
                        if bad_epochs >= p {
                            break;
                        }
                    }
                }
            }
        }
        history
    }

    /// One pass over a stream of pre-assembled minibatches. Returns the
    /// mean loss per example.
    ///
    /// The disk-streamed twin of [`Trainer::train_epoch`]: batches arrive
    /// from an iterator (typically shard files of an on-disk trip store)
    /// instead of a materialized `&[Example]`, so peak memory holds one
    /// minibatch, not the epoch. Batch composition and order are the
    /// stream's responsibility — shuffle shards before iterating; every
    /// yielded batch then goes through the exact shard/clip/step pipeline
    /// of the in-memory trainer, so a stream that replays the in-memory
    /// epoch's batches in the same order trains bit-identically.
    pub fn train_epoch_stream<I>(&mut self, batches: I, rng: &mut StdRng) -> f32
    where
        I: IntoIterator<Item = Vec<Example>>,
    {
        let _sp = st_obs::span("train/epoch");
        let g_loss = st_obs::gauge("train.batch_loss");
        let g_norm = st_obs::gauge("train.grad_norm");
        let shard_size = self.cfg.shard_size.max(1);
        let mut total = 0.0f64;
        let mut count = 0usize;
        let serial_tape = Tape::new();
        for batch in batches {
            if batch.is_empty() {
                continue;
            }
            let _sb = st_obs::span("train/batch");
            let refs: Vec<&Example> = batch.iter().collect();
            let num_shards = refs.len().div_ceil(shard_size);
            let outputs = if num_shards == 1 {
                vec![crate::parallel::run_shard_with_rng(
                    &self.model,
                    &serial_tape,
                    &refs,
                    rng,
                )]
            } else {
                let seeds: Vec<u64> = (0..num_shards).map(|_| rng.gen::<u64>()).collect();
                let (outputs, failures) = crate::parallel::run_shards(
                    &self.model,
                    &refs,
                    shard_size,
                    self.cfg.num_threads,
                    &seeds,
                    &serial_tape,
                    None,
                );
                if failures.iter().any(|f| !f.recovered) {
                    continue;
                }
                outputs
            };
            if outputs.iter().any(|o| !o.loss.is_finite()) {
                continue;
            }
            let n = refs.len() as f32;
            for out in &outputs {
                let w = out.count as f32 / n;
                for (p, g) in &out.grads {
                    p.accumulate_grad_scaled(w, g);
                }
                if !out.bn_updates.is_empty() {
                    self.model.apply_bn_stats(&out.bn_updates);
                }
                total += out.loss as f64 * out.count as f64;
                self.peak_tape_bytes = self.peak_tape_bytes.max(out.peak_tape_bytes);
            }
            let params = self.model.params();
            let grad_norm = clip_grad_norm_grouped(&self.model.param_groups(), self.cfg.grad_clip);
            g_norm.set(grad_norm as f64);
            g_loss.set(
                outputs
                    .iter()
                    .map(|o| o.loss as f64 * o.count as f64)
                    .sum::<f64>()
                    / n as f64,
            );
            self.opt.step(&params);
            count += refs.len();
        }
        assert!(count > 0, "empty training stream");
        (total / count as f64) as f32
    }

    /// Full training run over disk-streamed batches, with checkpoint and
    /// resume.
    ///
    /// `batches(epoch, rng)` is called once per epoch and must return that
    /// epoch's minibatch stream (re-opening shard files each time); the
    /// `rng` handle lets the factory draw its shuffle decisions from the
    /// run's RNG stream so resume replays them. Checkpointing follows
    /// [`Trainer::fit_ft`]: with [`TrainConfig::checkpoint_path`] set, a
    /// full training checkpoint is written every
    /// [`TrainConfig::checkpoint_every`] epochs, and
    /// [`TrainConfig::resume_from`] continues from one bit-identically.
    /// Divergence rollback is not provided here — streamed runs are
    /// expected to rely on checkpoints instead.
    pub fn fit_stream<F, I>(
        &mut self,
        mut batches: F,
        val: Option<&[Example]>,
        rng: &mut StdRng,
    ) -> Result<Vec<EpochStats>, TrainError>
    where
        F: FnMut(usize, &mut StdRng) -> I,
        I: IntoIterator<Item = Vec<Example>>,
    {
        let _sp = st_obs::span("train/fit_stream");
        let mut history = Vec::new();
        let mut best_val = f32::INFINITY;
        let mut bad_epochs = 0usize;
        let mut epoch = 0usize;
        if let Some(path) = self.cfg.resume_from.clone() {
            if path.exists() {
                let rp = checkpoint::load_training(&path, &self.model, &mut self.opt, rng)?;
                epoch = rp.epoch;
                bad_epochs = rp.bad_epochs;
                best_val = rp.best_val;
            }
        }
        while epoch < self.cfg.epochs {
            let t0 = Instant::now();
            let train_loss = self.train_epoch_stream(batches(epoch, rng), rng);
            let val_loss = val.map(|v| self.model.evaluate_loss(v, self.cfg.batch_size, rng));
            let seconds = t0.elapsed().as_secs_f64();
            obs_epoch_stats(epoch, train_loss, val_loss, seconds);
            history.push(EpochStats {
                epoch,
                train_loss,
                val_loss,
                seconds,
            });
            let mut stop = false;
            if let Some(vl) = val_loss {
                if vl < best_val - 1e-4 {
                    best_val = vl;
                    bad_epochs = 0;
                } else {
                    bad_epochs += 1;
                    if let Some(p) = self.cfg.patience {
                        if bad_epochs >= p {
                            stop = true;
                        }
                    }
                }
            }
            epoch += 1;
            if let Some(path) = self.cfg.checkpoint_path.clone() {
                let every = self.cfg.checkpoint_every.max(1);
                if epoch.is_multiple_of(every) || epoch == self.cfg.epochs || stop {
                    let rp = ResumePoint {
                        epoch,
                        step: self.opt.steps(),
                        rollbacks: 0,
                        bad_epochs,
                        best_val,
                    };
                    checkpoint::save_training(&path, &self.model, &self.opt, rng, &rp)?;
                }
            }
            if stop {
                break;
            }
        }
        Ok(history)
    }

    /// Fault-tolerant training run (see DESIGN.md §8).
    ///
    /// Like [`Trainer::fit`], plus:
    ///
    /// - **Checkpoint/resume**: with [`TrainConfig::checkpoint_path`] set, a
    ///   complete training checkpoint (params, BN buffers, Adam state, RNG
    ///   state, progress counters) is written atomically every
    ///   [`TrainConfig::checkpoint_every`] epochs; with
    ///   [`TrainConfig::resume_from`] pointing at such a file, the run
    ///   continues from it **bit-identically**: `fit_ft` over N epochs equals
    ///   `fit_ft` over k epochs + resume + N−k epochs, parameter for
    ///   parameter, bit for bit.
    /// - **Divergence rollback**: a non-finite batch loss, non-finite global
    ///   gradient norm, loss spike above
    ///   [`TrainConfig::divergence_factor`] × the rolling-window median, or
    ///   unrecoverable worker failure aborts the epoch; the trainer restores
    ///   the last good state (taken at the previous epoch boundary), scales
    ///   the learning rate by [`TrainConfig::lr_backoff`], and retries, at
    ///   most [`TrainConfig::max_rollbacks`] times per run.
    /// - **Worker containment**: shard-worker panics are caught and retried
    ///   serially with the shard's own seed (bit-identical on success);
    ///   every fault and recovery is a [`TrainEvent`] in the returned
    ///   [`TrainHistory`].
    ///
    /// `injector` arms the deterministic fault-injection harness (tests
    /// only); pass `None` in production.
    pub fn fit_ft(
        &mut self,
        train: &[Example],
        val: Option<&[Example]>,
        rng: &mut StdRng,
        injector: Option<&FaultInjector>,
    ) -> Result<TrainHistory, TrainError> {
        let _sp = st_obs::span("train/fit_ft");
        let mut history = TrainHistory::default();
        let mut best_val = f32::INFINITY;
        let mut bad_epochs = 0usize;
        let mut rollbacks = 0u32;
        let mut epoch = 0usize;

        for diagnostic in self.pre_train_lint(train) {
            push_event(&mut history.events, TrainEvent::LintWarning { diagnostic });
        }

        if let Some(path) = self.cfg.resume_from.clone() {
            if path.exists() {
                let rp = checkpoint::load_training(&path, &self.model, &mut self.opt, rng)?;
                epoch = rp.epoch;
                rollbacks = rp.rollbacks;
                bad_epochs = rp.bad_epochs;
                best_val = rp.best_val;
                history.resumed_from = Some(rp.epoch);
                push_event(
                    &mut history.events,
                    TrainEvent::Resumed {
                        epoch: rp.epoch,
                        step: rp.step,
                    },
                );
            }
        }

        // Last known-good state, restored on divergence. Taken at epoch
        // boundaries so a rolled-back epoch replays the exact RNG stream the
        // failed attempt saw (minus any one-shot injected faults).
        let mut good = self.snapshot_state(rng);
        while epoch < self.cfg.epochs {
            let t0 = Instant::now();
            match self.train_epoch_ft(train, rng, epoch, injector, &mut history.events) {
                EpochOutcome::Crashed { batch } => {
                    return Err(TrainError::Crashed { epoch, batch });
                }
                EpochOutcome::Diverged {
                    batch,
                    reason,
                    loss,
                } => {
                    push_event(
                        &mut history.events,
                        TrainEvent::Divergence {
                            epoch,
                            batch,
                            reason,
                            loss,
                        },
                    );
                    rollbacks += 1;
                    if rollbacks > self.cfg.max_rollbacks {
                        return Err(TrainError::RollbackLimit { epoch, rollbacks });
                    }
                    // Read the LR *before* restoring: repeated rollbacks must
                    // compound the backoff, not re-derive it from the
                    // snapshot's original LR every time.
                    let new_lr = (self.opt.lr() * self.cfg.lr_backoff).max(f32::MIN_POSITIVE);
                    self.restore_state(&good, rng);
                    self.opt.set_lr(new_lr);
                    push_event(
                        &mut history.events,
                        TrainEvent::RolledBack {
                            epoch,
                            rollbacks,
                            new_lr,
                        },
                    );
                    // Retry the same epoch.
                }
                EpochOutcome::Completed { mean_loss } => {
                    let val_loss =
                        val.map(|v| self.model.evaluate_loss(v, self.cfg.batch_size, rng));
                    let seconds = t0.elapsed().as_secs_f64();
                    obs_epoch_stats(epoch, mean_loss, val_loss, seconds);
                    history.epochs.push(EpochStats {
                        epoch,
                        train_loss: mean_loss,
                        val_loss,
                        seconds,
                    });
                    let mut stop = false;
                    if let Some(vl) = val_loss {
                        if vl < best_val - 1e-4 {
                            best_val = vl;
                            bad_epochs = 0;
                        } else {
                            bad_epochs += 1;
                            if let Some(p) = self.cfg.patience {
                                if bad_epochs >= p {
                                    stop = true;
                                }
                            }
                        }
                    }
                    epoch += 1;
                    good = self.snapshot_state(rng);
                    if let Some(path) = self.cfg.checkpoint_path.clone() {
                        let every = self.cfg.checkpoint_every.max(1);
                        if epoch.is_multiple_of(every) || epoch == self.cfg.epochs || stop {
                            let rp = ResumePoint {
                                epoch,
                                step: self.opt.steps(),
                                rollbacks,
                                bad_epochs,
                                best_val,
                            };
                            checkpoint::save_training(&path, &self.model, &self.opt, rng, &rp)?;
                            push_event(
                                &mut history.events,
                                TrainEvent::Checkpointed { epoch, path },
                            );
                        }
                    }
                    if stop {
                        break;
                    }
                }
            }
        }
        Ok(history)
    }

    /// One fault-tolerant epoch: contained shard execution, structured
    /// events, divergence detection. Aborts (without an optimizer step for
    /// the offending batch) as soon as divergence is detected.
    fn train_epoch_ft(
        &mut self,
        examples: &[Example],
        rng: &mut StdRng,
        epoch: usize,
        injector: Option<&FaultInjector>,
        events: &mut Vec<TrainEvent>,
    ) -> EpochOutcome {
        assert!(!examples.is_empty(), "empty training set");
        let _sp = st_obs::span("train/epoch");
        let g_loss = st_obs::gauge("train.batch_loss");
        let g_norm = st_obs::gauge("train.grad_norm");
        let shard_size = self.cfg.shard_size.max(1);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut count = 0usize;
        let serial_tape = Tape::new();
        let window_cap = self.cfg.divergence_window.max(1);
        let mut window: VecDeque<f32> = VecDeque::with_capacity(window_cap);
        for (batch_idx, chunk) in order.chunks(self.cfg.batch_size).enumerate() {
            let _sb = st_obs::span("train/batch");
            if injector.is_some_and(|inj| inj.take_crash(epoch, batch_idx)) {
                return EpochOutcome::Crashed { batch: batch_idx };
            }
            let refs: Vec<&Example> = chunk.iter().map(|&i| &examples[i]).collect();
            let num_shards = refs.len().div_ceil(shard_size);
            let faults = injector.map(|injector| ShardFaultCtx {
                injector,
                epoch,
                batch: batch_idx,
            });
            let (outputs, failures) = if num_shards == 1 {
                // Single-shard path: draw noise straight from the epoch RNG
                // like the classic trainer. Containment here must snapshot
                // the RNG first — a panic mid-shard leaves it partially
                // consumed, and the retry needs the original stream to stay
                // bit-identical with an unfailed run.
                let model = &self.model;
                let contained = |rng: &mut StdRng, fire: bool| {
                    catch_unwind(AssertUnwindSafe(|| {
                        if fire {
                            // st-lint: allow(panic-in-lib) — deliberate injected fault
                            panic!(
                                "injected worker panic (epoch {epoch}, batch {batch_idx}, shard 0)"
                            );
                        }
                        crate::parallel::run_shard_with_rng(model, &serial_tape, &refs, rng)
                    }))
                    .map_err(panic_message)
                };
                let snap = rng.state();
                let fire = faults.is_some_and(|f| f.injector.take_panic(epoch, batch_idx, 0));
                match contained(rng, fire) {
                    Ok(out) => (vec![out], Vec::new()),
                    Err(message) => {
                        *rng = StdRng::from_state(snap);
                        match contained(rng, false) {
                            Ok(out) => (
                                vec![out],
                                vec![ShardFailure {
                                    shard: 0,
                                    message,
                                    recovered: true,
                                }],
                            ),
                            Err(retry_message) => (
                                Vec::new(),
                                vec![ShardFailure {
                                    shard: 0,
                                    message: format!(
                                        "{message}; serial retry failed: {retry_message}"
                                    ),
                                    recovered: false,
                                }],
                            ),
                        }
                    }
                }
            } else {
                let seeds: Vec<u64> = (0..num_shards).map(|_| rng.gen::<u64>()).collect();
                crate::parallel::run_shards(
                    &self.model,
                    &refs,
                    shard_size,
                    self.cfg.num_threads,
                    &seeds,
                    &serial_tape,
                    faults,
                )
            };
            for f in &failures {
                push_event(
                    events,
                    TrainEvent::ShardFailure {
                        epoch,
                        batch: batch_idx,
                        shard: f.shard,
                        recovered: f.recovered,
                        message: f.message.clone(),
                    },
                );
            }
            if failures.iter().any(|f| !f.recovered) {
                return EpochOutcome::Diverged {
                    batch: batch_idx,
                    reason: "unrecoverable worker failure".to_string(),
                    loss: f32::NAN,
                };
            }

            let n = refs.len() as f32;
            let mut batch_loss = outputs.iter().map(|o| o.loss * o.count as f32).sum::<f32>() / n;
            if injector.is_some_and(|inj| inj.take_nan_loss(epoch, batch_idx)) {
                batch_loss = f32::NAN;
            }
            if !batch_loss.is_finite() || outputs.iter().any(|o| !o.loss.is_finite()) {
                return EpochOutcome::Diverged {
                    batch: batch_idx,
                    reason: "non-finite batch loss".to_string(),
                    loss: batch_loss,
                };
            }
            if window.len() == window_cap {
                let mut sorted: Vec<f32> = window.iter().copied().collect();
                sorted.sort_by(f32::total_cmp);
                let median = sorted[sorted.len() / 2];
                let threshold = self.cfg.divergence_factor * median.abs().max(1e-3);
                if batch_loss > threshold {
                    return EpochOutcome::Diverged {
                        batch: batch_idx,
                        reason: format!(
                            "loss spike: {batch_loss} > {} × rolling median {median}",
                            self.cfg.divergence_factor
                        ),
                        loss: batch_loss,
                    };
                }
            }

            for out in &outputs {
                let w = out.count as f32 / n;
                for (p, g) in &out.grads {
                    p.accumulate_grad_scaled(w, g);
                }
                if !out.bn_updates.is_empty() {
                    self.model.apply_bn_stats(&out.bn_updates);
                }
                total += out.loss as f64 * out.count as f64;
                self.peak_tape_bytes = self.peak_tape_bytes.max(out.peak_tape_bytes);
            }
            let params = self.model.params();
            let grad_norm = clip_grad_norm_grouped(&self.model.param_groups(), self.cfg.grad_clip);
            g_norm.set(grad_norm as f64);
            g_loss.set(batch_loss as f64);
            if !grad_norm.is_finite() {
                // `clip_grad_norm` cannot scale a non-finite norm down; the
                // step would poison every parameter. Drop the gradients and
                // let the rollback path handle it.
                for p in &params {
                    p.zero_grad();
                }
                return EpochOutcome::Diverged {
                    batch: batch_idx,
                    reason: format!("non-finite gradient norm {grad_norm}"),
                    loss: batch_loss,
                };
            }
            self.opt.step(&params);
            if window.len() == window_cap {
                window.pop_front();
            }
            window.push_back(batch_loss);
            count += refs.len();
        }
        EpochOutcome::Completed {
            mean_loss: (total / count.max(1) as f64) as f32,
        }
    }

    /// Capture everything a rollback must restore: parameter values, BN
    /// buffers, optimizer state, RNG state.
    fn snapshot_state(&self, rng: &StdRng) -> GoodState {
        GoodState {
            params: self.model.state(),
            buffers: self.model.buffers(),
            opt: self.opt.export_state(),
            rng: rng.state(),
        }
    }

    /// Restore a [`GoodState`] snapshot taken from this very trainer —
    /// mismatches are impossible, hence the expects.
    fn restore_state(&mut self, s: &GoodState, rng: &mut StdRng) {
        self.model
            .load_state(&s.params)
            // st-lint: allow(panic-in-lib) — snapshot taken from this model
            .expect("snapshot matches own model");
        self.model
            .load_buffers(&s.buffers)
            // st-lint: allow(panic-in-lib) — snapshot taken from this model
            .expect("snapshot matches own model");
        self.opt
            .import_state(s.opt.clone())
            // st-lint: allow(panic-in-lib) — snapshot taken from this optimizer
            .expect("snapshot matches own optimizer");
        *rng = StdRng::from_state(s.rng);
    }
}

/// In-memory last-known-good training state for divergence rollback.
struct GoodState {
    params: Vec<(String, Array)>,
    buffers: Vec<(String, Array)>,
    opt: AdamState,
    rng: [u64; 4],
}

/// Result of one fault-tolerant epoch.
enum EpochOutcome {
    /// Epoch ran to completion.
    Completed {
        /// Mean training loss per trip.
        mean_loss: f32,
    },
    /// Divergence detected; the epoch was aborted before the offending
    /// optimizer step.
    Diverged {
        batch: usize,
        reason: String,
        loss: f32,
    },
    /// The fault injector simulated a process kill.
    Crashed { batch: usize },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepStConfig;
    use crate::model::DeepSt;
    use st_roadnet::{grid_city, GridConfig};
    use st_tensor::init;
    use std::sync::Arc;

    /// A toy world: routes from a tiny grid with a fixed transition habit.
    fn toy_examples(n: usize, seed: u64) -> (st_roadnet::RoadNetwork, Vec<Example>) {
        let net = grid_city(&GridConfig::small_test(), 1);
        let mut rng = init::rng(seed);
        let tensor = Arc::new(vec![0.3f32; 64]);
        let mut out = Vec::new();
        let mut cur_seed = 0usize;
        while out.len() < n {
            cur_seed += 1;
            let start = cur_seed % net.num_segments();
            let mut route = vec![start];
            for step in 0..6 {
                let nexts = net.next_segments(*route.last().unwrap());
                // habit: always pick the lowest-heading slot, with a little noise
                let pick = if (cur_seed + step).is_multiple_of(5) {
                    nexts.len() - 1
                } else {
                    0
                };
                route.push(nexts[pick]);
            }
            let end = net.midpoint(*route.last().unwrap());
            let (min, max) = net.bounding_box();
            let dest = [
                ((end.x - min.x) / (max.x - min.x)) as f32,
                ((end.y - min.y) / (max.y - min.y)) as f32,
            ];
            if let Some(ex) = Example::new(&net, route, dest, Arc::clone(&tensor), 0) {
                out.push(ex);
            }
        }
        let _ = &mut rng;
        (net, out)
    }

    #[test]
    fn elbo_is_finite_and_loss_positive() {
        let (net, examples) = toy_examples(8, 0);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 0);
        let mut rng = init::rng(1);
        let refs: Vec<&Example> = examples.iter().collect();
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let (loss, stats) = model.batch_loss(&binder, &refs, &mut rng, true);
        assert!(loss.scalar_value().is_finite());
        assert!(stats.kl_pi >= -1e-3, "KL(π) negative: {}", stats.kl_pi);
        assert!(stats.kl_c >= -1e-3, "KL(c) negative: {}", stats.kl_c);
        assert!(stats.route_ll <= 0.0);
        assert!(stats.transitions > 0);
    }

    #[test]
    fn training_reduces_loss() {
        let (net, examples) = toy_examples(60, 3);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 0);
        let mut rng = init::rng(2);
        let tc = TrainConfig {
            epochs: 6,
            batch_size: 20,
            lr: 5e-3,
            patience: None,
            num_threads: 1,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(model, tc);
        let first = trainer.train_epoch(&examples, &mut rng);
        for _ in 0..5 {
            trainer.train_epoch(&examples, &mut rng);
        }
        let last = trainer.model.evaluate_loss(&examples, 20, &mut rng);
        assert!(
            last < first * 0.9,
            "training did not reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn fit_records_history_and_early_stops() {
        let (net, examples) = toy_examples(40, 5);
        let cfg =
            DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8).without_traffic();
        let model = DeepSt::new(cfg, 1);
        let tc = TrainConfig {
            epochs: 4,
            batch_size: 16,
            patience: Some(2),
            num_threads: 1,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(model, tc);
        let mut rng = init::rng(3);
        let hist = trainer.fit(&examples[..30], Some(&examples[30..]), &mut rng);
        assert!(!hist.is_empty() && hist.len() <= 4);
        for h in &hist {
            assert!(h.train_loss.is_finite());
            assert!(h.val_loss.unwrap().is_finite());
            assert!(h.seconds >= 0.0);
        }
    }

    /// The tentpole determinism guarantee: training with 4 worker threads
    /// must produce bit-identical parameters (and BN running stats, checked
    /// via the eval loss) to training with 1, because the shard partition,
    /// per-shard seeds, reduction order and BN-update order are all fixed.
    #[test]
    fn parallel_training_is_bit_identical_to_serial() {
        let (net, examples) = toy_examples(48, 11);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let run = |threads: usize| -> (Vec<u32>, u32) {
            let model = DeepSt::new(cfg.clone(), 9);
            let tc = TrainConfig {
                epochs: 3,
                batch_size: 24,
                shard_size: 8,
                num_threads: threads,
                patience: None,
                ..TrainConfig::default()
            };
            let mut trainer = Trainer::new(model, tc);
            let mut rng = init::rng(13);
            for _ in 0..3 {
                trainer.train_epoch(&examples, &mut rng);
            }
            let bits: Vec<u32> = trainer
                .model
                .params()
                .iter()
                .flat_map(|p| {
                    p.value()
                        .data()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>()
                })
                .collect();
            let mut eval_rng = init::rng(99);
            let eval = trainer.model.evaluate_loss(&examples, 24, &mut eval_rng);
            (bits, eval.to_bits())
        };
        let (serial, serial_eval) = run(1);
        let (parallel, parallel_eval) = run(4);
        assert_eq!(serial.len(), parallel.len());
        let diffs = serial.iter().zip(&parallel).filter(|(a, b)| a != b).count();
        assert_eq!(
            diffs, 0,
            "{diffs} parameter values differ between 1 and 4 threads"
        );
        assert_eq!(
            serial_eval, parallel_eval,
            "eval loss differs (BN stats diverged?)"
        );
    }

    /// `run_shards` caps workers at the host's core count, so on a
    /// single-core machine the test above compares the inline path with
    /// itself. This one forces real worker threads regardless of the host
    /// and checks every shard output bit against the inline path.
    #[test]
    fn forced_worker_threads_match_inline_shards() {
        let (net, examples) = toy_examples(24, 21);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 5);
        let refs: Vec<&Example> = examples.iter().collect();
        let shards: Vec<&[&Example]> = refs.chunks(6).collect();
        let seeds: Vec<u64> = (0..shards.len() as u64)
            .map(|s| s.wrapping_mul(0x9e37) + 7)
            .collect();

        let tape = Tape::new();
        let inline: Vec<_> = shards
            .iter()
            .zip(&seeds)
            .map(|(shard, &seed)| {
                let mut rng = init::rng(seed);
                crate::parallel::run_shard_with_rng(&model, &tape, shard, &mut rng)
            })
            .collect();
        let threaded: Vec<_> = crate::parallel::run_shards_on(&model, &shards, &seeds, 3, None)
            .into_iter()
            .map(|r| r.expect("no faults injected, no shard may fail"))
            .collect();

        assert_eq!(inline.len(), threaded.len());
        for (a, b) in inline.iter().zip(&threaded) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits());
            assert_eq!(a.count, b.count);
            assert_eq!(a.grads.len(), b.grads.len());
            for ((pa, ga), (pb, gb)) in a.grads.iter().zip(&b.grads) {
                assert!(std::ptr::eq(*pa, *pb), "gradient order differs");
                let bits = |arr: &st_tensor::Array| {
                    arr.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                };
                assert_eq!(bits(ga), bits(gb), "gradient bits differ for {}", pa.name());
            }
            assert_eq!(a.bn_updates.len(), b.bn_updates.len());
            for ((ma, va), (mb, vb)) in a.bn_updates.iter().zip(&b.bn_updates) {
                assert_eq!(ma.data(), mb.data());
                assert_eq!(va.data(), vb.data());
            }
        }
    }

    #[test]
    fn deepst_c_has_zero_kl_c() {
        let (net, examples) = toy_examples(6, 7);
        let cfg =
            DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8).without_traffic();
        let model = DeepSt::new(cfg, 2);
        let mut rng = init::rng(4);
        let refs: Vec<&Example> = examples.iter().collect();
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let (_, stats) = model.batch_loss(&binder, &refs, &mut rng, true);
        assert_eq!(stats.kl_c, 0.0);
    }

    /// Acceptance: zero analyzer false positives on both shipped DeepST
    /// configs, and the analysis is fast (< 1 s).
    #[test]
    fn analyzer_clean_on_shipped_deepst_configs() {
        let (net, examples) = toy_examples(16, 11);
        let refs: Vec<&Example> = examples.iter().collect();
        let full = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        for (seed, cfg) in [(0u64, full.clone()), (1, full.without_traffic())] {
            let model = DeepSt::new(cfg, seed);
            let t0 = Instant::now();
            let diags = model.analyze_graph(&refs);
            assert!(
                diags.is_empty(),
                "analyzer false positives on shipped config: {diags:?}"
            );
            assert!(
                t0.elapsed().as_secs_f64() < 1.0,
                "pre-train analysis exceeded 1 s"
            );
        }
    }

    /// Planted defects in the real DeepST training graph: a registered
    /// parameter the forward pass never binds, a detached op subgraph, and a
    /// `ln` over an unclamped input — the analyzer must find all three.
    #[test]
    fn analyzer_flags_planted_defects_in_deepst_graph() {
        use st_tensor::{LintKind, Param};

        struct WithDead<'a> {
            inner: &'a DeepSt,
            dead: Param,
        }
        impl Module for WithDead<'_> {
            fn params(&self) -> Vec<&Param> {
                let mut ps = self.inner.params();
                ps.push(&self.dead);
                ps
            }
        }

        let (net, examples) = toy_examples(8, 12);
        let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
        let model = DeepSt::new(cfg, 3);
        let planted = WithDead {
            inner: &model,
            dead: Param::new("planted.dead", Array::vector(vec![0.0; 4])),
        };
        let refs: Vec<&Example> = examples.iter().collect();
        let mut rng = init::rng(0);
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let (loss, _) = model.batch_loss(&binder, &refs, &mut rng, true);
        // Plant a NaN hazard on the loss path: ln of an unclamped input.
        let hazard = ops::sum_all(ops::ln(binder.input(Array::vector(vec![0.5, 2.0]))));
        let root = ops::add(loss, hazard);
        // Plant a dead subgraph: an op whose result never reaches the loss.
        let _stray = ops::square(binder.input(Array::vector(vec![1.0, 2.0])));
        let diags = analyze_module_graph(&tape, &binder, root.id(), &planted);
        let has = |k: LintKind| diags.iter().any(|d| d.kind == k);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::UnreachableParam
                    && d.message.contains("planted.dead")),
            "missed never-bound parameter: {diags:?}"
        );
        assert!(has(LintKind::DetachedSubgraph), "missed dead op: {diags:?}");
        assert!(has(LintKind::NanHazard), "missed ln hazard: {diags:?}");
        assert_eq!(diags.len(), 3, "unexpected extra findings: {diags:?}");
    }

    /// A mis-shaped input feed is localized by the shape dry-run at the op
    /// that consumes it — planted by corrupting the exported spec's input
    /// leaf, since the eager kernels would refuse to record such a graph.
    #[test]
    fn analyzer_flags_planted_shape_mismatch_in_deepst_spec() {
        use st_tensor::{LintKind, Severity};
        let (net, examples) = toy_examples(8, 13);
        let cfg =
            DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8).without_traffic();
        let model = DeepSt::new(cfg, 4);
        let refs: Vec<&Example> = examples.iter().collect();
        let mut rng = init::rng(0);
        let tape = Tape::new();
        let binder = Binder::new(&tape);
        let (loss, _) = model.batch_loss(&binder, &refs, &mut rng, true);
        let mut spec = tape.export_spec();
        // Node 0 is the destination input leaf `x: [n, 2]`; pretend the
        // caller fed 3-wide coordinates.
        assert_eq!(spec.nodes[0].shape, vec![refs.len(), 2]);
        spec.nodes[0].shape = vec![refs.len(), 3];
        let diags = st_tensor::analyze(
            &spec,
            loss.id(),
            &binder.bound_params(),
            &Default::default(),
        );
        assert!(
            diags
                .iter()
                .any(|d| d.kind == LintKind::ShapeMismatch && d.severity == Severity::Error),
            "dry run missed the planted shape mismatch: {diags:?}"
        );
    }

    /// `fit` runs the analyzer before epoch 0 and records a clean report for
    /// the shipped model.
    #[test]
    fn fit_populates_clean_lint_report() {
        let (net, examples) = toy_examples(8, 14);
        let cfg =
            DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8).without_traffic();
        let tc = TrainConfig {
            epochs: 1,
            batch_size: 8,
            num_threads: 1,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(DeepSt::new(cfg, 5), tc);
        let mut rng = init::rng(6);
        trainer.fit(&examples, None, &mut rng);
        assert!(
            trainer.lint_report.is_empty(),
            "shipped model should lint clean: {:?}",
            trainer.lint_report
        );
    }

    /// `fit_ft` surfaces pre-training analyzer findings as
    /// [`TrainEvent::LintWarning`] (none for the clean shipped model).
    #[test]
    fn fit_ft_emits_no_lint_events_for_clean_model() {
        let (net, examples) = toy_examples(8, 15);
        let cfg =
            DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8).without_traffic();
        let tc = TrainConfig {
            epochs: 1,
            batch_size: 8,
            num_threads: 1,
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(DeepSt::new(cfg, 5), tc);
        let mut rng = init::rng(6);
        let history = trainer.fit_ft(&examples, None, &mut rng, None).unwrap();
        assert!(!history
            .events
            .iter()
            .any(|e| matches!(e, TrainEvent::LintWarning { .. })));
    }
}
