//! `st-core`: the DeepST model — the paper's primary contribution.
//!
//! DeepST (Deep Probabilistic Spatial Transition, ICDE 2020) explains the
//! generation of a route by conditioning on three explanatory factors: the
//! past traveled road sequence (GRU representation, §IV-B), the destination
//! (K-destination proxies learned by an adjoint generative model, §IV-C) and
//! real-time traffic (a latent variable whose posterior is inferred from
//! observed traffic tensors by a CNN, §IV-D). Inference and learning follow
//! the VAE framework with the ELBO of Eq. 7 (Gaussian reparameterization for
//! `c`, Gumbel-Softmax for `π`).
//!
//! - [`config::DeepStConfig`] — hyper-parameters (paper values scaled for CPU).
//! - [`model::DeepSt`] — parameters and forward components.
//! - [`data::Example`] — the observable view of a trip `(r, x, C)`.
//! - [`train::Trainer`] — Algorithm 1 (minibatch ELBO maximization, Adam),
//!   plus the fault-tolerant loop ([`train::Trainer::fit_ft`]).
//! - [`checkpoint`] — crash-safe training checkpoints (save/resume).
//! - [`faultinject`] — deterministic fault injection for tests.
//! - [`predict`] — Algorithm 2 (route generation) and likelihood scoring.
//! - [`cancel`] — cooperative cancellation tokens for decode loops.

pub mod cancel;
pub mod checkpoint;
pub mod config;
pub mod data;
pub mod faultinject;
pub mod livetraffic;
pub mod model;
pub mod parallel;
pub mod predict;
pub mod train;

pub use cancel::CancelToken;
pub use checkpoint::ResumePoint;
pub use config::DeepStConfig;
pub use data::Example;
pub use faultinject::{
    FaultInjector, FaultPlan, FeedFaultPlan, ServeFaultInjector, ServeFaultPlan,
};
pub use livetraffic::{
    ApplyOutcome, TrafficCache, TrafficEvent, TrafficEventKind, VersionedTraffic,
};
pub use model::{DeepSt, EmbMemory};
pub use predict::{InferPrecision, InferSession, MultiTripSession, TripContext};
pub use train::{
    ElboStats, EpochStats, TrainConfig, TrainError, TrainEvent, TrainHistory, Trainer,
};
