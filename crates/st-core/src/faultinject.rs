//! Deterministic fault injection for exercising the fault-tolerance paths.
//!
//! Training-side faults (NaN losses, worker panics, simulated crashes) are
//! described by a [`FaultPlan`] — explicit `(epoch, batch[, shard])`
//! coordinates, optionally drawn from a seed via [`FaultPlan::random`] — and
//! armed by wrapping the plan in a [`FaultInjector`]. Each fault fires
//! exactly once: the injector removes a coordinate when it fires, so a
//! rolled-back epoch replays cleanly and a recovery path can be asserted to
//! actually recover. The harness is config-gated: production code paths take
//! `Option<&FaultInjector>` and `None` (the default everywhere) makes every
//! check a no-op.
//!
//! Storage-side faults (truncated checkpoints, bit flips, interrupted
//! writes) are plain file-mangling helpers intended for tests.
//!
//! Everything is deterministic: coordinates are data, [`FaultPlan::random`]
//! derives them from a caller-provided seed, and nothing consults wall-clock
//! time or OS randomness.

use std::collections::HashSet;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where and which faults to inject, as explicit coordinates.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Poison the loss of these `(epoch, batch)` minibatches with NaN after
    /// the forward/backward pass, driving the divergence-rollback path.
    pub nan_loss_at: Vec<(usize, usize)>,
    /// Panic inside the worker running shard `s` of `(epoch, batch, s)`,
    /// driving the containment-and-retry path.
    pub panic_at: Vec<(usize, usize, usize)>,
    /// Abort training (simulating a `SIGKILL` mid-epoch) when reaching this
    /// `(epoch, batch)`, driving the checkpoint/resume path.
    pub crash_at: Option<(usize, usize)>,
}

impl FaultPlan {
    /// Draw a plan from `seed`: each of the first `epochs × batches`
    /// minibatch coordinates gets a NaN loss with probability `nan_rate`
    /// and a shard-0 worker panic with probability `panic_rate`.
    pub fn random(
        seed: u64,
        epochs: usize,
        batches: usize,
        nan_rate: f64,
        panic_rate: f64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::default();
        for e in 0..epochs {
            for b in 0..batches {
                if rng.gen_bool(nan_rate) {
                    plan.nan_loss_at.push((e, b));
                }
                if rng.gen_bool(panic_rate) {
                    plan.panic_at.push((e, b, 0));
                }
            }
        }
        plan
    }
}

/// An armed [`FaultPlan`]. Thread-safe (workers consult it concurrently);
/// every fault fires at most once.
#[derive(Debug)]
pub struct FaultInjector {
    nan_loss: Mutex<HashSet<(usize, usize)>>,
    panics: Mutex<HashSet<(usize, usize, usize)>>,
    crash: Mutex<Option<(usize, usize)>>,
    fired: Mutex<Vec<String>>,
}

impl FaultInjector {
    /// Arm a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            nan_loss: Mutex::new(plan.nan_loss_at.into_iter().collect()),
            panics: Mutex::new(plan.panic_at.into_iter().collect()),
            crash: Mutex::new(plan.crash_at),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// Should minibatch `(epoch, batch)`'s loss be poisoned? Consumes the
    /// fault.
    pub fn take_nan_loss(&self, epoch: usize, batch: usize) -> bool {
        let hit = self
            .nan_loss
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(epoch, batch));
        if hit {
            self.record(format!("nan_loss epoch={epoch} batch={batch}"));
        }
        hit
    }

    /// Should the worker running `(epoch, batch, shard)` panic? Consumes the
    /// fault.
    pub fn take_panic(&self, epoch: usize, batch: usize, shard: usize) -> bool {
        let hit = self
            .panics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(epoch, batch, shard));
        if hit {
            self.record(format!(
                "worker_panic epoch={epoch} batch={batch} shard={shard}"
            ));
        }
        hit
    }

    /// Should training abort (simulated kill) at `(epoch, batch)`? Consumes
    /// the fault.
    pub fn take_crash(&self, epoch: usize, batch: usize) -> bool {
        let mut crash = self.crash.lock().unwrap_or_else(|e| e.into_inner());
        if *crash == Some((epoch, batch)) {
            *crash = None;
            drop(crash);
            self.record(format!("crash epoch={epoch} batch={batch}"));
            return true;
        }
        false
    }

    /// Human-readable log of every fault that fired, in firing order.
    pub fn fired(&self) -> Vec<String> {
        self.fired.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of planned faults that have not fired yet.
    pub fn pending(&self) -> usize {
        self.nan_loss
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
            + self.panics.lock().unwrap_or_else(|e| e.into_inner()).len()
            + usize::from(
                self.crash
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_some(),
            )
    }

    fn record(&self, msg: String) {
        self.fired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(msg);
    }
}

// ---------------------------------------------------------------------------
// serving faults
// ---------------------------------------------------------------------------

/// Faults for the serving chaos harness, addressed by a worker's global
/// *scheduler-tick* counter (each tick is one coalesced batched step across
/// every in-flight request). Deterministic like [`FaultPlan`]: coordinates
/// are data, and [`ServeFaultPlan::random`] derives them from a seed.
#[derive(Debug, Clone, Default)]
pub struct ServeFaultPlan {
    /// Sleep `slow_ms` inside these ticks before stepping, simulating a
    /// stalled kernel / noisy neighbor — drives mid-decode deadline expiry.
    pub slow_at: Vec<u64>,
    /// Milliseconds each slow tick sleeps.
    pub slow_ms: u64,
    /// Panic inside these ticks (after stepping begins), driving the worker
    /// containment-and-rebuild path.
    pub panic_at: Vec<u64>,
    /// Poison the step's log-probabilities with NaN at these ticks,
    /// simulating a corrupted session — drives the typed transient-fault
    /// retry path.
    pub poison_at: Vec<u64>,
}

impl ServeFaultPlan {
    /// Draw a plan from `seed` over the first `ticks` scheduler ticks: each
    /// tick independently goes slow / panics / is poisoned with the given
    /// rates.
    pub fn random(
        seed: u64,
        ticks: u64,
        slow_rate: f64,
        panic_rate: f64,
        poison_rate: f64,
        slow_ms: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = ServeFaultPlan {
            slow_ms,
            ..Self::default()
        };
        for t in 0..ticks {
            if rng.gen_bool(slow_rate) {
                plan.slow_at.push(t);
            }
            if rng.gen_bool(panic_rate) {
                plan.panic_at.push(t);
            }
            if rng.gen_bool(poison_rate) {
                plan.poison_at.push(t);
            }
        }
        plan
    }
}

/// An armed [`ServeFaultPlan`]. Thread-safe; every fault fires at most once
/// (so a retried request replays cleanly and recovery can be asserted to
/// actually recover).
#[derive(Debug)]
pub struct ServeFaultInjector {
    slow: Mutex<HashSet<u64>>,
    slow_ms: u64,
    panics: Mutex<HashSet<u64>>,
    poisons: Mutex<HashSet<u64>>,
    fired: Mutex<Vec<String>>,
}

impl ServeFaultInjector {
    /// Arm a plan.
    pub fn new(plan: ServeFaultPlan) -> Self {
        Self {
            slow: Mutex::new(plan.slow_at.into_iter().collect()),
            slow_ms: plan.slow_ms,
            panics: Mutex::new(plan.panic_at.into_iter().collect()),
            poisons: Mutex::new(plan.poison_at.into_iter().collect()),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// Milliseconds a slow tick should stall, if tick `tick` was planned
    /// slow. Consumes the fault. The caller performs the sleep so the
    /// injector itself stays time-free.
    pub fn take_slow(&self, tick: u64) -> Option<u64> {
        let hit = self
            .slow
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&tick);
        if hit {
            self.record(format!("slow_step tick={tick} ms={}", self.slow_ms));
            return Some(self.slow_ms);
        }
        None
    }

    /// Should the worker panic inside tick `tick`? Consumes the fault.
    pub fn take_panic(&self, tick: u64) -> bool {
        let hit = self
            .panics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&tick);
        if hit {
            self.record(format!("worker_panic tick={tick}"));
        }
        hit
    }

    /// Should tick `tick`'s step output be poisoned with NaN? Consumes the
    /// fault.
    pub fn take_poison(&self, tick: u64) -> bool {
        let hit = self
            .poisons
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&tick);
        if hit {
            self.record(format!("poisoned_step tick={tick}"));
        }
        hit
    }

    /// Human-readable log of every fault that fired, in firing order.
    pub fn fired(&self) -> Vec<String> {
        self.fired.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of planned faults that have not fired yet.
    pub fn pending(&self) -> usize {
        self.slow.lock().unwrap_or_else(|e| e.into_inner()).len()
            + self.panics.lock().unwrap_or_else(|e| e.into_inner()).len()
            + self.poisons.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn record(&self, msg: String) {
        self.fired
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(msg);
    }
}

// ---------------------------------------------------------------------------
// feed faults
// ---------------------------------------------------------------------------

use crate::livetraffic::{TrafficEvent, TrafficEventKind};

/// Delivery faults for a live-traffic event stream, as positions in the
/// clean (producer-ordered) stream. Deterministic like the other plans:
/// coordinates are data and [`FeedFaultPlan::random`] derives them from a
/// seed. Applied with [`FeedFaultPlan::mangle`], which turns a clean stream
/// into one with redeliveries, adjacent reorderings, and past-horizon
/// stragglers — exactly the faults `VersionedTraffic::apply` must absorb
/// without diverging from the clean stream's final state.
#[derive(Debug, Clone, Default)]
pub struct FeedFaultPlan {
    /// Redeliver the event at these clean-stream indices immediately after
    /// its first delivery (at-least-once transport).
    pub duplicate_at: Vec<usize>,
    /// Swap the events at index `i` and `i + 1` (late/out-of-order
    /// delivery). Out-of-bounds or overlapping indices are ignored.
    pub swap_at: Vec<usize>,
    /// Insert a synthetic event addressing a slot beyond the horizon after
    /// these indices (a feed that ran past the simulated world).
    pub past_horizon_at: Vec<usize>,
}

impl FeedFaultPlan {
    /// Draw a plan from `seed` over a stream of `events` events: each
    /// position independently duplicates / swaps-with-next / grows a
    /// past-horizon straggler with the given rates.
    pub fn random(
        seed: u64,
        events: usize,
        duplicate_rate: f64,
        swap_rate: f64,
        past_horizon_rate: f64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED_FA17);
        let mut plan = FeedFaultPlan::default();
        for i in 0..events {
            if rng.gen_bool(duplicate_rate) {
                plan.duplicate_at.push(i);
            }
            if rng.gen_bool(swap_rate) {
                plan.swap_at.push(i);
            }
            if rng.gen_bool(past_horizon_rate) {
                plan.past_horizon_at.push(i);
            }
        }
        plan
    }

    /// Apply the plan to a clean stream, producing the faulty delivery
    /// order. `horizon_slots` sizes the synthetic past-horizon events'
    /// slots (they address `horizon_slots + k`). Pure and deterministic:
    /// the same plan and stream always produce the same mangled stream.
    pub fn mangle(&self, clean: &[TrafficEvent], horizon_slots: usize) -> Vec<TrafficEvent> {
        let mut stream: Vec<TrafficEvent> = clean.to_vec();
        // Adjacent swaps first (skip overlapping pairs so each swap is a
        // genuine reorder of the clean stream, not a rotation).
        let mut swapped_next = false;
        for i in 0..stream.len().saturating_sub(1) {
            if swapped_next {
                swapped_next = false;
                continue;
            }
            if self.swap_at.contains(&i) {
                stream.swap(i, i + 1);
                swapped_next = true;
            }
        }
        // Then weave in duplicates and past-horizon stragglers.
        let mut out = Vec::with_capacity(stream.len() + self.duplicate_at.len());
        for (i, ev) in stream.into_iter().enumerate() {
            let dup = self.duplicate_at.contains(&i);
            let past = self.past_horizon_at.contains(&i);
            out.push(ev);
            if dup {
                let again = out[out.len() - 1].clone();
                out.push(again);
            }
            if past {
                let t = out[out.len() - 1].time;
                out.push(TrafficEvent {
                    // Distinct seq space so a straggler can never be taken
                    // for a duplicate of a real event.
                    seq: u64::MAX - i as u64,
                    time: t,
                    slot: horizon_slots + (i % 3),
                    kind: TrafficEventKind::Observation,
                    tensor: Vec::new(),
                });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// storage faults
// ---------------------------------------------------------------------------

/// Truncate the file at `path` to its first `keep` bytes (no-op if already
/// shorter). Models a crash mid-write on a non-atomic writer.
pub fn truncate_file(path: impl AsRef<Path>, keep: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    if f.metadata()?.len() > keep {
        f.set_len(keep)?;
    }
    Ok(())
}

/// XOR one byte of the file at `path` with `mask` (must be nonzero to
/// actually corrupt). Models media bit rot.
pub fn flip_byte(path: impl AsRef<Path>, offset: usize, mask: u8) -> io::Result<()> {
    assert!(mask != 0, "mask 0 would be a no-op");
    let path = path.as_ref();
    let mut bytes = std::fs::read(path)?;
    if offset >= bytes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("offset {offset} beyond file of {} bytes", bytes.len()),
        ));
    }
    bytes[offset] ^= mask;
    std::fs::write(path, bytes)
}

/// Simulate a write to `path` that was interrupted before the atomic rename:
/// leaves a stray `path.tmp` holding the first `keep` bytes of `content` and
/// does NOT touch `path` itself. A correct loader must ignore the stray tmp
/// and read (or report missing) the real file.
pub fn interrupted_write(path: impl AsRef<Path>, content: &[u8], keep: usize) -> io::Result<()> {
    let mut tmp = path.as_ref().as_os_str().to_owned();
    tmp.push(".tmp");
    std::fs::write(tmp, &content[..keep.min(content.len())])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once() {
        let inj = FaultInjector::new(FaultPlan {
            nan_loss_at: vec![(1, 2)],
            panic_at: vec![(0, 0, 3)],
            crash_at: Some((2, 0)),
        });
        assert_eq!(inj.pending(), 3);
        assert!(!inj.take_nan_loss(0, 0));
        assert!(inj.take_nan_loss(1, 2));
        assert!(!inj.take_nan_loss(1, 2), "nan fault fired twice");
        assert!(inj.take_panic(0, 0, 3));
        assert!(!inj.take_panic(0, 0, 3), "panic fault fired twice");
        assert!(!inj.take_crash(2, 1));
        assert!(inj.take_crash(2, 0));
        assert!(!inj.take_crash(2, 0), "crash fault fired twice");
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.fired().len(), 3);
    }

    #[test]
    fn serve_faults_fire_exactly_once() {
        let inj = ServeFaultInjector::new(ServeFaultPlan {
            slow_at: vec![3],
            slow_ms: 25,
            panic_at: vec![5],
            poison_at: vec![7],
        });
        assert_eq!(inj.pending(), 3);
        assert_eq!(inj.take_slow(2), None);
        assert_eq!(inj.take_slow(3), Some(25));
        assert_eq!(inj.take_slow(3), None, "slow fault fired twice");
        assert!(!inj.take_panic(3));
        assert!(inj.take_panic(5));
        assert!(!inj.take_panic(5), "panic fault fired twice");
        assert!(inj.take_poison(7));
        assert!(!inj.take_poison(7), "poison fault fired twice");
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.fired().len(), 3);
    }

    #[test]
    fn serve_plans_are_deterministic_per_seed() {
        let a = ServeFaultPlan::random(11, 200, 0.1, 0.05, 0.05, 10);
        let b = ServeFaultPlan::random(11, 200, 0.1, 0.05, 0.05, 10);
        assert_eq!(a.slow_at, b.slow_at);
        assert_eq!(a.panic_at, b.panic_at);
        assert_eq!(a.poison_at, b.poison_at);
        assert!(
            !a.slow_at.is_empty(),
            "rate 0.1 over 200 ticks drew nothing"
        );
        let c = ServeFaultPlan::random(12, 200, 0.1, 0.05, 0.05, 10);
        assert!(a.slow_at != c.slow_at || a.panic_at != c.panic_at);
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(7, 4, 10, 0.3, 0.3);
        let b = FaultPlan::random(7, 4, 10, 0.3, 0.3);
        let c = FaultPlan::random(8, 4, 10, 0.3, 0.3);
        assert_eq!(a.nan_loss_at, b.nan_loss_at);
        assert_eq!(a.panic_at, b.panic_at);
        assert!(a.nan_loss_at != c.nan_loss_at || a.panic_at != c.panic_at);
        assert!(
            !a.nan_loss_at.is_empty(),
            "rate 0.3 over 40 cells drew nothing"
        );
    }

    #[test]
    fn feed_plans_are_deterministic_per_seed() {
        let a = FeedFaultPlan::random(3, 100, 0.2, 0.2, 0.1);
        let b = FeedFaultPlan::random(3, 100, 0.2, 0.2, 0.1);
        assert_eq!(a.duplicate_at, b.duplicate_at);
        assert_eq!(a.swap_at, b.swap_at);
        assert_eq!(a.past_horizon_at, b.past_horizon_at);
        assert!(!a.duplicate_at.is_empty(), "rate 0.2 over 100 drew nothing");
        let c = FeedFaultPlan::random(4, 100, 0.2, 0.2, 0.1);
        assert!(a.duplicate_at != c.duplicate_at || a.swap_at != c.swap_at);
    }

    fn feed_ev(seq: u64, slot: usize, fill: f32) -> TrafficEvent {
        TrafficEvent {
            seq,
            time: seq as f64,
            slot,
            kind: TrafficEventKind::Observation,
            tensor: vec![fill; 3],
        }
    }

    #[test]
    fn mangle_produces_duplicates_swaps_and_stragglers() {
        let clean: Vec<TrafficEvent> = (0..6).map(|i| feed_ev(i as u64, i % 3, i as f32)).collect();
        let plan = FeedFaultPlan {
            duplicate_at: vec![2],
            swap_at: vec![0],
            past_horizon_at: vec![5],
        };
        let mangled = plan.mangle(&clean, 10);
        assert_eq!(mangled.len(), clean.len() + 2);
        // Swap of indices 0 and 1.
        assert_eq!(mangled[0].seq, 1);
        assert_eq!(mangled[1].seq, 0);
        // Duplicate right after index 2.
        assert_eq!(mangled[2].seq, mangled[3].seq);
        // Past-horizon straggler at the end addresses a slot beyond 10.
        assert!(mangled.last().is_some_and(|e| e.slot >= 10));
    }

    /// The load-bearing property: a mangled delivery (duplicates,
    /// reorderings, past-horizon stragglers) applied to `VersionedTraffic`
    /// converges to the same per-slot state as the clean stream.
    #[test]
    fn mangled_feed_converges_to_clean_state() {
        use crate::livetraffic::VersionedTraffic;
        let horizon = 8usize;
        let clean: Vec<TrafficEvent> = (0..40)
            .map(|i| feed_ev(i as u64, (i * 7) % horizon, i as f32 * 0.1))
            .collect();
        let plan = FeedFaultPlan::random(17, clean.len(), 0.15, 0.2, 0.1);
        let mangled = plan.mangle(&clean, horizon);
        assert!(mangled.len() > clean.len(), "plan drew no faults");

        let mut a = VersionedTraffic::with_horizon(horizon);
        for ev in &clean {
            let _ = a.apply(ev);
        }
        let mut b = VersionedTraffic::with_horizon(horizon);
        let mut rejected = 0usize;
        for ev in &mangled {
            if !b.apply(ev).is_applied() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "no fault was actually delivered");
        for slot in 0..horizon {
            assert_eq!(a.tensor(slot), b.tensor(slot), "slot {slot} diverged");
            assert_eq!(a.last_seq(slot), b.last_seq(slot), "slot {slot} seq");
        }
        assert_eq!(a.touched_slots(), b.touched_slots());
    }

    #[test]
    fn storage_faults_mangle_files() {
        let dir = std::env::temp_dir().join(format!("st_faultinject_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::write(&path, b"hello world").unwrap();

        truncate_file(&path, 5).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");

        flip_byte(&path, 0, 0xff).unwrap();
        assert_eq!(std::fs::read(&path).unwrap()[0], b'h' ^ 0xff);
        assert!(flip_byte(&path, 999, 1).is_err());

        interrupted_write(&path, b"next version", 4).unwrap();
        // Real file untouched, stray tmp holds the partial write.
        assert_eq!(std::fs::read(&path).unwrap().len(), 5);
        assert_eq!(std::fs::read(dir.join("f.bin.tmp")).unwrap(), b"next");
        let _ = std::fs::remove_dir_all(dir);
    }
}
