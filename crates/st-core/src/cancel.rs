//! Cooperative cancellation for long-running decode loops.
//!
//! A [`CancelToken`] is a cheap, cloneable flag checked *between* decode
//! steps: the holder of a clone calls [`CancelToken::cancel`] (or arms a
//! deadline with [`CancelToken::with_deadline`]), and a cooperating loop
//! polls [`CancelToken::is_cancelled`] at its step boundary, so a cancelled
//! decode returns within one model step rather than running to the length
//! cap. Checking an un-armed token is one relaxed atomic load; the deadline
//! variant additionally reads the monotonic clock.
//!
//! This is the hook `st-serve` uses to make per-request deadlines fire
//! mid-decode instead of only between requests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cloneable cancellation flag with an optional deadline.
///
/// All clones share one flag: cancelling any clone cancels them all. The
/// token never resets — it represents one request's lifetime.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh token that only cancels when [`CancelToken::cancel`] is
    /// called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally reports cancelled once the monotonic clock
    /// passes `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Trip the flag: every clone of this token reports cancelled from now
    /// on. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has the token been cancelled (explicitly or by its deadline)?
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_live_and_cancel_is_shared() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled(), "clones must share the flag");
        // idempotent
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_token_fires_on_its_own() {
        let past = Instant::now() - Duration::from_millis(1);
        let t = CancelToken::with_deadline(past);
        assert!(t.is_cancelled(), "past deadline must read cancelled");
        let future = Instant::now() + Duration::from_secs(3600);
        let t = CancelToken::with_deadline(future);
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), Some(future));
        t.cancel();
        assert!(t.is_cancelled(), "explicit cancel overrides the deadline");
    }
}
