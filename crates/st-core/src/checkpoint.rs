//! Trainer-level crash-safe checkpoints.
//!
//! Bridges the generic v2 checkpoint format in [`st_nn::serialize`] to the
//! concrete training stack: a file written by [`save_training`] carries the
//! [`DeepSt`] parameters and batch-norm buffers, the full Adam optimizer
//! state, the epoch RNG state, and the trainer's progress counters —
//! everything needed for [`load_training`] to continue the run
//! *bit-identically*, as if the interruption never happened.
//!
//! Writes are atomic and checksummed (see [`st_nn::serialize::save_v2`]);
//! loads never panic on corrupt input.

use std::path::Path;

use rand::rngs::StdRng;

use st_nn::serialize::{self, CheckpointError, TrainStateRecord};
use st_tensor::optim::Adam;

use crate::model::DeepSt;

/// Trainer progress carried by a checkpoint besides tensors and RNG state.
#[derive(Debug, Clone, Copy)]
pub struct ResumePoint {
    /// Epochs fully completed (training continues at this epoch index).
    pub epoch: usize,
    /// Optimizer steps taken so far.
    pub step: u64,
    /// Divergence rollbacks performed so far.
    pub rollbacks: u32,
    /// Consecutive epochs without validation improvement.
    pub bad_epochs: usize,
    /// Best validation loss seen (`f32::INFINITY` when none yet).
    pub best_val: f32,
}

/// Write a complete training checkpoint to `path` (atomic, checksummed).
pub fn save_training(
    path: impl AsRef<Path>,
    model: &DeepSt,
    opt: &Adam,
    rng: &StdRng,
    rp: &ResumePoint,
) -> Result<(), CheckpointError> {
    let train = TrainStateRecord {
        epoch: rp.epoch as u64,
        step: rp.step,
        lr_rollbacks: rp.rollbacks,
        bad_epochs: rp.bad_epochs as u32,
        // Vendored JSON renders non-finite floats as null; keep the "no
        // finite validation loss yet" sentinel out of the payload entirely.
        best_val: rp.best_val.is_finite().then_some(rp.best_val),
        rng: serialize::encode_u64_words(&rng.state()),
    };
    let opt_state = opt.export_state();
    let ckpt = serialize::checkpoint_v2(model, Some(&opt_state), Some(train));
    serialize::save_v2(path, &ckpt)
}

/// Load a checkpoint written by [`save_training`] into `model`, `opt`, and
/// `rng`, returning the progress counters. On error the targets may be
/// partially updated; callers should treat any error as "cannot resume"
/// and start from fresh state.
pub fn load_training(
    path: impl AsRef<Path>,
    model: &DeepSt,
    opt: &mut Adam,
    rng: &mut StdRng,
) -> Result<ResumePoint, CheckpointError> {
    let ckpt = serialize::load_v2(path)?;
    serialize::restore_v2(model, &ckpt)?;
    let opt_rec = ckpt
        .opt
        .as_ref()
        .ok_or_else(|| CheckpointError::Corrupt("missing optimizer state".into()))?;
    opt.import_state(opt_rec.to_adam()?)
        .map_err(CheckpointError::Corrupt)?;
    let t = ckpt
        .train
        .as_ref()
        .ok_or_else(|| CheckpointError::Corrupt("missing training state".into()))?;
    let words = serialize::decode_u64_words(&t.rng)?;
    let state: [u64; 4] = words.as_slice().try_into().map_err(|_| {
        CheckpointError::Corrupt(format!("rng state has {} words, expected 4", words.len()))
    })?;
    if state == [0, 0, 0, 0] {
        return Err(CheckpointError::Corrupt("all-zero rng state".into()));
    }
    *rng = StdRng::from_state(state);
    Ok(ResumePoint {
        epoch: t.epoch as usize,
        step: t.step,
        rollbacks: t.lr_rollbacks,
        bad_epochs: t.bad_epochs as usize,
        best_val: t.best_val.unwrap_or(f32::INFINITY),
    })
}
