//! Live-traffic state: versioned per-slot tensors and a version-keyed
//! encoding cache with *targeted* invalidation.
//!
//! The paper's load-bearing signal is real-time traffic (§I: a congested
//! street the driver detours around). A long-running service therefore
//! cannot treat a slot's traffic tensor as immutable: a live incident, a
//! road closure, or a day-boundary wrap revises the tensor of a slot that
//! was already observed — and any per-slot encoding cached under `slot_id`
//! alone silently serves a stale `C` from then on.
//!
//! This module makes that staleness structurally impossible:
//!
//! - [`TrafficEvent`] — a timestamped, sequence-numbered revision of one
//!   slot's observed tensor, as emitted by the simulator's feed
//!   (`st-sim::feed::TrafficFeed`) or a real ingest endpoint.
//! - [`VersionedTraffic`] — the authoritative mutable state: per-slot
//!   tensors with a **monotonic version** that bumps on every applied
//!   change. Application is idempotent (duplicate events are no-ops) and
//!   per-slot ordered (an out-of-order older event never overwrites newer
//!   state), so at-least-once delivery over a lossy transport converges.
//!   Past-horizon events are rejected with a typed outcome instead of
//!   silently clamping.
//! - [`TrafficCache`] — a bounded LRU of per-slot *encodings* keyed by
//!   `(slot, version)`. A version bump evicts exactly the changed slot —
//!   never a full flush — observable via the
//!   `predict.traffic_cache.{hit,miss,invalidate}` counters.
//!
//! Feed-application outcomes are observable via the
//! `traffic.feed.{applied,duplicate,out_of_order,past_horizon}` counters.
//!
//! See DESIGN.md §15 for the streaming architecture.

use std::collections::BTreeMap;

use st_tensor::Array;

/// What kind of ground-truth change produced a [`TrafficEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficEventKind {
    /// A fresh fleet observation of the slot (periodic sensing).
    Observation,
    /// A street-level incident (accident, sudden congestion) revised the
    /// slot's observed speeds.
    Incident,
    /// A temporary closure of `segment` — a graph edit. The revised tensor
    /// reflects near-zero observed speed around the segment; the closed-set
    /// is additionally tracked in [`VersionedTraffic::closed_segments`].
    Closure {
        /// The closed road segment.
        segment: usize,
    },
}

/// One timestamped revision of a traffic slot's observed tensor.
#[derive(Debug, Clone)]
pub struct TrafficEvent {
    /// Feed sequence number: strictly increasing at the producer. The
    /// idempotence key — a redelivered `seq` is a no-op, and a `seq` older
    /// than the slot's last applied one is rejected as out-of-order.
    pub seq: u64,
    /// Simulation time (s) the revision takes effect.
    pub time: f64,
    /// The traffic slot whose tensor this event revises.
    pub slot: usize,
    /// What caused the revision.
    pub kind: TrafficEventKind,
    /// The revised observed tensor (`[grid_h × grid_w]`, row-major).
    pub tensor: Vec<f32>,
}

/// Typed outcome of applying a [`TrafficEvent`] to [`VersionedTraffic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The event revised `slot`; the state's monotonic version is now
    /// `version` and stale cached encodings of `slot` must be discarded.
    Applied {
        /// The revised slot.
        slot: usize,
        /// The state's new global version (also the slot's version).
        version: u64,
    },
    /// The event's `seq` was already applied to its slot (redelivery).
    Duplicate,
    /// An event with a newer `seq` was already applied to the slot; this
    /// older revision is obsolete and must not overwrite it.
    OutOfOrder,
    /// The event's slot lies beyond the configured horizon — the feed ran
    /// past the simulated world. Rejected loudly instead of clamped.
    PastHorizon,
}

impl ApplyOutcome {
    /// Whether the event changed the state.
    pub fn is_applied(&self) -> bool {
        matches!(self, ApplyOutcome::Applied { .. })
    }
}

/// Per-slot applied state.
#[derive(Debug, Clone)]
struct SlotState {
    /// Global version at which this slot was last revised.
    version: u64,
    /// Sequence number of the last applied event for this slot.
    last_seq: u64,
    /// The slot's current tensor.
    tensor: Vec<f32>,
}

/// Authoritative live-traffic state: per-slot tensors with a monotonic
/// version, idempotent per-slot-ordered event application, and typed
/// rejection of past-horizon events.
///
/// All collections are `BTreeMap`-backed so iteration (and therefore any
/// derived output) is deterministic, per st-lint's `hash-iteration-order`
/// rule.
#[derive(Debug, Default)]
pub struct VersionedTraffic {
    /// Monotonic global version; bumps once per applied event.
    version: u64,
    /// `None` = unbounded (no horizon check).
    horizon_slots: Option<usize>,
    slots: BTreeMap<usize, SlotState>,
    /// Segments under a closure event, keyed by segment with the highest
    /// closure seq seen. Closures are graph edits — monotone facts — so they
    /// register independently of per-slot tensor ordering: a closure swapped
    /// behind a later same-slot event must not be lost.
    closed: BTreeMap<usize, u64>,
}

impl VersionedTraffic {
    /// Empty state with no horizon bound (any slot id accepted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty state rejecting events whose slot is `>= horizon_slots` with
    /// [`ApplyOutcome::PastHorizon`].
    pub fn with_horizon(horizon_slots: usize) -> Self {
        Self {
            horizon_slots: Some(horizon_slots),
            ..Self::default()
        }
    }

    /// The global monotonic version (0 until the first applied event).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The version at which `slot` was last revised, or 0 if the feed has
    /// never touched it (so a feed-less deployment keys its cache at 0 and
    /// behaves exactly like the pre-streaming system).
    pub fn slot_version(&self, slot: usize) -> u64 {
        self.slots.get(&slot).map_or(0, |s| s.version)
    }

    /// The live tensor for `slot`, if the feed has revised it.
    pub fn tensor(&self, slot: usize) -> Option<&[f32]> {
        self.slots.get(&slot).map(|s| s.tensor.as_slice())
    }

    /// Sequence number of the last event applied to `slot`, or `None` if
    /// untouched.
    pub fn last_seq(&self, slot: usize) -> Option<u64> {
        self.slots.get(&slot).map(|s| s.last_seq)
    }

    /// Number of slots the feed has revised.
    pub fn touched_slots(&self) -> usize {
        self.slots.len()
    }

    /// Segments currently closed by a [`TrafficEventKind::Closure`] event,
    /// in ascending segment order.
    pub fn closed_segments(&self) -> Vec<usize> {
        self.closed.keys().copied().collect()
    }

    /// Apply one feed event. Returns a typed outcome; every rejection is
    /// also counted (`traffic.feed.*`) so a misbehaving feed is visible.
    pub fn apply(&mut self, ev: &TrafficEvent) -> ApplyOutcome {
        if let Some(h) = self.horizon_slots {
            if ev.slot >= h {
                st_obs::counter("traffic.feed.past_horizon").inc();
                return ApplyOutcome::PastHorizon;
            }
        }
        // Closure facts register before the per-slot ordering check: a
        // closure reordered behind a later same-slot tensor update is stale
        // *as a tensor* but still a real graph edit. Guarded by its own seq
        // per segment, so duplicates and reorderings stay idempotent.
        if let TrafficEventKind::Closure { segment } = ev.kind {
            let high = self.closed.entry(segment).or_insert(ev.seq);
            if ev.seq > *high {
                *high = ev.seq;
            }
        }
        if let Some(state) = self.slots.get(&ev.slot) {
            if ev.seq == state.last_seq {
                st_obs::counter("traffic.feed.duplicate").inc();
                return ApplyOutcome::Duplicate;
            }
            if ev.seq < state.last_seq {
                st_obs::counter("traffic.feed.out_of_order").inc();
                return ApplyOutcome::OutOfOrder;
            }
        }
        self.version += 1;
        self.slots.insert(
            ev.slot,
            SlotState {
                version: self.version,
                last_seq: ev.seq,
                tensor: ev.tensor.clone(),
            },
        );
        st_obs::counter("traffic.feed.applied").inc();
        ApplyOutcome::Applied {
            slot: ev.slot,
            version: self.version,
        }
    }
}

/// One cached slot encoding.
#[derive(Debug)]
struct CacheEntry {
    /// Slot version the encoding was computed at.
    version: u64,
    /// Recency stamp (monotonic per-cache tick); smallest = LRU victim.
    used: u64,
    /// The encoded traffic latent `C`.
    enc: Array,
}

/// Bounded LRU of per-slot traffic *encodings*, keyed by slot with the
/// slot's [`VersionedTraffic`] version as part of the logical key.
///
/// Lookup is `O(log n)` via `BTreeMap` (replacing the previous `O(cap)`
/// linear scan per lookup); eviction scans for the least-recently-used
/// entry only when the cache is full (rare, and `cap` is small). LRU order
/// is exact: every hit refreshes the entry's recency stamp.
///
/// Invalidation is **targeted**: a version mismatch evicts exactly the
/// changed slot's entry (counted as `predict.traffic_cache.invalidate`);
/// other slots' encodings are untouched — never a full flush.
#[derive(Debug)]
pub struct TrafficCache {
    cap: usize,
    tick: u64,
    entries: BTreeMap<usize, CacheEntry>,
}

impl TrafficCache {
    /// An empty cache holding at most `cap` encodings.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "traffic cache capacity must be at least 1");
        Self {
            cap,
            tick: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Number of cached encodings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The version the cached encoding of `slot` was computed at, if cached.
    pub fn cached_version(&self, slot: usize) -> Option<u64> {
        self.entries.get(&slot).map(|e| e.version)
    }

    /// Look up the encoding of `slot` at `version`, encoding (and caching)
    /// on miss. A cached entry at a *different* version is evicted first
    /// (targeted invalidation) and re-encoded.
    pub fn get_or_encode(
        &mut self,
        slot: usize,
        version: u64,
        encode: impl FnOnce() -> Array,
    ) -> Array {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&slot) {
            if e.version == version {
                st_obs::counter("predict.traffic_cache.hit").inc();
                e.used = self.tick;
                return e.enc.clone();
            }
            // Stale: the slot's tensor changed under us. Evict exactly this
            // entry and fall through to a fresh encode.
            st_obs::counter("predict.traffic_cache.invalidate").inc();
            self.entries.remove(&slot);
        }
        st_obs::counter("predict.traffic_cache.miss").inc();
        let enc = encode();
        if self.entries.len() >= self.cap {
            self.evict_lru();
        }
        self.entries.insert(
            slot,
            CacheEntry {
                version,
                used: self.tick,
                enc: enc.clone(),
            },
        );
        enc
    }

    /// Eagerly evict `slot`'s entry if it is older than `version` (called on
    /// feed ingest so the stale encoding doesn't linger until next lookup).
    /// Returns whether an entry was evicted; counted as an invalidation.
    pub fn invalidate_stale(&mut self, slot: usize, version: u64) -> bool {
        let stale = self.entries.get(&slot).is_some_and(|e| e.version < version);
        if stale {
            st_obs::counter("predict.traffic_cache.invalidate").inc();
            self.entries.remove(&slot);
        }
        stale
    }

    fn evict_lru(&mut self) {
        // BTreeMap iteration is ordered by slot id, so ties on `used`
        // (impossible by construction — ticks are unique) would still
        // resolve deterministically.
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.used)
            .map(|(&slot, _)| slot);
        if let Some(slot) = victim {
            self.entries.remove(&slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, slot: usize, fill: f32) -> TrafficEvent {
        TrafficEvent {
            seq,
            time: seq as f64,
            slot,
            kind: TrafficEventKind::Observation,
            tensor: vec![fill; 4],
        }
    }

    fn enc(fill: f32) -> Array {
        Array::from_vec(&[2], vec![fill; 2])
    }

    #[test]
    fn apply_bumps_version_and_stores_tensor() {
        let mut vt = VersionedTraffic::new();
        assert_eq!(vt.version(), 0);
        assert_eq!(vt.slot_version(3), 0);
        assert!(vt.tensor(3).is_none());
        let out = vt.apply(&ev(1, 3, 0.5));
        assert_eq!(
            out,
            ApplyOutcome::Applied {
                slot: 3,
                version: 1
            }
        );
        assert_eq!(vt.version(), 1);
        assert_eq!(vt.slot_version(3), 1);
        assert_eq!(vt.tensor(3), Some(&[0.5f32; 4][..]));
        // A second slot bumps the global version but not slot 3's.
        assert!(vt.apply(&ev(2, 7, 0.1)).is_applied());
        assert_eq!(vt.version(), 2);
        assert_eq!(vt.slot_version(3), 1);
        assert_eq!(vt.slot_version(7), 2);
    }

    #[test]
    fn duplicate_and_out_of_order_events_are_rejected() {
        let mut vt = VersionedTraffic::new();
        let d0 = st_obs::counter("traffic.feed.duplicate").get();
        let o0 = st_obs::counter("traffic.feed.out_of_order").get();
        assert!(vt.apply(&ev(5, 1, 0.2)).is_applied());
        // Redelivery of the same seq: idempotent no-op.
        assert_eq!(vt.apply(&ev(5, 1, 0.9)), ApplyOutcome::Duplicate);
        assert_eq!(vt.tensor(1), Some(&[0.2f32; 4][..]));
        // Older seq after a newer one: must not overwrite.
        assert_eq!(vt.apply(&ev(4, 1, 0.9)), ApplyOutcome::OutOfOrder);
        assert_eq!(vt.tensor(1), Some(&[0.2f32; 4][..]));
        assert_eq!(vt.version(), 1, "rejected events must not bump versions");
        assert_eq!(st_obs::counter("traffic.feed.duplicate").get(), d0 + 1);
        assert_eq!(st_obs::counter("traffic.feed.out_of_order").get(), o0 + 1);
    }

    #[test]
    fn past_horizon_events_are_rejected_not_clamped() {
        let mut vt = VersionedTraffic::with_horizon(10);
        let p0 = st_obs::counter("traffic.feed.past_horizon").get();
        assert_eq!(vt.apply(&ev(1, 10, 0.3)), ApplyOutcome::PastHorizon);
        assert_eq!(vt.apply(&ev(2, 99, 0.3)), ApplyOutcome::PastHorizon);
        assert!(vt.apply(&ev(3, 9, 0.3)).is_applied());
        assert_eq!(vt.version(), 1);
        assert_eq!(st_obs::counter("traffic.feed.past_horizon").get(), p0 + 2);
    }

    #[test]
    fn closures_are_tracked() {
        let mut vt = VersionedTraffic::new();
        let mut e = ev(1, 0, 0.0);
        e.kind = TrafficEventKind::Closure { segment: 42 };
        assert!(vt.apply(&e).is_applied());
        assert_eq!(vt.closed_segments(), vec![42]);
    }

    #[test]
    fn cache_hits_at_matching_version_and_invalidates_on_bump() {
        let mut cache = TrafficCache::new(8);
        let h0 = st_obs::counter("predict.traffic_cache.hit").get();
        let m0 = st_obs::counter("predict.traffic_cache.miss").get();
        let i0 = st_obs::counter("predict.traffic_cache.invalidate").get();
        let a = cache.get_or_encode(3, 0, || enc(1.0));
        assert_eq!(st_obs::counter("predict.traffic_cache.miss").get(), m0 + 1);
        let b = cache.get_or_encode(3, 0, || unreachable!("must hit"));
        assert_eq!(a.data(), b.data());
        assert_eq!(st_obs::counter("predict.traffic_cache.hit").get(), h0 + 1);
        // Version bump: targeted invalidation + re-encode.
        let c = cache.get_or_encode(3, 1, || enc(2.0));
        assert_eq!(
            st_obs::counter("predict.traffic_cache.invalidate").get(),
            i0 + 1
        );
        assert_eq!(st_obs::counter("predict.traffic_cache.miss").get(), m0 + 2);
        assert!(a.data() != c.data());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidation_is_targeted_not_a_flush() {
        let mut cache = TrafficCache::new(8);
        for slot in 0..4 {
            let _ = cache.get_or_encode(slot, 0, || enc(slot as f32));
        }
        assert_eq!(cache.len(), 4);
        // Only slot 2 changed.
        assert!(cache.invalidate_stale(2, 5));
        assert_eq!(cache.len(), 3, "exactly one entry evicted");
        // Unchanged slots still hit.
        let h0 = st_obs::counter("predict.traffic_cache.hit").get();
        for slot in [0usize, 1, 3] {
            let _ = cache.get_or_encode(slot, 0, || unreachable!("must hit"));
        }
        assert_eq!(st_obs::counter("predict.traffic_cache.hit").get(), h0 + 3);
        // Re-invalidation of an absent / up-to-date entry is a no-op.
        assert!(!cache.invalidate_stale(2, 5));
        let _ = cache.get_or_encode(2, 5, || enc(9.0));
        assert!(!cache.invalidate_stale(2, 5));
    }

    #[test]
    fn eviction_is_exact_lru() {
        let mut cache = TrafficCache::new(2);
        let _ = cache.get_or_encode(0, 0, || enc(0.0));
        let _ = cache.get_or_encode(1, 0, || enc(1.0));
        // Touch 0 so 1 becomes LRU.
        let _ = cache.get_or_encode(0, 0, || unreachable!("must hit"));
        let _ = cache.get_or_encode(2, 0, || enc(2.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.cached_version(1).is_none(), "LRU entry 1 evicted");
        assert!(cache.cached_version(0).is_some());
        assert!(cache.cached_version(2).is_some());
    }
}
