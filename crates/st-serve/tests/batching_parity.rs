//! Concurrent-batching parity: N requests pushed through the coalescing
//! scheduler must produce routes **bit-identical** to decoding each request
//! serially, one at a time, on a private session.
//!
//! This is the load-bearing correctness property of continuous batching:
//! packing many requests' beam rows into one GEMM, with requests joining
//! and leaving the batch between ticks, must not perturb a single bit of
//! any route.

mod common;

use std::time::Duration;

use st_serve::{Degradation, ServeConfig, Server};

/// Thresholds that never trigger the degradation ladder, so every response
/// decodes at the full configured beam width.
fn no_degradation_cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_cap: 256,
        max_batch_rows: 64,
        default_deadline: Duration::from_secs(30),
        degrade_queue_depth: usize::MAX,
        greedy_queue_depth: usize::MAX,
        degrade_p99_ms: f64::INFINITY,
        greedy_p99_ms: f64::INFINITY,
        ..ServeConfig::default()
    }
}

#[test]
fn batched_routes_are_bit_identical_to_serial_decoding() {
    let (net, model) = common::city_and_model(11);
    let n_seg = net.num_segments();
    // Mixed workload: fresh predict_route queries and continuation queries
    // with multi-segment prefixes, all in flight at once on one worker so
    // their beam rows genuinely share packed steps.
    let mut requests = Vec::new();
    for i in 0..6 {
        let start = (i * 7) % n_seg;
        let target = (n_seg - 1 - i * 5).max(1) % n_seg;
        if start == target {
            continue;
        }
        requests.push(common::request_between(&net, &model, start, target, None));
        requests.push(common::continuation_between(
            &net, &model, start, target, 3, None,
        ));
    }
    let server = Server::new(model.clone(), net.clone(), no_degradation_cfg(1));
    let pending: Vec<_> = requests
        .iter()
        .map(|r| server.enqueue(r.clone()).expect("queue is large enough"))
        .collect();
    let responses: Vec<_> = pending
        .into_iter()
        .map(|p| p.wait().expect("no faults injected"))
        .collect();
    server.shutdown();

    for (req, resp) in requests.iter().zip(&responses) {
        assert_eq!(resp.degradation, Degradation::None);
        assert!(
            net.is_valid_route(&resp.route),
            "served route must be connected"
        );
        assert!(
            resp.route.starts_with(&req.prefix),
            "served route must extend the request prefix"
        );
        let oracle = common::serial_oracle(&net, &model, req, resp.beam_width);
        assert_eq!(
            resp.route, oracle,
            "batched decode diverged from the serial oracle (prefix {:?})",
            req.prefix
        );
    }
}

#[test]
fn parity_holds_across_multiple_workers() {
    let (net, model) = common::city_and_model(12);
    let n_seg = net.num_segments();
    let requests: Vec<_> = (0..8)
        .map(|i| {
            let start = (i * 11) % n_seg;
            let target = (i * 13 + 5) % n_seg;
            common::request_between(&net, &model, start, target.max(1), None)
        })
        .collect();
    let server = Server::new(model.clone(), net.clone(), no_degradation_cfg(2));
    let pending: Vec<_> = requests
        .iter()
        .map(|r| server.enqueue(r.clone()).expect("queue is large enough"))
        .collect();
    for (req, p) in requests.iter().zip(pending) {
        let resp = p.wait().expect("no faults injected");
        let oracle = common::serial_oracle(&net, &model, req, resp.beam_width);
        assert_eq!(resp.route, oracle, "worker {} diverged", resp.worker);
    }
    server.shutdown();
}
