//! Live-feed ingest at the serving layer: an ingested traffic event must
//! reach predictions at the next scheduler tick, batched serving must stay
//! bit-identical to serial decoding across the invalidation, and faulty
//! deliveries must be rejected idempotently.

mod common;

use std::time::Duration;

use st_core::livetraffic::{ApplyOutcome, TrafficEvent, TrafficEventKind};
use st_serve::{RouteRequest, ServeConfig, Server};

fn no_degradation_cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_cap: 256,
        max_batch_rows: 64,
        default_deadline: Duration::from_secs(30),
        degrade_queue_depth: usize::MAX,
        greedy_queue_depth: usize::MAX,
        degrade_p99_ms: f64::INFINITY,
        greedy_p99_ms: f64::INFINITY,
        ..ServeConfig::default()
    }
}

/// A live revision of `slot`: every cell at crawl speed (drastically
/// different from the 0.2-everywhere request tensors the fixtures build).
fn gridlock(seq: u64, slot: usize, cells: usize) -> TrafficEvent {
    TrafficEvent {
        seq,
        time: slot as f64 * 1200.0,
        slot,
        kind: TrafficEventKind::Incident,
        tensor: vec![0.02; cells],
    }
}

/// The request with its traffic tensor replaced by the live revision — what
/// the serial oracle must decode once the feed has revised the slot.
fn with_live_tensor(req: &RouteRequest, ev: &TrafficEvent) -> RouteRequest {
    let mut r = req.clone();
    r.traffic = Some(ev.tensor.clone());
    r
}

#[test]
fn ingest_reaches_predictions_at_the_next_tick() {
    // Model seed picked so the gridlock tensor demonstrably flips at least
    // one of these routes (untrained weights differ in traffic sensitivity).
    let (net, model) = common::city_and_model(41);
    let cells = model.cfg.grid_h * model.cfg.grid_w;
    let n_seg = net.num_segments();
    let requests: Vec<_> = (0..12)
        .map(|i| {
            let start = (i * 7) % n_seg;
            let target = ((i * 13 + 9) % n_seg).max(1);
            common::request_between(&net, &model, start, target, None)
        })
        .collect();
    let server = Server::new(model.clone(), net.clone(), no_degradation_cfg(1));

    // Steady state: responses decode at feed version 0 from the request's
    // own tensor.
    let before: Vec<_> = requests
        .iter()
        .map(|r| server.predict(r.clone()).expect("no faults"))
        .collect();
    for (req, resp) in requests.iter().zip(&before) {
        assert_eq!(resp.traffic_version, 0);
        let oracle = common::serial_oracle(&net, &model, req, resp.beam_width);
        assert_eq!(resp.route, oracle, "steady-state parity broke");
    }

    // Inject the incident. Every request here uses slot 0.
    let ev = gridlock(1, 0, cells);
    assert!(server.ingest_traffic(&ev).is_applied());
    assert_eq!(server.traffic_version(0), 1);

    // The very next predictions decode under the live tensor (version 1),
    // bit-identical to a serial decode of the revised tensor — and at least
    // one route actually changes.
    let after: Vec<_> = requests
        .iter()
        .map(|r| server.predict(r.clone()).expect("no faults"))
        .collect();
    let mut changed = 0;
    for ((req, old), resp) in requests.iter().zip(&before).zip(&after) {
        assert_eq!(resp.traffic_version, 1, "stale traffic context served");
        let oracle =
            common::serial_oracle(&net, &model, &with_live_tensor(req, &ev), resp.beam_width);
        assert_eq!(resp.route, oracle, "post-ingest parity broke");
        if resp.route != old.route {
            changed += 1;
        }
    }
    assert!(changed > 0, "no route reacted to a city-wide gridlock");
    server.shutdown();
}

/// The strong parity property across an invalidation tick: requests are in
/// flight *while* the feed event lands, so some admissions bind version 0
/// and some version 1 — and every single response must be bit-identical to
/// the serial decode under the version it reports.
#[test]
fn batched_serving_stays_bit_identical_across_an_invalidation_tick() {
    let (net, model) = common::city_and_model(22);
    let cells = model.cfg.grid_h * model.cfg.grid_w;
    let n_seg = net.num_segments();
    let requests: Vec<_> = (0..12)
        .map(|i| {
            let start = (i * 5) % n_seg;
            let target = ((i * 11 + 3) % n_seg).max(1);
            common::request_between(&net, &model, start, target, None)
        })
        .collect();
    let server = Server::new(model.clone(), net.clone(), no_degradation_cfg(2));
    let ev = gridlock(1, 0, cells);

    // Enqueue everything, then ingest immediately: admission races the
    // feed on purpose.
    let pending: Vec<_> = requests
        .iter()
        .map(|r| server.enqueue(r.clone()).expect("queue is large enough"))
        .collect();
    assert!(server.ingest_traffic(&ev).is_applied());
    let responses: Vec<_> = pending
        .into_iter()
        .map(|p| p.wait().expect("no faults injected"))
        .collect();
    server.shutdown();

    for (req, resp) in requests.iter().zip(&responses) {
        let oracle_req = match resp.traffic_version {
            0 => req.clone(),
            1 => with_live_tensor(req, &ev),
            v => panic!("impossible traffic version {v}"),
        };
        let oracle = common::serial_oracle(&net, &model, &oracle_req, resp.beam_width);
        assert_eq!(
            resp.route, oracle,
            "parity broke across the invalidation tick (version {})",
            resp.traffic_version
        );
    }
}

#[test]
fn faulty_deliveries_are_rejected_idempotently() {
    let (net, model) = common::city_and_model(23);
    let cells = model.cfg.grid_h * model.cfg.grid_w;
    let cfg = ServeConfig {
        traffic_slots: Some(4),
        ..no_degradation_cfg(1)
    };
    let server = Server::new(model, net, cfg);
    let rejected = st_obs::counter("serve.traffic_ingest.rejected").get();

    assert!(server.ingest_traffic(&gridlock(5, 2, cells)).is_applied());
    let v = server.traffic_version(2);
    // duplicate delivery
    assert!(matches!(
        server.ingest_traffic(&gridlock(5, 2, cells)),
        ApplyOutcome::Duplicate
    ));
    // stale (out-of-order) delivery
    assert!(matches!(
        server.ingest_traffic(&gridlock(4, 2, cells)),
        ApplyOutcome::OutOfOrder
    ));
    // past the configured slot horizon
    assert!(matches!(
        server.ingest_traffic(&gridlock(6, 9, cells)),
        ApplyOutcome::PastHorizon
    ));
    assert_eq!(server.traffic_version(2), v, "rejected events moved state");
    assert_eq!(
        st_obs::counter("serve.traffic_ingest.rejected").get(),
        rejected + 3
    );
    server.shutdown();
}
