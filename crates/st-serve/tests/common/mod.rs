//! Shared fixtures for the st-serve integration tests: a small city, an
//! untrained (but deterministic) model, request builders, and the serial
//! single-request decode oracle the batching scheduler must match bitwise.
#![allow(dead_code)] // each test binary uses a subset of the fixtures

use std::sync::Arc;
use std::time::Duration;

use st_baselines::{beam_decode_from, DeepStDecoder};
use st_core::config::DeepStConfig;
use st_core::model::DeepSt;
use st_core::CancelToken;
use st_roadnet::{grid_city, shortest_route, GridConfig, RoadNetwork, Route, SegmentId};
use st_serve::RouteRequest;

/// A 4×4 grid city and a seeded model over it. Untrained weights are fine:
/// serving correctness properties (parity, typed errors, validity) must not
/// depend on what the model learned.
pub fn city_and_model(seed: u64) -> (Arc<RoadNetwork>, Arc<DeepSt>) {
    let net = grid_city(&GridConfig::small_test(), 3);
    let cfg = DeepStConfig::new(net.num_segments(), net.max_out_degree(), 8, 8);
    let model = DeepSt::new(cfg, seed);
    (Arc::new(net), Arc::new(model))
}

/// A fresh-route request from `start` toward `target`'s midpoint.
pub fn request_between(
    net: &RoadNetwork,
    model: &DeepSt,
    start: SegmentId,
    target: SegmentId,
    deadline: Option<Duration>,
) -> RouteRequest {
    let dest = net.midpoint(target);
    let traffic = model
        .cfg
        .use_traffic
        .then(|| vec![0.2f32; model.cfg.grid_h * model.cfg.grid_w]);
    RouteRequest {
        prefix: vec![start],
        dest_coord: dest,
        dest_norm: [(dest.x / 500.0) as f32, (dest.y / 500.0) as f32],
        traffic,
        slot_id: 0,
        deadline,
    }
}

/// A continuation request whose prefix is the first `len` hops of the
/// shortest route from `start` to `target` (always a connected route).
pub fn continuation_between(
    net: &RoadNetwork,
    model: &DeepSt,
    start: SegmentId,
    target: SegmentId,
    len: usize,
    deadline: Option<Duration>,
) -> RouteRequest {
    let (path, _) = shortest_route(net, start, target, &|s| net.segment(s).length)
        .expect("grid city is strongly connected");
    let take = len.clamp(1, path.len());
    let mut req = request_between(net, model, start, target, deadline);
    req.prefix = path[..take].to_vec();
    req
}

/// The serial one-request-at-a-time decode the continuous-batching
/// scheduler must reproduce bit for bit: a private `InferSession` and a
/// beam search at `beam_width`, warmed on the same prefix.
pub fn serial_oracle(
    net: &RoadNetwork,
    model: &DeepSt,
    req: &RouteRequest,
    beam_width: usize,
) -> Route {
    let c = req.traffic.as_ref().map(|t| model.encode_traffic(t));
    let ctx = model.encode_context(req.dest_norm, c);
    let mut dec = DeepStDecoder::new(model, &ctx);
    match beam_decode_from(
        net,
        &mut dec,
        &req.prefix,
        &req.dest_coord,
        beam_width,
        model.cfg.max_route_len,
        &CancelToken::new(),
    ) {
        Ok(route) => route,
        Err(c) => c.partial,
    }
}
