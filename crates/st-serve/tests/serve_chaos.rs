//! Serving chaos harness: deterministic injected faults — worker panics,
//! poisoned sessions, slow steps, deadline storms, queue overload — must
//! all resolve to typed errors or valid responses. The pinned invariants:
//!
//! - **shed, don't stall**: overload and deadline pressure produce
//!   `Overloaded` / `DeadlineExceeded`, never a hung request;
//! - **no response is ever dropped**: every enqueued request gets exactly
//!   one terminal reply, even through panics and shutdown;
//! - **no process abort**: worker panics are contained and the worker
//!   rebuilds; requests in flight at the fault are retried and post-fault
//!   requests succeed;
//! - **degraded routes are still valid** routes on the graph.

mod common;

use std::sync::Arc;
use std::time::{Duration, Instant};

use st_core::faultinject::{ServeFaultInjector, ServeFaultPlan};
use st_serve::{Degradation, ServeConfig, ServeError, Server};

/// Every pending handle must resolve within this wall bound, or the test
/// declares the request hung (the failure mode the harness exists to catch).
const HANG_BOUND: Duration = Duration::from_secs(30);

fn one_worker_cfg() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_cap: 64,
        default_deadline: Duration::from_secs(20),
        retry_backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

#[test]
fn worker_panic_is_contained_and_request_retried() {
    let (net, model) = common::city_and_model(21);
    let injector = Arc::new(ServeFaultInjector::new(ServeFaultPlan {
        panic_at: vec![1],
        ..ServeFaultPlan::default()
    }));
    let panics_before = st_obs::counter("serve.worker_panic").get();
    let server = Server::with_chaos(
        model.clone(),
        net.clone(),
        one_worker_cfg(),
        Arc::clone(&injector),
    );
    let req = common::request_between(&net, &model, 0, net.num_segments() - 1, None);
    let resp = server
        .predict(req.clone())
        .expect("request must survive a contained worker panic");
    assert!(
        resp.attempts >= 2,
        "the panicked attempt must be retried (attempts = {})",
        resp.attempts
    );
    assert!(net.is_valid_route(&resp.route));
    // Recovery must reproduce the fault-free answer, not an approximation.
    assert_eq!(
        resp.route,
        common::serial_oracle(&net, &model, &req, resp.beam_width)
    );
    assert!(st_obs::counter("serve.worker_panic").get() > panics_before);
    assert_eq!(injector.pending(), 0, "the planned panic fired");

    // Post-fault requests succeed: the worker rebuilt a healthy engine.
    let req2 = common::request_between(&net, &model, 3, 7, None);
    let resp2 = server.predict(req2).expect("post-fault request succeeds");
    assert_eq!(resp2.attempts, 1);
    server.shutdown();
}

#[test]
fn poisoned_session_is_rebuilt_and_request_retried() {
    let (net, model) = common::city_and_model(22);
    let injector = Arc::new(ServeFaultInjector::new(ServeFaultPlan {
        poison_at: vec![0],
        ..ServeFaultPlan::default()
    }));
    let server = Server::with_chaos(
        model.clone(),
        net.clone(),
        one_worker_cfg(),
        Arc::clone(&injector),
    );
    let req = common::request_between(&net, &model, 1, net.num_segments() - 2, None);
    let resp = server
        .predict(req.clone())
        .expect("request must survive a poisoned step");
    assert!(resp.attempts >= 2, "poisoned attempt must be retried");
    assert_eq!(
        resp.route,
        common::serial_oracle(&net, &model, &req, resp.beam_width),
        "recovered decode must match the fault-free oracle"
    );
    server.shutdown();
}

#[test]
fn exhausted_retries_fail_typed_and_server_survives() {
    let (net, model) = common::city_and_model(23);
    // Both allowed attempts panic; the third never happens.
    let injector = Arc::new(ServeFaultInjector::new(ServeFaultPlan {
        panic_at: vec![0, 1],
        ..ServeFaultPlan::default()
    }));
    let cfg = ServeConfig {
        max_retries: 1,
        ..one_worker_cfg()
    };
    let server = Server::with_chaos(model.clone(), net.clone(), cfg, Arc::clone(&injector));
    let req = common::request_between(&net, &model, 2, 9, None);
    match server.predict(req) {
        Err(ServeError::Internal(msg)) => {
            assert!(
                msg.contains("attempts"),
                "message names the retry budget: {msg}"
            )
        }
        other => panic!("expected typed Internal after exhausted retries, got {other:?}"),
    }
    // The process did not abort and the worker still serves.
    let req2 = common::request_between(&net, &model, 4, 11, None);
    assert!(server.predict(req2).is_ok(), "post-fault request succeeds");
    server.shutdown();
}

#[test]
fn deadline_storm_sheds_not_stalls() {
    let (net, model) = common::city_and_model(24);
    // Every early tick stalls 25 ms; requests carry 10 ms deadlines. The
    // correct behaviour is a storm of typed DeadlineExceeded errors, not a
    // wedged server.
    let injector = Arc::new(ServeFaultInjector::new(ServeFaultPlan {
        slow_at: (0..200).collect(),
        slow_ms: 25,
        ..ServeFaultPlan::default()
    }));
    let server = Server::with_chaos(
        model.clone(),
        net.clone(),
        one_worker_cfg(),
        Arc::clone(&injector),
    );
    let n_seg = net.num_segments();
    let pending: Vec<_> = (0..16)
        .filter_map(|i| {
            let req = common::request_between(
                &net,
                &model,
                i % n_seg,
                (i * 3 + 1) % n_seg,
                Some(Duration::from_millis(10)),
            );
            server.enqueue(req).ok()
        })
        .collect();
    assert!(!pending.is_empty());
    let bound = Instant::now() + HANG_BOUND;
    let mut deadline_errors = 0usize;
    for p in pending {
        match p.wait_until(bound) {
            None => panic!("request hung past the wall bound — stall, not shed"),
            Some(Err(ServeError::DeadlineExceeded { .. })) => deadline_errors += 1,
            Some(Err(ServeError::Internal(_))) | Some(Err(ServeError::Overloaded { .. })) => {}
            Some(Err(e)) => panic!("unexpected error class: {e}"),
            Some(Ok(resp)) => assert!(net.is_valid_route(&resp.route)),
        }
    }
    assert!(
        deadline_errors > 0,
        "a 10 ms deadline under 25 ms stalls must expire for some requests"
    );
    // After the storm the server still answers at full quality.
    let calm = common::request_between(&net, &model, 0, n_seg - 1, None);
    assert!(server.predict(calm).is_ok());
    server.shutdown();
}

#[test]
fn overload_sheds_with_typed_errors_and_degrades_valid_routes() {
    let (net, model) = common::city_and_model(25);
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 8,
        max_batch_rows: 16,
        degrade_queue_depth: 2,
        greedy_queue_depth: 5,
        default_deadline: Duration::from_secs(20),
        ..ServeConfig::default()
    };
    let server = Server::new(model.clone(), net.clone(), cfg);
    let n_seg = net.num_segments();
    let mut shed = 0usize;
    let mut pending = Vec::new();
    let mut reqs = Vec::new();
    for i in 0..64 {
        let req = common::request_between(&net, &model, (i * 5) % n_seg, (i * 7 + 2) % n_seg, None);
        match server.enqueue(req.clone()) {
            Ok(p) => {
                pending.push(p);
                reqs.push(req);
            }
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected enqueue error: {e}"),
        }
    }
    assert!(shed > 0, "a 64-burst against queue_cap=8 must shed");
    let bound = Instant::now() + HANG_BOUND;
    let mut degraded = 0usize;
    for (req, p) in reqs.iter().zip(pending) {
        let resp = p
            .wait_until(bound)
            .expect("request hung past the wall bound")
            .expect("admitted requests complete");
        assert!(
            net.is_valid_route(&resp.route),
            "degraded or not, served routes are connected routes"
        );
        assert!(resp.route.starts_with(&req.prefix));
        if resp.degradation != Degradation::None {
            degraded += 1;
            // A degraded response is still exact for its (narrower) beam.
            assert_eq!(
                resp.route,
                common::serial_oracle(&net, &model, req, resp.beam_width)
            );
        }
    }
    assert!(
        degraded > 0,
        "queue depth over the ladder thresholds must degrade some responses"
    );
    server.shutdown();
}

#[test]
fn bad_requests_are_rejected_before_queueing() {
    let (net, model) = common::city_and_model(26);
    let server = Server::new(model.clone(), net.clone(), one_worker_cfg());
    let good = common::request_between(&net, &model, 0, 5, None);

    let mut empty = good.clone();
    empty.prefix = vec![];
    assert!(matches!(
        server.enqueue(empty),
        Err(ServeError::BadRequest(_))
    ));

    let mut disconnected = good.clone();
    disconnected.prefix = vec![0, 0];
    assert!(matches!(
        server.enqueue(disconnected),
        Err(ServeError::BadRequest(_))
    ));

    let mut oob = good.clone();
    oob.prefix = vec![net.num_segments() + 10];
    assert!(matches!(
        server.enqueue(oob),
        Err(ServeError::BadRequest(_))
    ));

    let mut no_traffic = good.clone();
    no_traffic.traffic = None;
    assert!(matches!(
        server.enqueue(no_traffic),
        Err(ServeError::BadRequest(_))
    ));

    let mut bad_grid = good.clone();
    bad_grid.traffic = Some(vec![0.0; 3]);
    assert!(matches!(
        server.enqueue(bad_grid),
        Err(ServeError::BadRequest(_))
    ));

    let mut nan_dest = good.clone();
    nan_dest.dest_norm = [f32::NAN, 0.5];
    assert!(matches!(
        server.enqueue(nan_dest),
        Err(ServeError::BadRequest(_))
    ));

    // The good request still works after all the rejects.
    assert!(server.predict(good).is_ok());
    server.shutdown();
}

#[test]
fn shutdown_drains_queue_with_typed_errors() {
    let (net, model) = common::city_and_model(27);
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 64,
        max_batch_rows: 8,
        default_deadline: Duration::from_secs(20),
        ..ServeConfig::default()
    };
    let server = Server::new(model.clone(), net.clone(), cfg);
    let n_seg = net.num_segments();
    let pending: Vec<_> = (0..32)
        .filter_map(|i| {
            let req = common::request_between(&net, &model, (i * 3) % n_seg, (i + 1) % n_seg, None);
            server.enqueue(req).ok()
        })
        .collect();
    server.shutdown();
    let bound = Instant::now() + HANG_BOUND;
    for p in pending {
        match p.wait_until(bound) {
            None => panic!("request hung across shutdown"),
            Some(Ok(resp)) => assert!(net.is_valid_route(&resp.route)),
            Some(Err(
                ServeError::Overloaded { .. }
                | ServeError::Internal(_)
                | ServeError::DeadlineExceeded { .. },
            )) => {}
            Some(Err(e)) => panic!("unexpected error class at shutdown: {e}"),
        }
    }
}

#[test]
fn random_chaos_plan_never_hangs_a_request() {
    let (net, model) = common::city_and_model(28);
    // Seeded mixed fault soup over the first 400 ticks.
    let plan = ServeFaultPlan::random(99, 400, 0.05, 0.02, 0.02, 5);
    let injector = Arc::new(ServeFaultInjector::new(plan));
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 32,
        retry_backoff: Duration::from_millis(1),
        default_deadline: Duration::from_secs(20),
        ..ServeConfig::default()
    };
    let server = Server::with_chaos(model.clone(), net.clone(), cfg, injector);
    let n_seg = net.num_segments();
    let pending: Vec<_> = (0..24)
        .filter_map(|i| {
            let req =
                common::request_between(&net, &model, (i * 7) % n_seg, (i * 11 + 3) % n_seg, None);
            server.enqueue(req).ok()
        })
        .collect();
    let bound = Instant::now() + HANG_BOUND;
    let mut completed = 0usize;
    for p in pending {
        match p.wait_until(bound) {
            None => panic!("request hung under random chaos"),
            Some(Ok(resp)) => {
                assert!(net.is_valid_route(&resp.route));
                completed += 1;
            }
            Some(Err(
                ServeError::Internal(_)
                | ServeError::DeadlineExceeded { .. }
                | ServeError::Overloaded { .. },
            )) => {}
            Some(Err(e)) => panic!("unexpected error class: {e}"),
        }
    }
    assert!(
        completed > 0,
        "chaos at these rates must not fail everything"
    );
    server.shutdown();
}
