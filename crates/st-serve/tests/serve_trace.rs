//! Observability wiring: a recorded serve trace must pass the st-obs
//! schema validator and contain the request-path spans
//! (`serve.request` ⊃ `serve.queue`, `serve.decode`) plus the serving
//! counters and gauges.
//!
//! This test binary holds exactly one `#[test]`: span open/close balance is
//! validated globally per process, so the recording must not interleave
//! with other tests' spans.

mod common;

use std::path::PathBuf;

use st_serve::{ServeConfig, Server};

#[test]
fn recorded_serve_trace_validates_and_names_the_request_path() {
    let (net, model) = common::city_and_model(31);
    st_obs::start_recording();

    let server = Server::new(
        model.clone(),
        net.clone(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let n_seg = net.num_segments();
    for i in 0..4 {
        let req = common::request_between(&net, &model, (i * 9) % n_seg, (i * 5 + 1) % n_seg, None);
        server.predict(req).expect("no faults injected");
    }
    server.shutdown();

    let trace = st_obs::drain();
    st_obs::stop_recording();
    assert!(!trace.spans.is_empty(), "predict() must record spans");
    for name in ["serve.request", "serve.queue", "serve.decode"] {
        assert!(
            trace.spans.iter().any(|s| s.name == name),
            "span `{name}` missing from the serve trace"
        );
    }

    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("trace_serve_test.jsonl");
    let meta = serde_json::json!({ "source": "st-serve trace test" });
    st_obs::write_jsonl(&path, &meta, &trace).expect("trace write");
    let text = std::fs::read_to_string(&path).expect("trace readback");
    let summary = st_obs::validate_jsonl(&text).expect("serve trace must validate");
    assert!(summary.spans > 0);

    // The serving metrics made it into the trace alongside the spans.
    for metric in [
        "serve.completed",
        "serve.queue_depth",
        "serve.batch_rows",
        "serve.active_requests",
    ] {
        assert!(
            text.contains(metric),
            "metric `{metric}` missing from the serve trace"
        );
    }
}
