//! The per-worker decode engine: continuous batching of many concurrent
//! route searches into single packed model steps.
//!
//! Each worker owns one [`Engine`]. The engine keeps a set of active jobs,
//! each a resumable [`BeamSearch`] bound to a trip slot of one shared
//! [`MultiTripSession`]. Every scheduler tick it:
//!
//! 1. fails jobs whose deadline has passed (cooperative cancellation — the
//!    check sits between model steps, so expiry fires within one step);
//! 2. plans the next step of every job — warmup tokens for continuation
//!    prefixes contribute one row, live beam prefixes contribute their
//!    steppable rows — into **one** token batch;
//! 3. gathers all jobs' recurrent-state rows into one packed state (fresh
//!    rows zero-filled) and runs **one** `MultiTripSession::step_into`:
//!    one GEMM per tick across every request, LLM-serving style;
//! 4. hands each job its slice of the log-probs; finished jobs respond and
//!    release their trip slot, freeing the row budget for waiting requests
//!    mid-flight (requests join and leave between ticks, no global barrier).
//!
//! Because the packed GEMM accumulates each output row independently in the
//! same sequential k-order as a batch-of-one step, routes produced here are
//! bit-identical to serial one-request-at-a-time decoding — pinned by the
//! parity tests.
//!
//! Fault handling is split: the engine *detects* (NaN log-probs →
//! [`TickFault::Poisoned`]) and *carries* injected chaos faults; the worker
//! loop in [`crate::server`] contains them (`catch_unwind`, session rebuild,
//! bounded retry).

use std::time::{Duration, Instant};

use st_baselines::BeamSearch;
use st_core::faultinject::ServeFaultInjector;
use st_core::livetraffic::{TrafficCache, VersionedTraffic};
use st_core::model::DeepSt;
use st_core::predict::MultiTripSession;
use st_roadnet::{RoadNetwork, SegmentId};
use st_tensor::Array;

use crate::error::{Degradation, ServeError};
use crate::request::{Responder, RouteRequest, RouteResponse};

/// How many encoded traffic latents an engine memoizes (one per time slot;
/// a simulated day has 72 slots).
const TRAFFIC_CACHE_CAP: usize = 72;

/// A request queued for admission, owned by the shared queue until a worker
/// picks it up.
pub(crate) struct QueuedJob {
    /// The validated request.
    pub req: RouteRequest,
    /// Completion channel; its `Drop` guarantees a typed reply.
    pub responder: Responder,
    /// When the request entered the queue (latency measurement base).
    pub enqueued: Instant,
    /// Absolute deadline; checked at admission and between model steps.
    pub deadline_at: Instant,
    /// Times this job has been admitted to an engine (retry accounting).
    pub attempts: u32,
    /// Earliest re-admission time (retry backoff); `enqueued` for fresh jobs.
    pub not_before: Instant,
}

/// One active decode: a resumable beam search plus its binding into the
/// shared multi-trip session.
struct Active {
    req: RouteRequest,
    responder: Responder,
    enqueued: Instant,
    deadline_at: Instant,
    attempts: u32,
    /// Trip slot in the engine's `MultiTripSession`.
    trip: usize,
    /// Live-traffic version the job's context was encoded at (0 = frozen
    /// request tensor, no feed revision). Bound at admission: in-flight
    /// decodes keep their context, preserving bit-parity with serial decode.
    traffic_version: u64,
    beam: BeamSearch,
    /// Prefix tokens still to feed one-at-a-time before the search steps
    /// (continuation warmup, batched in-band with other jobs' rows).
    warmup: Vec<SegmentId>,
    warm_pos: usize,
    /// Current global state-row index of each live beam row (`None` = fresh
    /// row, zero-filled at the next gather).
    rows: Vec<Option<usize>>,
    degradation: Degradation,
    beam_width: usize,
    done: bool,
}

/// What a job contributed to the current tick's packed batch.
enum PlanKind {
    /// One warmup token (row ignored for scoring).
    Warm,
    /// `n` steppable beam rows to score.
    Search(usize),
}

/// A detected decode fault the worker must contain (the engine's state can
/// no longer be trusted; rebuild and retry the in-flight jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TickFault {
    /// The packed step produced NaN log-probs (injected poison or a real
    /// numeric fault).
    Poisoned,
}

/// Per-worker continuous-batching decode engine.
pub(crate) struct Engine<'m> {
    model: &'m DeepSt,
    net: &'m RoadNetwork,
    sess: MultiTripSession<'m>,
    /// Packed recurrent state, one row per planned batch row.
    state: Vec<Array>,
    logp: Vec<f64>,
    active: Vec<Active>,
    /// Model slot width (`cfg.max_neighbors`): log-prob row stride.
    width: usize,
    /// Encoded traffic latents keyed by `(slot id, live version)` — exact
    /// LRU with targeted invalidation on live-feed updates.
    traffic_cache: TrafficCache,
    /// Latencies (ms) of responses completed since the worker last drained
    /// them into the shared p99 window.
    completed_ms: Vec<f64>,
    worker_id: usize,
    // Per-tick plan scratch, reused across ticks.
    plan_tokens: Vec<SegmentId>,
    plan_trips: Vec<usize>,
    plan_spec: Vec<Option<usize>>,
    planned: Vec<(usize, PlanKind)>,
}

impl<'m> Engine<'m> {
    pub(crate) fn new(model: &'m DeepSt, net: &'m RoadNetwork, worker_id: usize) -> Self {
        Self {
            model,
            net,
            sess: model.multi_trip_session(),
            state: Vec::new(),
            logp: Vec::new(),
            active: Vec::new(),
            width: model.cfg.max_neighbors,
            traffic_cache: TrafficCache::new(TRAFFIC_CACHE_CAP),
            completed_ms: Vec::new(),
            worker_id,
            plan_tokens: Vec::new(),
            plan_trips: Vec::new(),
            plan_spec: Vec::new(),
            planned: Vec::new(),
        }
    }

    /// No active jobs: the worker may block waiting for the queue.
    pub(crate) fn is_idle(&self) -> bool {
        self.active.is_empty()
    }

    /// Upper bound on state rows the current jobs can occupy (admission
    /// budget: each job can fan out to its beam width).
    pub(crate) fn rows_potential(&self) -> usize {
        self.active.iter().map(|a| a.beam_width.max(1)).sum()
    }

    /// Latencies (ms) of jobs completed since the last drain.
    pub(crate) fn drain_completed_ms(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.completed_ms)
    }

    /// Bind a queued job to a trip slot and a fresh beam search. The
    /// degradation decision (beam width) was made by the caller from queue
    /// pressure; `live` is the server's shared traffic state, read under
    /// lock — the traffic context binds *here*, at admission, so in-flight
    /// decodes are never re-encoded mid-search (bit-parity with serial
    /// decode) while every new admission sees the latest feed version.
    /// Sends the `Admitted` event so the client's queue span closes.
    pub(crate) fn admit(
        &mut self,
        job: QueuedJob,
        degradation: Degradation,
        beam_width: usize,
        live: &VersionedTraffic,
    ) {
        let QueuedJob {
            req,
            responder,
            enqueued,
            deadline_at,
            attempts,
            ..
        } = job;
        let traffic_version = live.slot_version(req.slot_id);
        let c = req.traffic.as_ref().map(|t| {
            // The live tensor supersedes the request's frozen snapshot once
            // the feed has revised this slot; version 0 (feed-untouched)
            // falls back to the request tensor, matching the pre-streaming
            // behaviour exactly.
            let tensor: &[f32] = live.tensor(req.slot_id).unwrap_or(t);
            let model = self.model;
            self.traffic_cache
                .get_or_encode(req.slot_id, traffic_version, || {
                    model.encode_traffic(tensor)
                })
        });
        let ctx = self.model.encode_context(req.dest_norm, c);
        let trip = self.sess.add_trip(&ctx);
        let mut beam = BeamSearch::new(
            self.net,
            req.prefix.clone(),
            req.dest_coord,
            beam_width,
            self.width,
            self.model.cfg.max_route_len,
        );
        // Closures bind at admission like the traffic context: in-flight
        // decodes keep the closure set they started with, new admissions
        // detour around whatever the feed has closed since.
        let closed = live.closed_segments();
        if !closed.is_empty() {
            beam.set_closed_segments(&closed);
        }
        // All but the last prefix segment warm the recurrent state; the
        // last is the search's first step token.
        let warmup = req.prefix[..req.prefix.len() - 1].to_vec();
        responder.admitted();
        self.active.push(Active {
            req,
            responder,
            enqueued,
            deadline_at,
            attempts: attempts + 1,
            trip,
            traffic_version,
            beam,
            warmup,
            warm_pos: 0,
            rows: vec![None],
            degradation,
            beam_width,
            done: false,
        });
        st_obs::gauge("serve.active_requests").set(self.active.len() as f64);
    }

    /// Tear down all active jobs (after a contained fault) and hand them
    /// back as queued jobs for retry. The session is assumed unusable; the
    /// caller drops this engine wholesale.
    pub(crate) fn take_jobs(&mut self) -> Vec<QueuedJob> {
        let now = Instant::now();
        self.active
            .drain(..)
            .map(|a| QueuedJob {
                req: a.req,
                responder: a.responder,
                enqueued: a.enqueued,
                deadline_at: a.deadline_at,
                attempts: a.attempts,
                not_before: now,
            })
            .collect()
    }

    /// Run one scheduler tick: deadline sweep, chaos hooks, one packed
    /// model step, per-job apply, responses for finished jobs.
    pub(crate) fn tick(
        &mut self,
        now: Instant,
        tick_no: u64,
        injector: Option<&ServeFaultInjector>,
    ) -> Result<(), TickFault> {
        // 1) Cooperative deadline check, between model steps.
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].deadline_at <= now {
                let a = self.active.remove(i);
                self.sess.remove_trip(a.trip);
                st_obs::counter("serve.deadline_exceeded").inc();
                let waited_ms = now.duration_since(a.enqueued).as_millis() as u64;
                a.responder
                    .finish(Err(ServeError::DeadlineExceeded { waited_ms }));
            } else {
                i += 1;
            }
        }
        if self.active.is_empty() {
            st_obs::gauge("serve.active_requests").set(0.0);
            return Ok(());
        }

        // 2) Chaos hooks, keyed by the worker's tick counter.
        if let Some(inj) = injector {
            if let Some(ms) = inj.take_slow(tick_no) {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if inj.take_panic(tick_no) {
                // st-lint: allow(panic-in-lib) — injected fault under test
                panic!("injected chaos panic at serve tick {tick_no}");
            }
        }

        // 3) Plan every job's contribution to this tick's packed batch.
        self.plan_tokens.clear();
        self.plan_trips.clear();
        self.plan_spec.clear();
        self.planned.clear();
        let net = self.net;
        for (idx, a) in self.active.iter_mut().enumerate() {
            if a.done {
                continue;
            }
            if let Some(&tok) = a.warmup.get(a.warm_pos) {
                self.plan_tokens.push(tok);
                self.plan_trips.push(a.trip);
                self.plan_spec.push(a.rows[0]);
                self.planned.push((idx, PlanKind::Warm));
                continue;
            }
            let Active {
                beam, rows, trip, ..
            } = a;
            match beam.plan_step(net) {
                None => a.done = true,
                Some((toks, locals)) => {
                    for (k, &local) in locals.iter().enumerate() {
                        self.plan_tokens.push(toks[k]);
                        self.plan_trips.push(*trip);
                        self.plan_spec.push(rows[local]);
                    }
                    self.planned.push((idx, PlanKind::Search(locals.len())));
                }
            }
        }
        if self.plan_tokens.is_empty() {
            self.sweep_done();
            return Ok(());
        }
        st_obs::gauge("serve.batch_rows").set(self.plan_tokens.len() as f64);

        // 4) One packed step for every job's rows.
        let gathered = self.sess.gather_state_or_zero(&self.state, &self.plan_spec);
        let old = std::mem::replace(&mut self.state, gathered);
        self.sess.recycle_state(old);
        self.sess.step_into(
            &self.plan_tokens,
            &self.plan_trips,
            &mut self.state,
            &mut self.logp,
        );

        // 5) Poison chaos writes NaN into the step output; detection is
        // generic, so a real numeric fault takes the same typed path.
        if let Some(inj) = injector {
            if inj.take_poison(tick_no) {
                for v in self.logp.iter_mut() {
                    *v = f64::NAN;
                }
            }
        }
        if self.logp.iter().any(|v| v.is_nan()) {
            st_obs::counter("serve.poisoned_step").inc();
            return Err(TickFault::Poisoned);
        }

        // 6) Hand each job its slice; remap surviving rows to global
        // state-row indices for the next tick's gather.
        let width = self.width;
        let mut offset = 0usize;
        for (idx, kind) in self.planned.drain(..) {
            let a = &mut self.active[idx];
            match kind {
                PlanKind::Warm => {
                    a.rows.clear();
                    a.rows.push(Some(offset));
                    a.warm_pos += 1;
                    offset += 1;
                }
                PlanKind::Search(count) => {
                    let slice = &self.logp[offset * width..(offset + count) * width];
                    match a.beam.apply_step(net, slice) {
                        Some(survivors) => {
                            let mapped: Vec<Option<usize>> =
                                survivors.iter().map(|&r| Some(offset + r)).collect();
                            a.rows = mapped;
                        }
                        None => a.done = true,
                    }
                    offset += count;
                }
            }
        }

        // 7) Finished jobs respond and release their trip slot mid-flight.
        self.sweep_done();
        Ok(())
    }

    fn sweep_done(&mut self) {
        let mut i = 0;
        while i < self.active.len() {
            if !self.active[i].done {
                i += 1;
                continue;
            }
            let a = self.active.remove(i);
            self.sess.remove_trip(a.trip);
            let route = a.beam.into_route();
            let latency = a.enqueued.elapsed();
            self.completed_ms.push(latency.as_secs_f64() * 1e3);
            st_obs::counter("serve.completed").inc();
            a.responder.finish(Ok(RouteResponse {
                route,
                degradation: a.degradation,
                beam_width: a.beam_width,
                attempts: a.attempts,
                latency,
                worker: self.worker_id,
                traffic_version: a.traffic_version,
            }));
        }
        st_obs::gauge("serve.active_requests").set(self.active.len() as f64);
    }
}

/// Check a request for structural validity before it may enter the queue.
pub(crate) fn validate_request(
    model: &DeepSt,
    net: &RoadNetwork,
    req: &RouteRequest,
) -> Result<(), ServeError> {
    if req.prefix.is_empty() {
        return Err(ServeError::BadRequest("empty route prefix".into()));
    }
    if !net.is_valid_route(&req.prefix) {
        return Err(ServeError::BadRequest(
            "prefix is not a connected route on the graph".into(),
        ));
    }
    if !(req.dest_coord.x.is_finite() && req.dest_coord.y.is_finite()) {
        return Err(ServeError::BadRequest("non-finite destination".into()));
    }
    if !(req.dest_norm[0].is_finite() && req.dest_norm[1].is_finite()) {
        return Err(ServeError::BadRequest(
            "non-finite normalized destination".into(),
        ));
    }
    match (&req.traffic, model.cfg.use_traffic) {
        (None, true) => {
            return Err(ServeError::BadRequest(
                "model uses traffic but request has no traffic tensor".into(),
            ))
        }
        (Some(t), true) => {
            let want = model.cfg.grid_h * model.cfg.grid_w;
            if t.len() != want {
                return Err(ServeError::BadRequest(format!(
                    "traffic tensor has {} cells, model wants {want}",
                    t.len()
                )));
            }
        }
        (Some(_), false) => {
            return Err(ServeError::BadRequest(
                "model has no traffic pathway but request carries a tensor".into(),
            ))
        }
        (None, false) => {}
    }
    Ok(())
}
