//! The long-lived server: bounded admission queue, worker threadpool,
//! degradation ladder, panic containment, bounded retries, clean shutdown.
//!
//! Threading model: clients call [`Server::enqueue`] / [`Server::predict`]
//! from any thread; validation and load shedding happen synchronously on
//! the caller. Admitted jobs sit in one bounded queue shared by all
//! workers. Each worker owns an [`Engine`] (its own `MultiTripSession` +
//! scratch arena) and loops: admit from the queue up to its row budget,
//! run one continuous-batching tick, repeat. Faults are contained at the
//! worker loop:
//!
//! - a panic anywhere in admission or the tick is caught with
//!   `catch_unwind`; the engine is discarded and rebuilt, and its in-flight
//!   jobs are re-queued with exponential backoff (bounded by
//!   [`ServeConfig::max_retries`], then a typed `Internal` error);
//! - a poisoned step (NaN log-probs) takes the same rebuild-and-retry path
//!   without unwinding;
//! - a deadline expires cooperatively between model steps;
//! - shutdown finishes in-flight decodes, then drains the queue with typed
//!   `Overloaded` errors — nothing is ever silently dropped.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use st_core::faultinject::ServeFaultInjector;
use st_core::livetraffic::{ApplyOutcome, TrafficEvent, VersionedTraffic};
use st_core::model::DeepSt;
use st_roadnet::RoadNetwork;

use crate::engine::{validate_request, Engine, QueuedJob, TickFault};
use crate::error::{Degradation, ServeError};
use crate::request::{response_channel, PendingResponse, RouteRequest, RouteResponse};

/// Tuning knobs for the service. The defaults are sized for the synthetic
/// cities used in tests and benchmarks; production-scale graphs mostly need
/// a larger `queue_cap` and `max_batch_rows`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each with its own decode engine.
    pub workers: usize,
    /// Bounded admission-queue capacity; enqueues beyond it are shed with
    /// [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Per-worker cap on packed state rows (each admitted job reserves its
    /// beam width).
    pub max_batch_rows: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Duration,
    /// Beam width for full-quality responses.
    pub beam_width: usize,
    /// Beam width under `ReducedBeam` degradation.
    pub degraded_beam_width: usize,
    /// Queue depth at which admission downshifts to `ReducedBeam`.
    pub degrade_queue_depth: usize,
    /// Queue depth at which admission downshifts to `Greedy`.
    pub greedy_queue_depth: usize,
    /// Trailing p99 latency (ms) at which admission downshifts to
    /// `ReducedBeam`.
    pub degrade_p99_ms: f64,
    /// Trailing p99 latency (ms) at which admission downshifts to `Greedy`.
    pub greedy_p99_ms: f64,
    /// Re-admissions allowed after contained faults before the request
    /// fails with a typed `Internal` error.
    pub max_retries: u32,
    /// Base backoff before a faulted job may be re-admitted (doubles per
    /// attempt).
    pub retry_backoff: Duration,
    /// Traffic-slot horizon for the live feed: ingested events addressing a
    /// slot `>= traffic_slots` are rejected as past-horizon. `None` accepts
    /// any slot id.
    pub traffic_slots: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_cap: 64,
            max_batch_rows: 64,
            default_deadline: Duration::from_secs(2),
            beam_width: 8,
            degraded_beam_width: 3,
            degrade_queue_depth: 16,
            greedy_queue_depth: 32,
            degrade_p99_ms: 250.0,
            greedy_p99_ms: 500.0,
            max_retries: 2,
            retry_backoff: Duration::from_millis(5),
            traffic_slots: None,
        }
    }
}

/// Completed-request latencies kept for the trailing p99 estimate.
const LATENCY_WINDOW: usize = 512;
/// Idle workers re-check the queue at this period even without a wakeup, so
/// backoff-delayed retries cannot stall when every worker is parked.
const IDLE_POLL: Duration = Duration::from_millis(2);

struct Shared {
    cfg: ServeConfig,
    model: Arc<DeepSt>,
    net: Arc<RoadNetwork>,
    queue: Mutex<VecDeque<QueuedJob>>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    /// Trailing completed-request latencies (ms) for the degradation
    /// ladder's p99 trigger.
    latencies: Mutex<VecDeque<f64>>,
    /// Live traffic state fed by [`Server::ingest_traffic`]. Workers read it
    /// under lock at admission, so every admission after an ingest decodes
    /// under the new version — the next scheduler tick at the latest.
    traffic: Mutex<VersionedTraffic>,
    injector: Option<Arc<ServeFaultInjector>>,
}

/// Recover a mutex guard even if a holder panicked; the protected state
/// (queue, latency window) stays structurally valid across unwinds.
fn lock_anyway<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn p99_ms(shared: &Shared) -> f64 {
    let window = lock_anyway(&shared.latencies);
    if window.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = window.iter().copied().collect();
    drop(window);
    v.sort_by(|a, b| a.total_cmp(b));
    let idx = ((v.len() as f64) * 0.99).ceil() as usize;
    v[idx.saturating_sub(1).min(v.len() - 1)]
}

/// Degradation ladder: queue depth or trailing p99 picks the quality level.
fn decide_degradation(cfg: &ServeConfig, queue_depth: usize, p99: f64) -> (Degradation, usize) {
    if queue_depth >= cfg.greedy_queue_depth || p99 > cfg.greedy_p99_ms {
        (Degradation::Greedy, 1)
    } else if queue_depth >= cfg.degrade_queue_depth || p99 > cfg.degrade_p99_ms {
        (Degradation::ReducedBeam, cfg.degraded_beam_width.max(1))
    } else {
        (Degradation::None, cfg.beam_width)
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// A running route-prediction service. Dropping the server shuts it down
/// cleanly (in-flight work finishes, queued work gets typed errors, workers
/// join).
pub struct Server {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a server over a model and its road network.
    pub fn new(model: Arc<DeepSt>, net: Arc<RoadNetwork>, cfg: ServeConfig) -> Self {
        Self::start(model, net, cfg, None)
    }

    /// Start a server with a deterministic chaos injector wired into every
    /// worker's tick loop (testing and the chaos benchmark).
    pub fn with_chaos(
        model: Arc<DeepSt>,
        net: Arc<RoadNetwork>,
        cfg: ServeConfig,
        injector: Arc<ServeFaultInjector>,
    ) -> Self {
        Self::start(model, net, cfg, Some(injector))
    }

    fn start(
        model: Arc<DeepSt>,
        net: Arc<RoadNetwork>,
        cfg: ServeConfig,
        injector: Option<Arc<ServeFaultInjector>>,
    ) -> Self {
        let workers = cfg.workers.max(1);
        let traffic = match cfg.traffic_slots {
            Some(n) => VersionedTraffic::with_horizon(n),
            None => VersionedTraffic::new(),
        };
        let shared = Arc::new(Shared {
            cfg,
            model,
            net,
            queue: Mutex::new(VecDeque::new()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            latencies: Mutex::new(VecDeque::new()),
            traffic: Mutex::new(traffic),
            injector,
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("st-serve-worker-{id}"))
                    .spawn(move || worker_loop(&shared, id))
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_default();
        Self { shared, handles }
    }

    /// Validate and enqueue a request. Synchronous failures — malformed
    /// request ([`ServeError::BadRequest`]) or a full queue
    /// ([`ServeError::Overloaded`]) — return immediately; otherwise the
    /// returned handle resolves to exactly one terminal result.
    pub fn enqueue(&self, req: RouteRequest) -> Result<PendingResponse, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            st_obs::counter("serve.shed").inc();
            return Err(ServeError::Overloaded { queue_depth: 0 });
        }
        validate_request(&self.shared.model, &self.shared.net, &req)?;
        let now = Instant::now();
        let deadline_at = now + req.deadline.unwrap_or(self.shared.cfg.default_deadline);
        let (responder, pending) = response_channel();
        {
            let mut q = lock_anyway(&self.shared.queue);
            if q.len() >= self.shared.cfg.queue_cap {
                st_obs::counter("serve.shed").inc();
                return Err(ServeError::Overloaded {
                    queue_depth: q.len(),
                });
            }
            q.push_back(QueuedJob {
                req,
                responder,
                enqueued: now,
                deadline_at,
                attempts: 0,
                not_before: now,
            });
            st_obs::gauge("serve.queue_depth").set(q.len() as f64);
        }
        self.shared.wakeup.notify_one();
        Ok(pending)
    }

    /// Enqueue and block for the result, tracing the request's three phases
    /// as `serve.request` ⊃ `serve.queue`, `serve.decode` spans.
    pub fn predict(&self, req: RouteRequest) -> Result<RouteResponse, ServeError> {
        let _request = st_obs::span("serve.request");
        let pending = self.enqueue(req)?;
        {
            let _queue = st_obs::span("serve.queue");
            match pending.recv_event()? {
                crate::request::JobEvent::Admitted => {}
                crate::request::JobEvent::Done(r) => return r,
            }
        }
        let _decode = st_obs::span("serve.decode");
        loop {
            match pending.recv_event()? {
                // Re-admission after a contained fault.
                crate::request::JobEvent::Admitted => {}
                crate::request::JobEvent::Done(r) => return r,
            }
        }
    }

    /// Current admission-queue depth (monitoring / tests).
    pub fn queue_depth(&self) -> usize {
        lock_anyway(&self.shared.queue).len()
    }

    /// Feed-ingest endpoint: apply one live traffic event to the server's
    /// shared [`VersionedTraffic`] state.
    ///
    /// On a fresh application the event's slot version bumps, so every
    /// admission from the next scheduler tick onward decodes under the new
    /// tensor (each worker's encode cache evicts exactly that slot's stale
    /// entry — targeted, never a flush). In-flight decodes keep the context
    /// they were admitted with, preserving bit-parity with serial decoding.
    /// Duplicate, out-of-order and past-horizon deliveries are rejected
    /// idempotently with a typed outcome; counters:
    /// `serve.traffic_ingest.{applied,rejected}` plus the underlying
    /// `traffic.feed.*` breakdown.
    pub fn ingest_traffic(&self, ev: &TrafficEvent) -> ApplyOutcome {
        let outcome = lock_anyway(&self.shared.traffic).apply(ev);
        if outcome.is_applied() {
            st_obs::counter("serve.traffic_ingest.applied").inc();
            // Nudge parked workers so a quiet server still converges its
            // admission view promptly.
            self.shared.wakeup.notify_all();
        } else {
            st_obs::counter("serve.traffic_ingest.rejected").inc();
        }
        outcome
    }

    /// The live-feed version of `slot` (0 if never revised).
    pub fn traffic_version(&self, slot: usize) -> u64 {
        lock_anyway(&self.shared.traffic).slot_version(slot)
    }

    /// Stop accepting work, finish in-flight decodes, fail queued requests
    /// with typed errors, and join every worker.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wakeup.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Workers drain the queue on their way out; anything left (all
        // workers died before draining) still must get a typed reply.
        let leftovers: Vec<QueuedJob> = lock_anyway(&self.shared.queue).drain(..).collect();
        for job in leftovers {
            st_obs::counter("serve.shed").inc();
            job.responder
                .finish(Err(ServeError::Overloaded { queue_depth: 0 }));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// Pull admittable jobs from the shared queue into this worker's engine,
/// respecting the row budget, retry backoff, and deadlines.
fn admit_batch(shared: &Shared, engine: &mut Engine<'_>) {
    if shared.shutdown.load(Ordering::Acquire) {
        return;
    }
    let now = Instant::now();
    let mut picked: Vec<QueuedJob> = Vec::new();
    let mut expired: Vec<QueuedJob> = Vec::new();
    let depth_after;
    {
        let mut q = lock_anyway(&shared.queue);
        let mut scan = q.len();
        while scan > 0 {
            // Reserve the full configured beam width per picked job: the
            // ladder can only narrow it.
            let reserved = engine.rows_potential() + picked.len() * shared.cfg.beam_width;
            let idle_and_empty = engine.is_idle() && picked.is_empty();
            if reserved + shared.cfg.beam_width > shared.cfg.max_batch_rows && !idle_and_empty {
                break;
            }
            scan -= 1;
            let Some(job) = q.pop_front() else { break };
            if job.deadline_at <= now {
                expired.push(job);
            } else if job.not_before > now {
                // Backoff not elapsed: rotate to the back, keep scanning.
                q.push_back(job);
            } else {
                picked.push(job);
            }
        }
        depth_after = q.len();
        st_obs::gauge("serve.queue_depth").set(q.len() as f64);
    }
    for job in expired {
        st_obs::counter("serve.deadline_exceeded").inc();
        let waited_ms = now.duration_since(job.enqueued).as_millis() as u64;
        job.responder
            .finish(Err(ServeError::DeadlineExceeded { waited_ms }));
    }
    if picked.is_empty() {
        return;
    }
    let p99 = p99_ms(shared);
    // One traffic-state read for the whole admission batch: every job
    // admitted this tick binds to the same feed version snapshot.
    let traffic = lock_anyway(&shared.traffic);
    for job in picked {
        let (degradation, beam_width) = decide_degradation(&shared.cfg, depth_after, p99);
        if degradation != Degradation::None {
            st_obs::counter("serve.degraded").inc();
        }
        engine.admit(job, degradation, beam_width, &traffic);
    }
}

/// Send a faulted engine's jobs back to the queue (bounded retries with
/// exponential backoff) or fail them with a typed `Internal` error.
fn requeue_after_fault(shared: &Shared, jobs: Vec<QueuedJob>, reason: &str) {
    let now = Instant::now();
    let mut requeued = false;
    for mut job in jobs {
        if job.attempts > shared.cfg.max_retries {
            st_obs::counter("serve.retries_exhausted").inc();
            job.responder.finish(Err(ServeError::Internal(format!(
                "failed after {} attempts: {reason}",
                job.attempts
            ))));
            continue;
        }
        st_obs::counter("serve.retry").inc();
        let backoff =
            shared.cfg.retry_backoff * 2u32.saturating_pow(job.attempts.saturating_sub(1));
        job.not_before = now + backoff;
        let mut q = lock_anyway(&shared.queue);
        q.push_back(job);
        requeued = true;
    }
    if requeued {
        shared.wakeup.notify_all();
    }
}

fn worker_loop(shared: &Shared, worker_id: usize) {
    let model: &DeepSt = &shared.model;
    let net: &RoadNetwork = &shared.net;
    let injector = shared.injector.as_deref();
    let mut engine = Engine::new(model, net, worker_id);
    let mut tick_no: u64 = 0;

    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Admission + one tick under one unwind boundary: a panic anywhere
        // is contained, the engine rebuilt, and its jobs retried.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            admit_batch(shared, &mut engine);
            if engine.is_idle() {
                return Ok(false);
            }
            engine.tick(Instant::now(), tick_no, injector).map(|_| true)
        }));
        // Idle iterations don't consume a tick number, so chaos plans
        // address the Nth *decode* tick deterministically regardless of how
        // long the worker sat parked.
        if !matches!(outcome, Ok(Ok(false))) {
            tick_no += 1;
        }
        match outcome {
            Ok(Ok(true)) => {
                for ms in engine.drain_completed_ms() {
                    let mut w = lock_anyway(&shared.latencies);
                    if w.len() >= LATENCY_WINDOW {
                        w.pop_front();
                    }
                    w.push_back(ms);
                }
            }
            Ok(Ok(false)) => {
                // Idle: park until work arrives (bounded, so backoff-delayed
                // retries are eventually rescanned).
                let q = lock_anyway(&shared.queue);
                if q.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
                    let _ = shared.wakeup.wait_timeout(q, IDLE_POLL);
                }
            }
            Ok(Err(TickFault::Poisoned)) => {
                let jobs = engine.take_jobs();
                engine = Engine::new(model, net, worker_id);
                requeue_after_fault(shared, jobs, "poisoned decode step");
            }
            Err(payload) => {
                st_obs::counter("serve.worker_panic").inc();
                let msg = panic_message(payload);
                let jobs = engine.take_jobs();
                engine = Engine::new(model, net, worker_id);
                requeue_after_fault(shared, jobs, &format!("worker panic: {msg}"));
            }
        }
    }

    // Shutdown: finish in-flight decodes (still under containment; faults
    // here fail the jobs typed rather than retrying into a dead queue).
    while !engine.is_idle() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            engine.tick(Instant::now(), tick_no, injector)
        }));
        tick_no += 1;
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TickFault::Poisoned)) | Err(_) => {
                for job in engine.take_jobs() {
                    job.responder.finish(Err(ServeError::Internal(
                        "fault during shutdown drain".into(),
                    )));
                }
                break;
            }
        }
    }
    // Drain whatever is still queued with typed errors (workers race; each
    // pops one job at a time).
    loop {
        let job = lock_anyway(&shared.queue).pop_front();
        let Some(job) = job else { break };
        st_obs::counter("serve.shed").inc();
        job.responder
            .finish(Err(ServeError::Overloaded { queue_depth: 0 }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_decides_by_depth_and_p99() {
        let cfg = ServeConfig::default();
        assert_eq!(
            decide_degradation(&cfg, 0, 0.0),
            (Degradation::None, cfg.beam_width)
        );
        assert_eq!(
            decide_degradation(&cfg, cfg.degrade_queue_depth, 0.0),
            (Degradation::ReducedBeam, cfg.degraded_beam_width)
        );
        assert_eq!(
            decide_degradation(&cfg, cfg.greedy_queue_depth, 0.0),
            (Degradation::Greedy, 1)
        );
        assert_eq!(
            decide_degradation(&cfg, 0, cfg.greedy_p99_ms + 1.0),
            (Degradation::Greedy, 1)
        );
        assert_eq!(
            decide_degradation(&cfg, 0, cfg.degrade_p99_ms + 1.0),
            (Degradation::ReducedBeam, cfg.degraded_beam_width)
        );
    }
}
