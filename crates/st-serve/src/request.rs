//! Request/response types and the completion channel.
//!
//! The contract the chaos tests pin: **every** enqueued request gets exactly
//! one terminal event — a [`RouteResponse`] or a typed
//! [`ServeError`](crate::ServeError) — no matter what fails in between.
//! [`Responder`]'s `Drop` impl is the backstop: if a worker panics (or a
//! code path forgets to reply) while holding a job, dropping the responder
//! delivers a typed `Internal` error instead of leaving the client hung.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use st_roadnet::{Point, Route, SegmentId};

use crate::error::{Degradation, ServeError};

/// A route-prediction query. A one-segment `prefix` asks for a full route
/// from that start (`predict_route`); a longer prefix asks for the most
/// likely continuation of a partially observed trip
/// (`predict_continuation`).
#[derive(Debug, Clone)]
pub struct RouteRequest {
    /// Travelled segments so far, in order; must be a connected route.
    pub prefix: Vec<SegmentId>,
    /// Rough destination in meters (drives the termination function).
    pub dest_coord: Point,
    /// Destination normalized to `[0, 1]²` (the encoder's input space).
    pub dest_norm: [f32; 2],
    /// Observed traffic tensor (`grid_h × grid_w`, row-major); required iff
    /// the served model uses the traffic pathway.
    pub traffic: Option<Vec<f32>>,
    /// Time-slot id of `traffic`, used as the encode-cache key. Requests in
    /// the same slot share one CNN encode per worker.
    pub slot_id: usize,
    /// Per-request deadline measured from enqueue; `None` uses the server
    /// default. Expiry anywhere — queue or mid-decode — yields
    /// [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded).
    pub deadline: Option<Duration>,
}

/// A completed prediction. `degradation` is part of the API contract:
/// clients must check it to know whether the route was decoded at full
/// quality or under a load-shedding policy (see
/// [`Degradation`](crate::Degradation)).
#[derive(Debug, Clone)]
pub struct RouteResponse {
    /// The predicted route, starting with the request's prefix. Always a
    /// connected route on the graph, even when degraded.
    pub route: Route,
    /// Quality level the route was decoded at.
    pub degradation: Degradation,
    /// Beam width actually used (1 when `degradation` is `Greedy`).
    pub beam_width: usize,
    /// Times the request was admitted to a worker (>1 means it survived a
    /// contained fault and was retried).
    pub attempts: u32,
    /// Enqueue-to-response wall time.
    pub latency: Duration,
    /// Id of the worker that produced the response.
    pub worker: usize,
    /// Live-traffic version of the request's slot at admission time (0 ⇒
    /// the feed never revised that slot and the request's own tensor was
    /// encoded). Lets clients and tests tell which traffic state a route
    /// was decoded under.
    pub traffic_version: u64,
}

/// Events a request's owner receives. `Admitted` marks the queue→decode
/// transition (it can repeat if a contained fault sends the job back to the
/// queue); `Done` is terminal.
pub(crate) enum JobEvent {
    /// A worker admitted the job into its decode batch.
    Admitted,
    /// Terminal result.
    Done(Result<RouteResponse, ServeError>),
}

/// Client handle for an in-flight request (returned by
/// [`Server::enqueue`](crate::Server::enqueue)).
pub struct PendingResponse {
    rx: mpsc::Receiver<JobEvent>,
}

impl PendingResponse {
    pub(crate) fn recv_event(&self) -> Result<JobEvent, ServeError> {
        self.rx
            .recv()
            .map_err(|_| ServeError::Internal("server dropped the request channel".into()))
    }

    /// Block until the terminal result.
    pub fn wait(self) -> Result<RouteResponse, ServeError> {
        loop {
            match self.recv_event()? {
                JobEvent::Admitted => {}
                JobEvent::Done(r) => return r,
            }
        }
    }

    /// Block until the terminal result or `until`; `None` means the request
    /// is still in flight (the handle stays usable). Load generators use
    /// this to detect hung requests without giving up on them.
    pub fn wait_until(&self, until: Instant) -> Option<Result<RouteResponse, ServeError>> {
        loop {
            let now = Instant::now();
            if now >= until {
                return None;
            }
            match self.rx.recv_timeout(until - now) {
                Ok(JobEvent::Admitted) => {}
                Ok(JobEvent::Done(r)) => return Some(r),
                Err(mpsc::RecvTimeoutError::Timeout) => return None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Some(Err(ServeError::Internal(
                        "server dropped the request channel".into(),
                    )))
                }
            }
        }
    }
}

/// Worker-side reply handle. Exactly one terminal send happens per request:
/// explicitly via [`Responder::finish`], or — if the holder unwinds or
/// forgets — via `Drop`, which reports a typed internal error rather than
/// hanging the client.
pub(crate) struct Responder {
    tx: mpsc::Sender<JobEvent>,
    finished: bool,
}

impl Responder {
    /// Signal that a worker moved the job from the queue into its batch.
    pub fn admitted(&self) {
        let _ = self.tx.send(JobEvent::Admitted);
    }

    /// Send the terminal result.
    pub fn finish(mut self, result: Result<RouteResponse, ServeError>) {
        self.finished = true;
        let _ = self.tx.send(JobEvent::Done(result));
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.tx.send(JobEvent::Done(Err(ServeError::Internal(
                "request dropped without a response (contained fault)".into(),
            ))));
        }
    }
}

/// Create a linked (responder, pending) pair for one request.
pub(crate) fn response_channel() -> (Responder, PendingResponse) {
    let (tx, rx) = mpsc::channel();
    (
        Responder {
            tx,
            finished: false,
        },
        PendingResponse { rx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropping_a_responder_yields_a_typed_internal_error() {
        let (responder, pending) = response_channel();
        drop(responder);
        match pending.wait() {
            Err(ServeError::Internal(_)) => {}
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn finish_wins_over_drop() {
        let (responder, pending) = response_channel();
        responder.admitted();
        responder.finish(Err(ServeError::Overloaded { queue_depth: 3 }));
        assert!(matches!(
            pending.wait(),
            Err(ServeError::Overloaded { queue_depth: 3 })
        ));
    }

    #[test]
    fn wait_until_times_out_then_still_receives() {
        let (responder, pending) = response_channel();
        let r = pending.wait_until(Instant::now() + Duration::from_millis(5));
        assert!(r.is_none(), "no event yet");
        responder.finish(Err(ServeError::Overloaded { queue_depth: 0 }));
        let r = pending.wait_until(Instant::now() + Duration::from_millis(50));
        assert!(matches!(r, Some(Err(ServeError::Overloaded { .. }))));
    }
}
