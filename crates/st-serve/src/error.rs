//! The service's typed error taxonomy and degradation ladder.

/// Every way a request can fail. A panic never crosses the request
/// boundary: worker panics are contained and surface as
/// [`ServeError::Internal`] after retries are exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Load was shed: the bounded admission queue was full at enqueue time
    /// (or the server was shutting down). Back off and retry later.
    Overloaded {
        /// Queue depth observed when the request was shed.
        queue_depth: usize,
    },
    /// The request's deadline expired — in the queue or mid-decode (decode
    /// loops check cooperatively between steps, so expiry fires within one
    /// model step).
    DeadlineExceeded {
        /// Milliseconds between enqueue and expiry being noticed.
        waited_ms: u64,
    },
    /// The request was malformed (invalid prefix, bad traffic tensor,
    /// non-finite destination); it was rejected before queueing.
    BadRequest(String),
    /// The server failed the request after containment and bounded retries
    /// (worker panic, poisoned session). The server itself stays up.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queue_depth } => {
                write!(f, "overloaded: admission queue full ({queue_depth} deep)")
            }
            ServeError::DeadlineExceeded { waited_ms } => {
                write!(f, "deadline exceeded after {waited_ms} ms")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// How much quality the server gave up on a response to stay within its
/// latency envelope under pressure. Surfaced on every [`RouteResponse`] so
/// clients can tell a full-quality answer from a degraded one — part of the
/// API contract.
///
/// The ladder is monotone: `None` (full configured beam) → `ReducedBeam`
/// (narrower beam) → `Greedy` (beam width 1). The trigger is queue depth or
/// the trailing p99 latency crossing the configured thresholds at admission
/// time.
///
/// [`RouteResponse`]: crate::RouteResponse
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Degradation {
    /// Full quality: the configured beam width.
    None,
    /// Pressure: beam width lowered to the configured degraded width.
    ReducedBeam,
    /// Heavy pressure: greedy decoding (beam width 1).
    Greedy,
}

impl Degradation {
    /// Short lowercase label for logs and JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            Degradation::None => "none",
            Degradation::ReducedBeam => "reduced_beam",
            Degradation::Greedy => "greedy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_variant() {
        assert!(ServeError::Overloaded { queue_depth: 9 }
            .to_string()
            .contains("9 deep"));
        assert!(ServeError::DeadlineExceeded { waited_ms: 12 }
            .to_string()
            .contains("12 ms"));
        assert!(ServeError::BadRequest("x".into()).to_string().contains("x"));
        assert!(ServeError::Internal("y".into()).to_string().contains("y"));
    }

    #[test]
    fn degradation_ladder_is_ordered() {
        assert!(Degradation::None < Degradation::ReducedBeam);
        assert!(Degradation::ReducedBeam < Degradation::Greedy);
        assert_eq!(Degradation::Greedy.label(), "greedy");
    }
}
