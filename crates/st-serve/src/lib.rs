//! `st-serve`: a fault-hardened route-prediction service over the DeepST
//! inference runtime.
//!
//! A long-lived server (own worker threadpool, no web framework — the
//! transport is in-process handles) exposing route prediction and
//! continuation over a trained [`DeepSt`](st_core::model::DeepSt). The
//! interesting parts are the serving disciplines, not the transport:
//!
//! - **Continuous batching** ([`engine`]): a scheduler coalesces the
//!   in-flight beam-search steps of many concurrent requests into single
//!   packed GEMMs on the shared `MultiTripSession` runtime, LLM-serving
//!   style. Requests join and leave the batch between ticks; completed
//!   routes are bit-identical to serial one-at-a-time decoding (pinned by
//!   the parity tests).
//! - **Deadlines** with cooperative cancellation between model steps.
//! - **Admission control**: a bounded queue with explicit load shedding
//!   (typed [`ServeError::Overloaded`]), never unbounded buffering.
//! - **Graceful degradation**: under queue-depth or p99 pressure the
//!   admission ladder downshifts beam width and finally goes greedy,
//!   surfaced honestly on every response as [`RouteResponse::degradation`].
//! - **Fault containment** ([`server`]): worker panics are caught, the
//!   decode engine rebuilt, in-flight jobs retried with bounded exponential
//!   backoff; a panic never crosses the request boundary and every request
//!   gets exactly one typed terminal reply.
//!
//! - **Live traffic ingest** ([`Server::ingest_traffic`]): feed events
//!   revise a shared versioned traffic state; admissions from the next
//!   scheduler tick decode under the new tensor while in-flight requests
//!   keep their admission-time context (so batched output stays
//!   bit-identical to serial decoding across an invalidation tick). Each
//!   worker's encode cache is keyed by `(slot, version)` with targeted
//!   invalidation. See DESIGN.md §15.
//!
//! The deterministic serving chaos harness
//! ([`st_core::faultinject::ServeFaultInjector`]) drives slow steps, worker
//! panics, poisoned sessions, and deadline storms through exactly these
//! paths; `tests/serve_chaos.rs` pins shed-not-stall behaviour, and the
//! feed chaos plan ([`st_core::faultinject::FeedFaultPlan`]) covers
//! out-of-order/duplicate/past-horizon event delivery.
//!
//! See DESIGN.md §13 for the architecture.

pub mod engine;
pub mod error;
pub mod request;
pub mod server;

pub use error::{Degradation, ServeError};
pub use request::{PendingResponse, RouteRequest, RouteResponse};
pub use server::{ServeConfig, Server};
