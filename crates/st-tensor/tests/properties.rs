//! Property-based tests of the autodiff engine: algebraic identities and
//! gradient correctness on randomized inputs.

use proptest::prelude::*;

use st_tensor::check::grad_check;
use st_tensor::{ops, Array, Tape};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-3.0f32..3.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Softmax rows always sum to one and are shift invariant.
    #[test]
    fn softmax_invariants(data in finite_vec(12), shift in -5.0f32..5.0) {
        let tape = Tape::new();
        let a = tape.leaf(Array::from_vec(&[3, 4], data.clone()));
        let s = ops::softmax_rows(a);
        for r in 0..3 {
            let sum: f32 = s.value().row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.value().row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // shift invariance
        let shifted = tape.leaf(Array::from_vec(
            &[3, 4],
            data.iter().map(|&v| v + shift).collect(),
        ));
        let s2 = ops::softmax_rows(shifted);
        prop_assert!(s.value().max_abs_diff(&s2.value()) < 1e-4);
    }

    /// log_softmax == ln(softmax) elementwise.
    #[test]
    fn log_softmax_consistent(data in finite_vec(8)) {
        let tape = Tape::new();
        let a = tape.leaf(Array::from_vec(&[2, 4], data));
        let ls = ops::log_softmax_rows(a).value();
        let s = ops::softmax_rows(a).value();
        for i in 0..8 {
            prop_assert!((ls.data()[i] - s.data()[i].max(1e-12).ln()).abs() < 1e-4);
        }
    }

    /// Matmul is associative-with-transpose consistent: (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in finite_vec(6), b in finite_vec(6)) {
        let ma = Array::from_vec(&[2, 3], a);
        let mb = Array::from_vec(&[3, 2], b);
        let lhs = ma.matmul(&mb).transpose();
        let rhs = mb.transpose().matmul(&ma.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-5);
    }

    /// Gradient of a random composite expression checks out numerically.
    #[test]
    fn random_composite_gradients(x in finite_vec(6), w in finite_vec(12)) {
        let xs = Array::from_vec(&[2, 3], x);
        let ws = Array::from_vec(&[3, 4], w);
        grad_check(&[xs, ws], |_, v| {
            let h = ops::tanh(ops::matmul(v[0], v[1]));
            let p = ops::softmax_rows(h);
            ops::mean_all(ops::square(p))
        });
    }

    /// Backward through sums: d(Σx)/dx = 1 exactly, for any shape.
    #[test]
    fn sum_gradient_is_ones(data in finite_vec(10)) {
        let tape = Tape::new();
        let x = tape.leaf(Array::from_vec(&[2, 5], data));
        let loss = ops::sum_all(x);
        let grads = tape.backward(loss);
        let g = grads.expect(x);
        prop_assert!(g.data().iter().all(|&v| (v - 1.0).abs() < 1e-7));
    }

    /// Linearity of the tape: grad of a·x + b·x is (a+b) everywhere.
    #[test]
    fn gradient_linearity(data in finite_vec(5), a in -2.0f32..2.0, b in -2.0f32..2.0) {
        let tape = Tape::new();
        let x = tape.leaf(Array::vector(data));
        let y = ops::add(ops::scale(x, a), ops::scale(x, b));
        let grads = tape.backward(ops::sum_all(y));
        let g = grads.expect(x);
        prop_assert!(g.data().iter().all(|&v| (v - (a + b)).abs() < 1e-5));
    }

    /// exp(ln(x)) == x for positive x (within clamp behaviour).
    #[test]
    fn exp_ln_roundtrip(data in proptest::collection::vec(0.01f32..10.0, 6)) {
        let tape = Tape::new();
        let x = tape.leaf(Array::vector(data.clone()));
        let y = ops::exp(ops::ln(x));
        for (got, want) in y.value().data().iter().zip(&data) {
            prop_assert!((got - want).abs() / want < 1e-4);
        }
    }

    /// Softplus is non-negative, monotone, and ≈ identity for large inputs.
    #[test]
    fn softplus_properties(v in -30.0f32..30.0) {
        let tape = Tape::new();
        let x = tape.leaf(Array::vector(vec![v, v + 0.5]));
        let y = ops::softplus(x).value();
        prop_assert!(y.data()[0] >= 0.0);
        prop_assert!(y.data()[1] >= y.data()[0]); // monotone
        if v > -10.0 {
            prop_assert!(y.data()[0] > 0.0); // strictly positive away from underflow
        }
        if v > 25.0 {
            prop_assert!((y.data()[0] - v).abs() < 1e-3);
        }
    }
}
