//! Differentiable operations over [`Var`] handles.
//!
//! Every function here records one node on the tape; the node's backward
//! closure distributes the incoming gradient to its parents. All backward
//! implementations are validated against central finite differences in
//! [`crate::check`]'s test suite.

use std::rc::Rc;

use crate::array::Array;
use crate::tape::{OpMeta, Var};

fn same_tape<'t>(a: Var<'t>, b: Var<'t>) {
    assert!(
        std::ptr::eq(a.tape(), b.tape()),
        "vars from different tapes"
    );
}

/// Record a unary elementwise op. `dfdx` receives `(x, y)` element pairs and
/// returns the local derivative dy/dx at that element.
fn unary<'t>(
    x: Var<'t>,
    name: &'static str,
    f: impl Fn(f32) -> f32,
    dfdx: impl Fn(f32, f32) -> f32 + 'static,
) -> Var<'t> {
    unary_attr(x, name, Vec::new(), f, dfdx)
}

/// Like [`unary`] but records scalar attributes (the constants of `scale`,
/// `add_scalar`, `leaky_relu`) so the graph analyzer can reason about them.
fn unary_attr<'t>(
    x: Var<'t>,
    name: &'static str,
    sattrs: Vec<f32>,
    f: impl Fn(f32) -> f32,
    dfdx: impl Fn(f32, f32) -> f32 + 'static,
) -> Var<'t> {
    let xv = x.value();
    let y = xv.map(&f);
    let yv = Rc::new(y.clone());
    let xid = x.id();
    x.tape().push(
        y,
        OpMeta::new(name, vec![xid]).with_sattrs(sattrs),
        Some(Box::new(move |g, sink| {
            let out = sink.accum(xid);
            for (((o, &gi), &xi), &yi) in out
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(xv.data())
                .zip(yv.data())
            {
                *o += gi * dfdx(xi, yi);
            }
        })),
    )
}

/// Record a binary elementwise op over same-shape operands.
fn binary<'t>(
    a: Var<'t>,
    b: Var<'t>,
    name: &'static str,
    f: impl Fn(f32, f32) -> f32,
    // local derivatives (df/da, df/db) given (a, b)
    dfd: impl Fn(f32, f32) -> (f32, f32) + 'static,
) -> Var<'t> {
    same_tape(a, b);
    let av = a.value();
    let bv = b.value();
    let y = av.zip(&bv, &f);
    let (aid, bid) = (a.id(), b.id());
    a.tape().push(
        y,
        OpMeta::new(name, vec![aid, bid]),
        Some(Box::new(move |g, sink| {
            // Two sequential sink borrows (a may alias b, e.g. add(x, x) —
            // accumulation makes that correct either way).
            {
                let ga = sink.accum(aid);
                for i in 0..g.len() {
                    let (da, _) = dfd(av.data()[i], bv.data()[i]);
                    ga.data_mut()[i] += g.data()[i] * da;
                }
            }
            let gb = sink.accum(bid);
            for i in 0..g.len() {
                let (_, db) = dfd(av.data()[i], bv.data()[i]);
                gb.data_mut()[i] += g.data()[i] * db;
            }
        })),
    )
}

/// Elementwise `a + b` (same shape).
pub fn add<'t>(a: Var<'t>, b: Var<'t>) -> Var<'t> {
    binary(a, b, "add", |x, y| x + y, |_, _| (1.0, 1.0))
}

/// Elementwise `a - b` (same shape).
pub fn sub<'t>(a: Var<'t>, b: Var<'t>) -> Var<'t> {
    binary(a, b, "sub", |x, y| x - y, |_, _| (1.0, -1.0))
}

/// Elementwise `a * b` (same shape).
pub fn mul<'t>(a: Var<'t>, b: Var<'t>) -> Var<'t> {
    binary(a, b, "mul", |x, y| x * y, |x, y| (y, x))
}

/// Elementwise `a / b` (same shape).
pub fn div<'t>(a: Var<'t>, b: Var<'t>) -> Var<'t> {
    binary(a, b, "div", |x, y| x / y, |x, y| (1.0 / y, -x / (y * y)))
}

/// `a * s` for a scalar constant `s`.
pub fn scale(a: Var<'_>, s: f32) -> Var<'_> {
    unary_attr(a, "scale", vec![s], move |x| x * s, move |_, _| s)
}

/// `a + s` for a scalar constant `s`.
pub fn add_scalar(a: Var<'_>, s: f32) -> Var<'_> {
    unary_attr(a, "add_scalar", vec![s], move |x| x + s, |_, _| 1.0)
}

/// Elementwise negation.
pub fn neg(a: Var<'_>) -> Var<'_> {
    scale(a, -1.0)
}

/// Elementwise exponential.
pub fn exp(a: Var<'_>) -> Var<'_> {
    unary(a, "exp", f32::exp, |_, y| y)
}

/// Elementwise natural log. Inputs are clamped to `1e-12` for safety.
pub fn ln(a: Var<'_>) -> Var<'_> {
    unary(a, "ln", |x| x.max(1e-12).ln(), |x, _| 1.0 / x.max(1e-12))
}

/// Elementwise square root (inputs clamped to 0).
pub fn sqrt(a: Var<'_>) -> Var<'_> {
    unary(a, "sqrt", |x| x.max(0.0).sqrt(), |_, y| 0.5 / y.max(1e-12))
}

/// Elementwise square.
pub fn square(a: Var<'_>) -> Var<'_> {
    unary(a, "square", |x| x * x, |x, _| 2.0 * x)
}

/// Elementwise reciprocal.
pub fn reciprocal(a: Var<'_>) -> Var<'_> {
    unary(a, "reciprocal", |x| 1.0 / x, |x, _| -1.0 / (x * x))
}

/// Logistic sigmoid. Computed by [`crate::mathfn::sigmoid`], the crate's
/// deterministic polynomial kernel, so taped and inference activations are
/// bit-identical on every host.
pub fn sigmoid(a: Var<'_>) -> Var<'_> {
    unary(a, "sigmoid", crate::mathfn::sigmoid, |_, y| y * (1.0 - y))
}

/// Hyperbolic tangent, via [`crate::mathfn::tanh`] (see [`sigmoid`]).
pub fn tanh(a: Var<'_>) -> Var<'_> {
    unary(a, "tanh", crate::mathfn::tanh, |_, y| 1.0 - y * y)
}

/// Rectified linear unit.
pub fn relu(a: Var<'_>) -> Var<'_> {
    unary(
        a,
        "relu",
        |x| x.max(0.0),
        |x, _| if x > 0.0 { 1.0 } else { 0.0 },
    )
}

/// Leaky ReLU with the given negative-side slope.
pub fn leaky_relu(a: Var<'_>, slope: f32) -> Var<'_> {
    unary_attr(
        a,
        "leaky_relu",
        vec![slope],
        move |x| if x > 0.0 { x } else { slope * x },
        move |x, _| if x > 0.0 { 1.0 } else { slope },
    )
}

/// Numerically stable softplus `ln(1 + e^x)`.
pub fn softplus(a: Var<'_>) -> Var<'_> {
    unary(
        a,
        "softplus",
        |x| {
            if x > 20.0 {
                x
            } else {
                (1.0 + x.exp()).ln()
            }
        },
        |x, _| 1.0 / (1.0 + (-x).exp()),
    )
}

/// Matrix product of 2-D vars: `a(m×k) · b(k×n)`.
pub fn matmul<'t>(a: Var<'t>, b: Var<'t>) -> Var<'t> {
    same_tape(a, b);
    let av = a.value();
    let bv = b.value();
    let y = av.matmul(&bv);
    let (aid, bid) = (a.id(), b.id());
    a.tape().push(
        y,
        OpMeta::new("matmul", vec![aid, bid]),
        Some(Box::new(move |g, sink| {
            // dL/da += g · bᵀ ; dL/db += aᵀ · g — straight into the pooled
            // accumulators, no temporary product arrays.
            g.matmul_t_acc(&bv, sink.accum(aid));
            av.t_matmul_acc(g, sink.accum(bid));
        })),
    )
}

/// Fused affine map `x(n×k) · w(k×d) + bias[d]` (bias broadcast over rows).
///
/// One tape node instead of the two that `add_bias(matmul(x, w), b)` records:
/// the intermediate product array, its node, and its gradient buffer all
/// disappear, which shortens the tape by roughly a third for MLP-heavy
/// models (every `Linear` layer and GRU gate goes through here).
pub fn affine<'t>(x: Var<'t>, w: Var<'t>, bias: Var<'t>) -> Var<'t> {
    same_tape(x, w);
    same_tape(x, bias);
    let xv = x.value();
    let wv = w.value();
    let bv = bias.value();
    let mut y = xv.matmul(&wv);
    assert_eq!(
        y.cols(),
        bv.len(),
        "affine: {:?} + bias {:?}",
        y.shape(),
        bv.shape()
    );
    for r in 0..y.rows() {
        for (o, &b) in y.row_mut(r).iter_mut().zip(bv.data()) {
            *o += b;
        }
    }
    let (xid, wid, bid) = (x.id(), w.id(), bias.id());
    x.tape().push(
        y,
        OpMeta::new("affine", vec![xid, wid, bid]),
        Some(Box::new(move |g, sink| {
            // dL/dx += g · wᵀ ; dL/dw += xᵀ · g ; dL/db += column sums of g.
            g.matmul_t_acc(&wv, sink.accum(xid));
            xv.t_matmul_acc(g, sink.accum(wid));
            let gb = sink.accum(bid);
            for r in 0..g.rows() {
                for (o, &gi) in gb.data_mut().iter_mut().zip(g.row(r)) {
                    *o += gi;
                }
            }
        })),
    )
}

/// Add a row vector `bias [d]` to every row of `a [n, d]`.
pub fn add_bias<'t>(a: Var<'t>, bias: Var<'t>) -> Var<'t> {
    same_tape(a, bias);
    let av = a.value();
    let bv = bias.value();
    assert_eq!(
        av.cols(),
        bv.len(),
        "add_bias: {:?} + {:?}",
        av.shape(),
        bv.shape()
    );
    let mut y = (*av).clone();
    let n = av.rows();
    for r in 0..n {
        for (o, &b) in y.row_mut(r).iter_mut().zip(bv.data()) {
            *o += b;
        }
    }
    let (aid, bid) = (a.id(), bias.id());
    a.tape().push(
        y,
        OpMeta::new("add_bias", vec![aid, bid]),
        Some(Box::new(move |g, sink| {
            sink.add(aid, g);
            // bias gradient: column sums of g
            let gb = sink.accum(bid);
            for r in 0..g.rows() {
                for (o, &gi) in gb.data_mut().iter_mut().zip(g.row(r)) {
                    *o += gi;
                }
            }
        })),
    )
}

/// Multiply every row of `a [n, d]` elementwise by vector `v [d]`.
pub fn mul_row_broadcast<'t>(a: Var<'t>, v: Var<'t>) -> Var<'t> {
    same_tape(a, v);
    let av = a.value();
    let vv = v.value();
    assert_eq!(av.cols(), vv.len());
    let mut y = (*av).clone();
    for r in 0..av.rows() {
        for (o, &m) in y.row_mut(r).iter_mut().zip(vv.data()) {
            *o *= m;
        }
    }
    let (aid, vid) = (a.id(), v.id());
    let d = vv.len();
    a.tape().push(
        y,
        OpMeta::new("mul_row_broadcast", vec![aid, vid]),
        Some(Box::new(move |g, sink| {
            {
                let ga = sink.accum(aid);
                for r in 0..g.rows() {
                    let grow = g.row(r);
                    let out = &mut ga.data_mut()[r * d..(r + 1) * d];
                    for j in 0..d {
                        out[j] += grow[j] * vv.data()[j];
                    }
                }
            }
            let gv = sink.accum(vid);
            for r in 0..g.rows() {
                let grow = g.row(r);
                let arow = av.row(r);
                for j in 0..d {
                    gv.data_mut()[j] += grow[j] * arow[j];
                }
            }
        })),
    )
}

/// Sum of all elements, as a scalar var.
pub fn sum_all(a: Var<'_>) -> Var<'_> {
    let av = a.value();
    let aid = a.id();
    a.tape().push(
        Array::scalar(av.sum()),
        OpMeta::new("sum_all", vec![aid]),
        Some(Box::new(move |g, sink| {
            let gi = g.data()[0];
            for o in sink.accum(aid).data_mut() {
                *o += gi;
            }
        })),
    )
}

/// Mean of all elements, as a scalar var.
pub fn mean_all(a: Var<'_>) -> Var<'_> {
    let n = a.value().len() as f32;
    scale(sum_all(a), 1.0 / n)
}

/// Per-row sums of a 2-D array `[n, d] -> [n]`.
pub fn row_sum(a: Var<'_>) -> Var<'_> {
    let av = a.value();
    assert_eq!(av.ndim(), 2, "row_sum expects 2-D");
    let n = av.shape()[0];
    let mut y = Array::zeros(&[n]);
    for r in 0..n {
        y.data_mut()[r] = av.row(r).iter().sum();
    }
    let aid = a.id();
    a.tape().push(
        y,
        OpMeta::new("row_sum", vec![aid]),
        Some(Box::new(move |g, sink| {
            let ga = sink.accum(aid);
            for r in 0..n {
                let gr = g.data()[r];
                for o in ga.row_mut(r) {
                    *o += gr;
                }
            }
        })),
    )
}

/// Per-row mean of a 2-D array `[n, d] -> [n]`.
pub fn row_mean(a: Var<'_>) -> Var<'_> {
    let d = a.value().cols() as f32;
    scale(row_sum(a), 1.0 / d)
}

/// Reshape (gradient is reshaped back).
pub fn reshape<'t>(a: Var<'t>, shape: &[usize]) -> Var<'t> {
    let av = a.value();
    let y = (*av).clone().reshape(shape);
    let aid = a.id();
    a.tape().push(
        y,
        OpMeta::new("reshape", vec![aid]).with_iattrs(shape.to_vec()),
        Some(Box::new(move |g, sink| {
            // Row-major data is unchanged by reshape: flat accumulate.
            let ga = sink.accum(aid);
            for (o, &gi) in ga.data_mut().iter_mut().zip(g.data()) {
                *o += gi;
            }
        })),
    )
}

/// Concatenate 2-D vars along the column (feature) axis.
pub fn concat_cols<'t>(parts: &[Var<'t>]) -> Var<'t> {
    assert!(!parts.is_empty());
    let tape = parts[0].tape();
    for p in parts {
        same_tape(parts[0], *p);
    }
    let vals: Vec<Rc<Array>> = parts.iter().map(|p| p.value()).collect();
    let n = vals[0].rows();
    for v in &vals {
        assert_eq!(v.rows(), n, "concat_cols: row mismatch");
    }
    let widths: Vec<usize> = vals.iter().map(|v| v.cols()).collect();
    let total: usize = widths.iter().sum();
    let mut y = Array::zeros(&[n, total]);
    for r in 0..n {
        let out = y.row_mut(r);
        let mut off = 0;
        for (v, &w) in vals.iter().zip(&widths) {
            out[off..off + w].copy_from_slice(v.row(r));
            off += w;
        }
    }
    let ids: Vec<usize> = parts.iter().map(|p| p.id()).collect();
    tape.push(
        y,
        OpMeta::new("concat_cols", ids.clone()).with_iattrs(widths.clone()),
        Some(Box::new(move |g, sink| {
            let mut off = 0;
            for (&pid, &w) in ids.iter().zip(&widths) {
                let gp = sink.accum(pid);
                for r in 0..n {
                    for (o, &gi) in gp.row_mut(r).iter_mut().zip(&g.row(r)[off..off + w]) {
                        *o += gi;
                    }
                }
                off += w;
            }
        })),
    )
}

/// Select a column range `[start, end)` of a 2-D var.
pub fn slice_cols(a: Var<'_>, start: usize, end: usize) -> Var<'_> {
    let av = a.value();
    assert_eq!(av.ndim(), 2);
    let (n, d) = (av.shape()[0], av.shape()[1]);
    assert!(start <= end && end <= d, "slice_cols {start}..{end} of {d}");
    let w = end - start;
    let mut y = Array::zeros(&[n, w]);
    for r in 0..n {
        y.row_mut(r).copy_from_slice(&av.row(r)[start..end]);
    }
    let aid = a.id();
    a.tape().push(
        y,
        OpMeta::new("slice_cols", vec![aid]).with_iattrs(vec![start, end]),
        Some(Box::new(move |g, sink| {
            let ga = sink.accum(aid);
            for r in 0..n {
                for (o, &gi) in ga.row_mut(r)[start..end].iter_mut().zip(g.row(r)) {
                    *o += gi;
                }
            }
        })),
    )
}

/// Embedding lookup: gather rows of `table [v, d]` at `indices`, producing
/// `[indices.len(), d]`. Backward scatters gradients into the table rows.
pub fn gather_rows<'t>(table: Var<'t>, indices: &[usize]) -> Var<'t> {
    let tv = table.value();
    assert_eq!(tv.ndim(), 2, "gather_rows expects a 2-D table");
    let (v, d) = (tv.shape()[0], tv.shape()[1]);
    let mut y = Array::zeros(&[indices.len(), d]);
    for (r, &ix) in indices.iter().enumerate() {
        assert!(ix < v, "gather index {ix} out of range {v}");
        y.row_mut(r).copy_from_slice(tv.row(ix));
    }
    let idx = indices.to_vec();
    let tid = table.id();
    table.tape().push(
        y,
        OpMeta::new("gather_rows", vec![tid]).with_iattrs(vec![idx.len()]),
        Some(Box::new(move |g, sink| {
            let gt = sink.accum(tid);
            for (r, &ix) in idx.iter().enumerate() {
                for (o, &gi) in gt.row_mut(ix).iter_mut().zip(g.row(r)) {
                    *o += gi;
                }
            }
        })),
    )
}

/// Embedding lookup across the *touched* blocks of a row-partitioned table:
/// `blocks` are 2-D `[rows_b, d]` vars (the subset of a
/// [`BlockedParam`](crate::block::BlockedParam)'s blocks this batch
/// actually reads, in first-touch order) and `picks[r] = (slot, row)` names
/// output row `r` as row `row` of `blocks[slot]`. Produces
/// `[picks.len(), d]`.
///
/// Backward walks `picks` in output-row order, scattering `g.row(r)` into
/// the owning block's accumulator — the identical float-addition sequence
/// as dense [`gather_rows`] restricted to each block's rows, so gradients
/// are bit-identical to the unsharded layout. Blocks not passed in are not
/// parents of this node: they cost no tape value copy and no gradient
/// buffer.
pub fn gather_rows_blocked<'t>(blocks: &[Var<'t>], picks: &[(usize, usize)]) -> Var<'t> {
    assert!(!blocks.is_empty(), "gather_rows_blocked needs >= 1 block");
    let d = {
        let b0 = blocks[0].value();
        assert_eq!(b0.ndim(), 2, "gather_rows_blocked expects 2-D blocks");
        b0.shape()[1]
    };
    let mut y = Array::zeros(&[picks.len(), d]);
    for (r, &(slot, row)) in picks.iter().enumerate() {
        assert!(slot < blocks.len(), "block slot {slot} out of range");
        let bv = blocks[slot].value();
        assert_eq!(bv.ndim(), 2, "gather_rows_blocked expects 2-D blocks");
        assert_eq!(bv.shape()[1], d, "block column mismatch");
        assert!(
            row < bv.shape()[0],
            "row {row} out of range {} in block slot {slot}",
            bv.shape()[0]
        );
        y.row_mut(r).copy_from_slice(bv.row(row));
    }
    let ids: Vec<usize> = blocks.iter().map(|b| b.id()).collect();
    let picks_v = picks.to_vec();
    let backward_ids = ids.clone();
    blocks[0].tape().push(
        y,
        OpMeta::new("gather_rows_blocked", ids).with_iattrs(vec![picks_v.len()]),
        Some(Box::new(move |g, sink| {
            for (r, &(slot, row)) in picks_v.iter().enumerate() {
                let gb = sink.accum(backward_ids[slot]);
                for (o, &gi) in gb.row_mut(row).iter_mut().zip(g.row(r)) {
                    *o += gi;
                }
            }
        })),
    )
}

/// Row-wise softmax of a 2-D var.
pub fn softmax_rows(a: Var<'_>) -> Var<'_> {
    let av = a.value();
    assert_eq!(av.ndim(), 2);
    let (n, d) = (av.shape()[0], av.shape()[1]);
    let mut y = Array::zeros(&[n, d]);
    for r in 0..n {
        softmax_into(av.row(r), y.row_mut(r));
    }
    let yv = Rc::new(y.clone());
    let aid = a.id();
    a.tape().push(
        y,
        OpMeta::new("softmax_rows", vec![aid]),
        Some(Box::new(move |g, sink| {
            let ga = sink.accum(aid);
            for r in 0..n {
                let s = yv.row(r);
                let gr = g.row(r);
                let dot: f32 = s.iter().zip(gr).map(|(&si, &gi)| si * gi).sum();
                for (o, (&si, &gi)) in ga.row_mut(r).iter_mut().zip(s.iter().zip(gr)) {
                    *o += si * (gi - dot);
                }
            }
        })),
    )
}

/// Row-wise log-softmax of a 2-D var.
pub fn log_softmax_rows(a: Var<'_>) -> Var<'_> {
    let av = a.value();
    assert_eq!(av.ndim(), 2);
    let (n, d) = (av.shape()[0], av.shape()[1]);
    let mut y = Array::zeros(&[n, d]);
    for r in 0..n {
        let row = av.row(r);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        for (o, &x) in y.row_mut(r).iter_mut().zip(row) {
            *o = x - lse;
        }
    }
    let yv = Rc::new(y.clone());
    let aid = a.id();
    a.tape().push(
        y,
        OpMeta::new("log_softmax_rows", vec![aid]),
        Some(Box::new(move |g, sink| {
            let ga = sink.accum(aid);
            for r in 0..n {
                let gr = g.row(r);
                let gsum: f32 = gr.iter().sum();
                for (o, (&lp, &gi)) in ga.row_mut(r).iter_mut().zip(yv.row(r).iter().zip(gr)) {
                    *o += gi - lp.exp() * gsum;
                }
            }
        })),
    )
}

/// Pick one element per row: `out[i] = a[i, indices[i]]`, producing `[n]`.
pub fn pick_per_row<'t>(a: Var<'t>, indices: &[usize]) -> Var<'t> {
    let av = a.value();
    assert_eq!(av.ndim(), 2);
    let (n, d) = (av.shape()[0], av.shape()[1]);
    assert_eq!(indices.len(), n, "pick_per_row: one index per row");
    let mut y = Array::zeros(&[n]);
    for (r, &ix) in indices.iter().enumerate() {
        assert!(ix < d, "pick index {ix} out of range {d}");
        y.data_mut()[r] = av.at2(r, ix);
    }
    let idx = indices.to_vec();
    let aid = a.id();
    a.tape().push(
        y,
        OpMeta::new("pick_per_row", vec![aid]).with_iattrs(vec![idx.len()]),
        Some(Box::new(move |g, sink| {
            let ga = sink.accum(aid);
            for (r, &ix) in idx.iter().enumerate() {
                *ga.at2_mut(r, ix) += g.data()[r];
            }
        })),
    )
}

/// Mean cross-entropy of `logits [n, d]` against integer `targets [n]`.
pub fn cross_entropy_mean<'t>(logits: Var<'t>, targets: &[usize]) -> Var<'t> {
    let lp = log_softmax_rows(logits);
    let picked = pick_per_row(lp, targets);
    neg(mean_all(picked))
}

/// Mask rows: multiply row `i` of `a` by `mask[i]` (a constant per-row weight).
/// Used to zero-out padded steps in batched sequence losses.
pub fn mask_rows<'t>(a: Var<'t>, mask: &[f32]) -> Var<'t> {
    let av = a.value();
    let n = av.rows();
    assert_eq!(mask.len(), n);
    let mut y = (*av).clone();
    for (r, &m) in mask.iter().enumerate() {
        for o in y.row_mut(r) {
            *o *= m;
        }
    }
    let mask = mask.to_vec();
    let aid = a.id();
    a.tape().push(
        y,
        OpMeta::new("mask_rows", vec![aid]),
        Some(Box::new(move |g, sink| {
            let ga = sink.accum(aid);
            for (r, &m) in mask.iter().enumerate() {
                for (o, &gi) in ga.row_mut(r).iter_mut().zip(g.row(r)) {
                    *o += gi * m;
                }
            }
        })),
    )
}

/// Softmax over a slice into an output slice (shared helper, not recorded).
pub fn softmax_into(input: &[f32], out: &mut [f32]) {
    let m = input.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0;
    for (o, &x) in out.iter_mut().zip(input) {
        let e = (x - m).exp();
        *o = e;
        z += e;
    }
    for o in out.iter_mut() {
        *o /= z;
    }
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)] // explicit clones read clearer in grad checks
mod tests {
    use super::*;
    use crate::check::grad_check;
    use crate::tape::Tape;

    fn arr(shape: &[usize], v: Vec<f32>) -> Array {
        Array::from_vec(shape, v)
    }

    #[test]
    fn grad_elementwise_binary() {
        let a = arr(&[2, 2], vec![0.5, -1.0, 2.0, 0.3]);
        let b = arr(&[2, 2], vec![1.5, 0.7, -0.2, 2.0]);
        grad_check(&[a.clone(), b.clone()], |_, v| sum_all(add(v[0], v[1])));
        grad_check(&[a.clone(), b.clone()], |_, v| sum_all(sub(v[0], v[1])));
        grad_check(&[a.clone(), b.clone()], |_, v| sum_all(mul(v[0], v[1])));
        grad_check(&[a, b], |_, v| sum_all(div(v[0], v[1])));
    }

    #[test]
    fn grad_elementwise_unary() {
        let a = arr(&[5], vec![0.5, -1.0, 2.0, 0.3, -0.7]);
        grad_check(&[a.clone()], |_, v| sum_all(sigmoid(v[0])));
        grad_check(&[a.clone()], |_, v| sum_all(tanh(v[0])));
        grad_check(&[a.clone()], |_, v| sum_all(exp(v[0])));
        grad_check(&[a.clone()], |_, v| sum_all(square(v[0])));
        grad_check(&[a.clone()], |_, v| sum_all(softplus(v[0])));
        grad_check(&[a.clone()], |_, v| sum_all(leaky_relu(v[0], 0.1)));
        grad_check(&[a.clone()], |_, v| sum_all(scale(v[0], 2.5)));
        grad_check(&[a], |_, v| sum_all(add_scalar(v[0], -0.3)));
        let pos = arr(&[4], vec![0.5, 1.0, 2.0, 0.3]);
        grad_check(&[pos.clone()], |_, v| sum_all(ln(v[0])));
        grad_check(&[pos.clone()], |_, v| sum_all(sqrt(v[0])));
        grad_check(&[pos], |_, v| sum_all(reciprocal(v[0])));
    }

    #[test]
    fn grad_matmul() {
        let a = arr(&[2, 3], vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4]);
        let b = arr(&[3, 2], vec![1.5, 0.7, -0.2, 2.0, 0.1, -1.2]);
        grad_check(&[a, b], |_, v| sum_all(matmul(v[0], v[1])));
    }

    #[test]
    fn grad_matmul_weighted_loss() {
        // weight the output so matmul gradients are non-uniform
        let a = arr(&[2, 3], vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4]);
        let b = arr(&[3, 2], vec![1.5, 0.7, -0.2, 2.0, 0.1, -1.2]);
        grad_check(&[a, b], |_, v| {
            let y = matmul(v[0], v[1]);
            sum_all(square(y))
        });
    }

    #[test]
    fn grad_affine() {
        let x = arr(&[2, 3], vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4]);
        let w = arr(&[3, 2], vec![1.5, 0.7, -0.2, 2.0, 0.1, -1.2]);
        let b = arr(&[2], vec![0.8, -0.6]);
        grad_check(&[x.clone(), w.clone(), b.clone()], |_, v| {
            sum_all(affine(v[0], v[1], v[2]))
        });
        // Weighted loss so all three gradients are non-uniform.
        grad_check(&[x, w, b], |_, v| sum_all(square(affine(v[0], v[1], v[2]))));
    }

    #[test]
    fn affine_matches_unfused() {
        let t = Tape::new();
        let x = t.leaf(arr(&[3, 2], vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4]));
        let w = t.leaf(arr(&[2, 2], vec![1.5, 0.7, -0.2, 2.0]));
        let b = t.leaf(arr(&[2], vec![0.8, -0.6]));
        let fused = affine(x, w, b);
        let unfused = add_bias(matmul(x, w), b);
        assert_eq!(fused.value().data(), unfused.value().data());
    }

    #[test]
    fn grad_bias_and_broadcast() {
        let a = arr(&[3, 2], vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4]);
        let b = arr(&[2], vec![0.8, -0.6]);
        grad_check(&[a.clone(), b.clone()], |_, v| {
            sum_all(square(add_bias(v[0], v[1])))
        });
        grad_check(&[a, b], |_, v| {
            sum_all(square(mul_row_broadcast(v[0], v[1])))
        });
    }

    #[test]
    fn grad_reductions() {
        let a = arr(&[2, 3], vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4]);
        grad_check(&[a.clone()], |_, v| mean_all(square(v[0])));
        grad_check(&[a.clone()], |_, v| sum_all(square(row_sum(v[0]))));
        grad_check(&[a], |_, v| sum_all(square(row_mean(v[0]))));
    }

    #[test]
    fn grad_softmax_family() {
        let a = arr(&[2, 4], vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4, 0.0, 0.9]);
        grad_check(&[a.clone()], |_, v| sum_all(square(softmax_rows(v[0]))));
        grad_check(&[a.clone()], |_, v| sum_all(square(log_softmax_rows(v[0]))));
        grad_check(&[a], |_, v| cross_entropy_mean(v[0], &[2, 1]));
    }

    #[test]
    fn grad_structural_ops() {
        let a = arr(&[2, 3], vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4]);
        let b = arr(&[2, 2], vec![1.5, 0.7, -0.2, 2.0]);
        grad_check(&[a.clone(), b], |_, v| {
            sum_all(square(concat_cols(&[v[0], v[1]])))
        });
        grad_check(&[a.clone()], |_, v| sum_all(square(slice_cols(v[0], 1, 3))));
        grad_check(&[a.clone()], |_, v| sum_all(square(reshape(v[0], &[3, 2]))));
        grad_check(&[a.clone()], |_, v| {
            sum_all(square(pick_per_row(v[0], &[0, 2])))
        });
        grad_check(&[a.clone()], |_, v| {
            sum_all(square(mask_rows(v[0], &[1.0, 0.0])))
        });
        grad_check(&[a], |_, v| sum_all(square(gather_rows(v[0], &[1, 0, 1]))));
    }

    #[test]
    fn grad_gather_rows_blocked() {
        let b0 = arr(&[2, 3], vec![0.5, -1.0, 2.0, 0.3, 1.1, -0.4]);
        let b1 = arr(&[2, 3], vec![1.5, 0.7, -0.2, 2.0, -0.9, 0.6]);
        grad_check(&[b0, b1], |_, v| {
            // rows 1, 2, 1, 0 of the logical 4-row table, with repeats
            let picks = [(0, 1), (1, 0), (0, 1), (0, 0)];
            sum_all(square(gather_rows_blocked(&[v[0], v[1]], &picks)))
        });
    }

    /// The blocked gather must be bit-identical — forward values *and*
    /// scattered gradients — to dense `gather_rows` over the concatenated
    /// table.
    #[test]
    fn gather_rows_blocked_matches_dense_bitwise() {
        let data: Vec<f32> = (0..15).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let idx = [4usize, 0, 3, 4, 2, 1, 4];

        let t1 = Tape::new();
        let dense = t1.leaf(arr(&[5, 3], data.clone()));
        let yd = gather_rows(dense, &idx);
        let gd = t1.backward(sum_all(square(yd)));

        let t2 = Tape::new();
        let b0 = t2.leaf(arr(&[2, 3], data[..6].to_vec()));
        let b1 = t2.leaf(arr(&[2, 3], data[6..12].to_vec()));
        let b2 = t2.leaf(arr(&[1, 3], data[12..].to_vec()));
        let picks: Vec<(usize, usize)> = idx.iter().map(|&i| (i / 2, i % 2)).collect();
        let yb = gather_rows_blocked(&[b0, b1, b2], &picks);
        assert_eq!(
            yd.value()
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            yb.value()
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        let gb = t2.backward(sum_all(square(yb)));
        let dense_grad = gd.expect(dense);
        let blocked: Vec<u32> = gb
            .expect(b0)
            .data()
            .iter()
            .chain(gb.expect(b1).data().iter())
            .chain(gb.expect(b2).data().iter())
            .map(|v| v.to_bits())
            .collect();
        let dense_bits: Vec<u32> = dense_grad.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(dense_bits, blocked);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tape::new();
        let a = t.leaf(arr(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let s = softmax_rows(a);
        let v = s.value();
        for r in 0..2 {
            let sum: f32 = v.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let t = Tape::new();
        let logits = t.leaf(arr(&[1, 3], vec![1.0, 2.0, 3.0]));
        let ce = cross_entropy_mean(logits, &[2]);
        // -log softmax(3 | [1,2,3])
        let z: f32 = (1f32.exp() + 2f32.exp() + 3f32.exp()).ln();
        let want = z - 3.0;
        assert!((ce.scalar_value() - want).abs() < 1e-5);
    }

    #[test]
    fn gather_is_lookup() {
        let t = Tape::new();
        let table = t.leaf(arr(&[3, 2], vec![1., 2., 3., 4., 5., 6.]));
        let g = gather_rows(table, &[2, 0]);
        assert_eq!(g.value().data(), &[5., 6., 1., 2.]);
    }

    #[test]
    fn mask_rows_zeroes() {
        let t = Tape::new();
        let a = t.leaf(arr(&[2, 2], vec![1., 2., 3., 4.]));
        let m = mask_rows(a, &[1.0, 0.0]);
        assert_eq!(m.value().data(), &[1., 2., 0., 0.]);
    }
}
