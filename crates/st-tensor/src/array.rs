//! Dense row-major `f32` n-dimensional array.
//!
//! This is the storage type underlying the autodiff engine. It is deliberately
//! simple: contiguous `Vec<f32>` data plus a shape. All the operations needed
//! by DeepST (matrix products, broadcasts, convolutions) are implemented as
//! straightforward loops; at the model sizes used in this reproduction they
//! are fast enough, and the simplicity makes the gradient checks in
//! [`crate::ops`] trustworthy.

use std::fmt;

/// A dense, row-major array of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Array {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Array {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Array{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:?}, ...]", &self.data[..8])
        }
    }
}

impl Array {
    /// Create an array from a shape and raw data. Panics if the element count
    /// implied by `shape` does not match `data.len()`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {:?} implies {} elements, got {}",
            shape,
            n,
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Wrap a recycled buffer (already sized and zeroed by the tape's pool)
    /// without re-validating beyond a debug assertion.
    pub(crate) fn from_buffer(shape: &[usize], data: Vec<f32>) -> Self {
        debug_assert_eq!(shape.iter().product::<usize>(), data.len());
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A 1-D array over `data`.
    pub fn vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(&[n], data)
    }

    /// A scalar (0-d is represented as shape `[1]`).
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(&[1], vec![v])
    }

    /// All-zero array of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// All-one array of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Array of the given shape filled with `v`.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![v; n],
        }
    }

    /// Zero array with the same shape as `other`.
    pub fn zeros_like(other: &Array) -> Self {
        Self::zeros(&other.shape)
    }

    /// One array with the same shape as `other`.
    pub fn ones_like(other: &Array) -> Self {
        Self::ones(&other.shape)
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut a = Self::zeros(&[n, n]);
        for i in 0..n {
            a.data[i * n + i] = 1.0;
        }
        a
    }

    /// The shape of the array.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The number of rows when viewed as a matrix (first dimension).
    #[inline]
    pub fn rows(&self) -> usize {
        self.shape.first().copied().unwrap_or(1)
    }

    /// The number of columns when viewed as a matrix (product of trailing dims).
    #[inline]
    pub fn cols(&self) -> usize {
        if self.shape.len() <= 1 {
            self.shape.first().copied().unwrap_or(1)
        } else {
            self.shape[1..].iter().product()
        }
    }

    /// Reinterpret with a new shape; element count must match.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Element access for 2-D arrays.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for 2-D arrays.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 2);
        let c_stride = self.shape[1];
        &mut self.data[r * c_stride + c]
    }

    /// Get the `r`-th row of a 2-D array as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// Get the `r`-th row of a 2-D array as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Elementwise binary operation producing a new array. Shapes must match.
    pub fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Array, f: F) -> Array {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Array {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise unary map producing a new array.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Array {
        Array {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// In-place `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Array) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other` (same shape).
    pub fn axpy(&mut self, scale: f32, other: &Array) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// In-place multiply every element by `s`.
    pub fn scale_mut(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Matrix product `self(m×k) · other(k×n)`.
    ///
    /// Dispatches to the cache-blocked packing kernel in [`crate::gemm`];
    /// see that module for the blocking scheme and determinism notes.
    pub fn matmul(&self, other: &Array) -> Array {
        assert_eq!(
            self.ndim(),
            2,
            "matmul lhs must be 2-D, got {:?}",
            self.shape
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul rhs must be 2-D, got {:?}",
            other.shape
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul inner dims: {:?} x {:?}",
            self.shape, other.shape
        );
        let mut out = Array::zeros(&[m, n]);
        crate::gemm::gemm(m, k, n, &self.data, &other.data, &mut out.data, false);
        out
    }

    /// `out += self · other`, reusing `out`'s allocation. Backward passes
    /// accumulate gradients through this to avoid temporary products.
    pub fn matmul_acc(&self, other: &Array, out: &mut Array) {
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_acc inner dims: {:?} x {:?}",
            self.shape, other.shape
        );
        assert_eq!(out.shape(), [m, n]);
        crate::gemm::gemm(m, k, n, &self.data, &other.data, &mut out.data, true);
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose
    /// (the kernel transposes into reusable scratch, not a fresh Array).
    pub fn t_matmul(&self, other: &Array) -> Array {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "t_matmul inner dims: {:?}ᵀ x {:?}",
            self.shape, other.shape
        );
        let mut out = Array::zeros(&[m, n]);
        crate::gemm::gemm_at(m, k, n, &self.data, &other.data, &mut out.data, false);
        out
    }

    /// `out += selfᵀ · other`, reusing `out`'s allocation.
    pub fn t_matmul_acc(&self, other: &Array, out: &mut Array) {
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "t_matmul_acc inner dims: {:?}ᵀ x {:?}",
            self.shape, other.shape
        );
        assert_eq!(out.shape(), [m, n]);
        crate::gemm::gemm_at(m, k, n, &self.data, &other.data, &mut out.data, true);
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose
    /// (the transpose is folded into the kernel's B-packing pass).
    pub fn matmul_t(&self, other: &Array) -> Array {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_t inner dims: {:?} x {:?}ᵀ",
            self.shape, other.shape
        );
        let mut out = Array::zeros(&[m, n]);
        crate::gemm::gemm_bt(m, k, n, &self.data, &other.data, &mut out.data, false);
        out
    }

    /// `out += self · otherᵀ`, reusing `out`'s allocation.
    pub fn matmul_t_acc(&self, other: &Array, out: &mut Array) {
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_t_acc inner dims: {:?} x {:?}ᵀ",
            self.shape, other.shape
        );
        assert_eq!(out.shape(), [m, n]);
        crate::gemm::gemm_bt(m, k, n, &self.data, &other.data, &mut out.data, true);
    }

    /// The original triple-loop `matmul`: kept as the correctness oracle
    /// for the packed kernels.
    #[cfg(test)]
    pub(crate) fn matmul_naive(&self, other: &Array) -> Array {
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        assert_eq!(k, other.shape[0]);
        let mut out = Array::zeros(&[m, n]);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Oracle for [`Array::t_matmul`].
    #[cfg(test)]
    pub(crate) fn t_matmul_naive(&self, other: &Array) -> Array {
        let (k, m) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        assert_eq!(k, other.shape[0]);
        let mut out = Array::zeros(&[m, n]);
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                let o_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Oracle for [`Array::matmul_t`].
    #[cfg(test)]
    pub(crate) fn matmul_t_naive(&self, other: &Array) -> Array {
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[0];
        assert_eq!(k, other.shape[1]);
        let mut out = Array::zeros(&[m, n]);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut s = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    s += a * b;
                }
                out.data[i * n + j] = s;
            }
        }
        out
    }

    /// Transposed copy of a 2-D array.
    pub fn transpose(&self) -> Array {
        assert_eq!(self.ndim(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Array::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element. Panics on empty arrays.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Panics on empty arrays.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of the data.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Squared L2 norm *continued from* a running accumulator: the serial
    /// fold `acc + Σ vᵢ²` in element order. Chaining this across the blocks
    /// of a row-partitioned tensor reproduces, bit for bit, [`Array::sq_norm`]
    /// of the concatenated dense tensor — the float additions happen in the
    /// identical order. (`sq_norm()` is `sq_norm_acc(0.0)`.)
    pub fn sq_norm_acc(&self, acc: f32) -> f32 {
        self.data.iter().fold(acc, |a, &v| a + v * v)
    }

    /// `true` iff all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference against another array of the same shape.
    pub fn max_abs_diff(&self, other: &Array) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Stack 1-D arrays (all the same length) into a 2-D `[n, d]` array.
    pub fn stack_rows(rows: &[Array]) -> Array {
        assert!(!rows.is_empty(), "stack_rows on empty slice");
        let d = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * d);
        for r in rows {
            assert_eq!(r.len(), d, "stack_rows rows must have equal length");
            data.extend_from_slice(&r.data);
        }
        Array::from_vec(&[rows.len(), d], data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let a = Array::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.shape(), &[2, 3]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.len(), 6);
        assert_eq!(a.at2(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn bad_shape_panics() {
        let _ = Array::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn zeros_ones_full_eye() {
        assert_eq!(Array::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Array::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Array::full(&[3], 2.5).sum(), 7.5);
        let e = Array::eye(3);
        assert_eq!(e.at2(0, 0), 1.0);
        assert_eq!(e.at2(0, 1), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Array::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Array::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Array::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let i = Array::eye(2);
        assert_eq!(a.matmul(&i).data(), a.data());
        assert_eq!(i.matmul(&a).data(), a.data());
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Array::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Array::from_vec(&[2, 4], vec![1., 0., 2., -1., 3., 1., 0., 2.]);
        // aᵀ·b via t_matmul matches explicit transpose.
        let want = a.transpose().matmul(&b);
        let got = a.t_matmul(&b);
        assert!(want.max_abs_diff(&got) < 1e-6);
        // a·cᵀ via matmul_t matches explicit transpose.
        let c = Array::from_vec(&[5, 3], (0..15).map(|v| v as f32).collect());
        let want = a.matmul(&c.transpose());
        let got = a.matmul_t(&c);
        assert!(want.max_abs_diff(&got) < 1e-6);
    }

    #[test]
    fn zip_map_axpy() {
        let a = Array::vector(vec![1., 2., 3.]);
        let b = Array::vector(vec![4., 5., 6.]);
        assert_eq!(a.zip(&b, |x, y| x * y).data(), &[4., 10., 18.]);
        assert_eq!(a.map(|x| x + 1.0).data(), &[2., 3., 4.]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[9., 12., 15.]);
    }

    #[test]
    fn reductions() {
        let a = Array::from_vec(&[2, 2], vec![1., -3., 2., 0.]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.min(), -3.0);
        assert_eq!(a.argmax(), 2);
        assert_eq!(a.sq_norm(), 14.0);
        assert!(a.all_finite());
    }

    #[test]
    fn nan_detected() {
        let a = Array::vector(vec![1.0, f32::NAN]);
        assert!(!a.all_finite());
    }

    #[test]
    fn stack_rows_works() {
        let rows = vec![Array::vector(vec![1., 2.]), Array::vector(vec![3., 4.])];
        let m = Array::stack_rows(&rows);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn reshape_roundtrip() {
        let a = Array::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect());
        let b = a.clone().reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn row_access() {
        let a = Array::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.row(1), &[4., 5., 6.]);
    }

    mod packed_vs_naive {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Packed matmul equals the naive triple loop (elementwise to
            /// f32 rounding) for arbitrary shapes including kernel edges.
            #[test]
            fn matmul_matches_oracle(m in 1usize..=13, k in 1usize..=17, n in 1usize..=19,
                                     data in proptest::collection::vec(-3.0f32..3.0, 13 * 17 + 17 * 19)) {
                let a = Array::from_vec(&[m, k], data[..m * k].to_vec());
                let b = Array::from_vec(&[k, n], data[13 * 17..13 * 17 + k * n].to_vec());
                let fast = a.matmul(&b);
                let slow = a.matmul_naive(&b);
                prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
            }

            /// Packed `selfᵀ·other` equals its oracle.
            #[test]
            fn t_matmul_matches_oracle(k in 1usize..=13, m in 1usize..=17, n in 1usize..=19,
                                       data in proptest::collection::vec(-3.0f32..3.0, 13 * 17 + 13 * 19)) {
                let a = Array::from_vec(&[k, m], data[..k * m].to_vec());
                let b = Array::from_vec(&[k, n], data[13 * 17..13 * 17 + k * n].to_vec());
                let fast = a.t_matmul(&b);
                let slow = a.t_matmul_naive(&b);
                prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
            }

            /// Packed `self·otherᵀ` equals its oracle.
            #[test]
            fn matmul_t_matches_oracle(m in 1usize..=13, k in 1usize..=17, n in 1usize..=19,
                                       data in proptest::collection::vec(-3.0f32..3.0, 13 * 17 + 19 * 17)) {
                let a = Array::from_vec(&[m, k], data[..m * k].to_vec());
                let b = Array::from_vec(&[n, k], data[13 * 17..13 * 17 + n * k].to_vec());
                let fast = a.matmul_t(&b);
                let slow = a.matmul_t_naive(&b);
                prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
            }
        }
    }
}
