//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] is an append-only arena of computation nodes. Each operation in
//! [`crate::ops`] pushes one node holding the forward value plus a backward
//! closure that distributes an incoming gradient to the node's parents.
//! Because the tape is append-only, node ids are already a topological order,
//! so backpropagation is a single reverse sweep — no explicit graph sort.
//!
//! The tape is intended to live for one forward/backward pass (one minibatch)
//! and then be dropped; parameters persist outside of it (see
//! [`crate::param`]).

use std::cell::RefCell;
use std::rc::Rc;

use crate::array::Array;

/// Backward function: given the gradient flowing into this node, emit
/// gradient contributions `(parent_id, grad)` through the sink callback.
type BackwardFn = Box<dyn Fn(&Array, &mut dyn FnMut(usize, Array))>;

struct Node {
    value: Rc<Array>,
    backward: Option<BackwardFn>,
}

/// The autodiff tape. Create one per training step.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

/// A handle to a value recorded on a [`Tape`].
///
/// `Var` is `Copy`; all real state lives in the tape. The lifetime ties the
/// handle to its tape so handles cannot outlive or cross tapes.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Record a leaf value (input or parameter) and return its handle.
    pub fn leaf(&self, value: Array) -> Var<'_> {
        self.push(value, None)
    }

    /// Record a constant — identical to [`Tape::leaf`]; gradients flowing
    /// into it are simply retained (and usually ignored).
    pub fn constant(&self, value: Array) -> Var<'_> {
        self.leaf(value)
    }

    pub(crate) fn push(&self, value: Array, backward: Option<BackwardFn>) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node { value: Rc::new(value), backward });
        Var { tape: self, id }
    }

    pub(crate) fn value_of(&self, id: usize) -> Rc<Array> {
        Rc::clone(&self.nodes.borrow()[id].value)
    }

    /// Run backpropagation from `root` (gradient seeded with ones) and return
    /// the gradient of every node that received one.
    ///
    /// `root` is typically the scalar loss. Seeding with ones on a non-scalar
    /// root computes the gradient of the *sum* of its elements.
    pub fn backward(&self, root: Var<'_>) -> Gradients {
        assert!(std::ptr::eq(root.tape, self), "var from a different tape");
        let nodes = self.nodes.borrow();
        let mut grads: Vec<Option<Array>> = (0..nodes.len()).map(|_| None).collect();
        grads[root.id] = Some(Array::ones_like(&nodes[root.id].value));
        for id in (0..=root.id).rev() {
            // Take the gradient out so the sink closure can borrow `grads`.
            let Some(g) = grads[id].take() else { continue };
            if let Some(f) = &nodes[id].backward {
                f(&g, &mut |pid: usize, pg: Array| {
                    debug_assert!(pid < id, "backward edge must point to earlier node");
                    match &mut grads[pid] {
                        Some(acc) => acc.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                });
            }
            grads[id] = Some(g);
        }
        Gradients { grads }
    }
}

/// The result of [`Tape::backward`]: per-node gradients.
pub struct Gradients {
    grads: Vec<Option<Array>>,
}

impl Gradients {
    /// The gradient of the root with respect to `var`, if any reached it.
    pub fn get(&self, var: Var<'_>) -> Option<&Array> {
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }

    /// Like [`Gradients::get`] but panics with a useful message when absent.
    pub fn expect(&self, var: Var<'_>) -> &Array {
        self.get(var)
            .unwrap_or_else(|| panic!("no gradient reached node {}", var.id))
    }

    /// Gradient by raw node id (used by the parameter binding machinery).
    pub fn by_id(&self, id: usize) -> Option<&Array> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }
}

impl<'t> Var<'t> {
    /// The tape this variable belongs to.
    #[inline]
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// The raw node id on the tape.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The forward value of this node (shared, cheap to clone).
    pub fn value(&self) -> Rc<Array> {
        self.tape.value_of(self.id)
    }

    /// The shape of the forward value.
    pub fn shape(&self) -> Vec<usize> {
        self.value().shape().to_vec()
    }

    /// Convenience: the forward value as a scalar. Panics if not length-1.
    pub fn scalar_value(&self) -> f32 {
        let v = self.value();
        assert_eq!(v.len(), 1, "scalar_value on shape {:?}", v.shape());
        v.data()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn leaf_has_no_backward_effect() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![1.0, 2.0]));
        let g = t.backward(x);
        assert_eq!(g.expect(x).data(), &[1.0, 1.0]);
    }

    #[test]
    fn chain_of_adds_accumulates() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![1.0, 2.0]));
        // y = x + x + x  =>  dy/dx = 3
        let y = ops::add(ops::add(x, x), x);
        let g = t.backward(y);
        assert_eq!(g.expect(x).data(), &[3.0, 3.0]);
        assert_eq!(y.value().data(), &[3.0, 6.0]);
    }

    #[test]
    fn gradient_does_not_flow_past_root() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![1.0]));
        let y = ops::scale(x, 2.0);
        let _z = ops::scale(y, 10.0); // recorded after y, not part of y's history
        let g = t.backward(y);
        assert_eq!(g.expect(x).data(), &[2.0]);
    }

    #[test]
    fn unreached_nodes_have_no_gradient() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![1.0]));
        let other = t.leaf(Array::vector(vec![5.0]));
        let y = ops::scale(x, 3.0);
        let g = t.backward(y);
        assert!(g.get(other).is_none());
    }
}
