//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] is an append-only arena of computation nodes. Each operation in
//! [`crate::ops`] pushes one node holding the forward value plus a backward
//! closure that accumulates gradient into its parents through a [`GradSink`].
//! Because the tape is append-only, node ids are already a topological order,
//! so backpropagation is a single reverse sweep — no explicit graph sort.
//!
//! # Memory reuse
//!
//! A tape is built once per minibatch, but training runs thousands of
//! minibatches with identical graph shapes. Two mechanisms keep the
//! steady-state allocation count at zero for the gradient path:
//!
//! * [`Tape::reset`] clears the node arena while keeping its allocation, so
//!   one `Tape` serves a whole epoch.
//! * Gradient accumulators handed out during [`Tape::backward`] come from a
//!   per-tape free-list of `f32` buffers; when the returned [`Gradients`] is
//!   dropped, every buffer goes back on the list. After the first minibatch,
//!   backward passes recycle buffers instead of touching the allocator.
//!
//! The tape is deliberately `!Send` (nodes are `Rc`-shared with op
//! closures): one tape belongs to one thread. Data-parallel training gives
//! each worker its own tape — see `st-core`'s `parallel` module.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::array::Array;

/// Backward function: given the gradient flowing into this node, accumulate
/// contributions into parent gradients via the sink.
pub(crate) type BackwardFn = Box<dyn Fn(&Array, &mut GradSink<'_>)>;

/// Metadata describing the operation that produced a tape node.
///
/// Every op in [`crate::ops`] and [`crate::conv`] records one of these
/// alongside its value and backward closure. The metadata is what makes the
/// recorded graph *inspectable*: [`crate::analyze`] re-derives shapes, signs
/// and gradient reachability from op names, parent edges and attributes
/// alone, without touching the kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct OpMeta {
    /// Op name, e.g. `"matmul"`, `"ln"`, `"leaf"`. The vocabulary is the
    /// rule table in [`crate::analyze`].
    pub name: &'static str,
    /// Parent node ids, in operand order (empty for leaves).
    pub parents: Vec<usize>,
    /// Op-specific integer attributes (slice bounds, conv stride/pad,
    /// gather index count, reshape target dims).
    pub iattrs: Vec<usize>,
    /// Op-specific scalar attributes (the constant of `scale`/`add_scalar`,
    /// the slope of `leaky_relu`).
    pub sattrs: Vec<f32>,
}

impl OpMeta {
    /// Metadata for an op with the given name and parents, no attributes.
    pub fn new(name: &'static str, parents: Vec<usize>) -> Self {
        Self {
            name,
            parents,
            iattrs: Vec::new(),
            sattrs: Vec::new(),
        }
    }

    /// Metadata for a leaf (input or parameter).
    pub fn leaf() -> Self {
        Self::new("leaf", Vec::new())
    }

    /// Metadata for an explicitly-constant leaf.
    pub fn constant() -> Self {
        Self::new("const", Vec::new())
    }

    /// Attach integer attributes.
    pub fn with_iattrs(mut self, iattrs: Vec<usize>) -> Self {
        self.iattrs = iattrs;
        self
    }

    /// Attach scalar attributes.
    pub fn with_sattrs(mut self, sattrs: Vec<f32>) -> Self {
        self.sattrs = sattrs;
        self
    }
}

struct Node {
    value: Rc<Array>,
    meta: OpMeta,
    backward: Option<BackwardFn>,
}

thread_local! {
    /// Tapes currently alive on this thread (created minus dropped).
    static LIVE_TAPES: Cell<usize> = const { Cell::new(0) };
    /// Tapes ever created on this thread (monotonic).
    static CREATED_TAPES: Cell<usize> = const { Cell::new(0) };
}

/// The autodiff tape. Create one per worker thread and [`Tape::reset`] it
/// between minibatches.
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
    /// Free-list of gradient buffers, recycled across backward passes.
    pool: RefCell<Vec<Vec<f32>>>,
    /// Bytes currently held by node values + live gradient buffers.
    cur_bytes: Cell<usize>,
    /// High-water mark of `cur_bytes` over the tape's lifetime.
    peak_bytes: Cell<usize>,
}

impl Default for Tape {
    fn default() -> Self {
        LIVE_TAPES.with(|c| c.set(c.get() + 1));
        CREATED_TAPES.with(|c| c.set(c.get() + 1));
        Self {
            nodes: RefCell::default(),
            pool: RefCell::default(),
            cur_bytes: Cell::default(),
            peak_bytes: Cell::default(),
        }
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        LIVE_TAPES.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// A handle to a value recorded on a [`Tape`].
///
/// `Var` is `Copy`; all real state lives in the tape. The lifetime ties the
/// handle to its tape so handles cannot outlive or cross tapes.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    id: usize,
}

impl Tape {
    /// A fresh, empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tapes currently alive on *this thread*.
    ///
    /// The tape is `!Send`, so per-thread counting is exact. The inference
    /// runtime ([`crate::infer`]) uses this together with
    /// [`Tape::created_count`] to assert — in debug builds — that no tape is
    /// ever constructed inside the tape-free decoding hot path.
    pub fn live_count() -> usize {
        LIVE_TAPES.with(|c| c.get())
    }

    /// Number of tapes ever created on *this thread* (monotonic).
    ///
    /// Unlike [`Tape::live_count`], a create-then-drop inside a guarded scope
    /// still moves this counter, so it is the one the zero-tape guard
    /// ([`crate::infer::TapeFreeScope`]) checks.
    pub fn created_count() -> usize {
        CREATED_TAPES.with(|c| c.get())
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Clear all recorded nodes, keeping the node arena's allocation and the
    /// gradient buffer free-list. Existing `Var` handles become dangling and
    /// must not be used afterwards (they would index past the cleared arena
    /// or into unrelated new nodes).
    pub fn reset(&self) {
        let mut nodes = self.nodes.borrow_mut();
        let node_bytes: usize = nodes
            .iter()
            .map(|n| n.value.len() * std::mem::size_of::<f32>())
            .sum();
        nodes.clear();
        self.cur_bytes
            .set(self.cur_bytes.get().saturating_sub(node_bytes));
    }

    /// High-water mark of bytes held by node values plus live gradient
    /// buffers since this tape was created.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes.get()
    }

    /// Record a leaf value (input or parameter) and return its handle.
    pub fn leaf(&self, value: Array) -> Var<'_> {
        self.push(value, OpMeta::leaf(), None)
    }

    /// Record a constant — identical to [`Tape::leaf`] for gradient purposes
    /// (gradients flowing into it are retained and usually ignored), but
    /// tagged so the graph analyzer can spot constant-foldable subgraphs.
    pub fn constant(&self, value: Array) -> Var<'_> {
        self.push(value, OpMeta::constant(), None)
    }

    pub(crate) fn push(&self, value: Array, meta: OpMeta, backward: Option<BackwardFn>) -> Var<'_> {
        self.track_bytes(value.len() * std::mem::size_of::<f32>());
        let mut nodes = self.nodes.borrow_mut();
        let id = nodes.len();
        nodes.push(Node {
            value: Rc::new(value),
            meta,
            backward,
        });
        Var { tape: self, id }
    }

    pub(crate) fn value_of(&self, id: usize) -> Rc<Array> {
        Rc::clone(&self.nodes.borrow()[id].value)
    }

    /// Export the recorded graph structure — per node, its value shape and
    /// [`OpMeta`] — for offline analysis ([`crate::analyze`]). No values are
    /// copied and no kernels run.
    pub fn export_spec(&self) -> crate::analyze::GraphSpec {
        let nodes = self.nodes.borrow();
        crate::analyze::GraphSpec {
            nodes: nodes
                .iter()
                .map(|n| crate::analyze::NodeSpec {
                    shape: n.value.shape().to_vec(),
                    op: n.meta.clone(),
                })
                .collect(),
        }
    }

    fn track_bytes(&self, added: usize) {
        let cur = self.cur_bytes.get() + added;
        self.cur_bytes.set(cur);
        if cur > self.peak_bytes.get() {
            self.peak_bytes.set(cur);
        }
    }

    /// Pull a buffer of exactly `len` elements (zeroed) from the free-list,
    /// or allocate one if nothing fits.
    fn take_buffer(&self, len: usize) -> Vec<f32> {
        let mut pool = self.pool.borrow_mut();
        // Buffers come back in node-id order and are requested in reverse
        // node-id order next pass, so the match is usually at the tail.
        let hit = match pool.last() {
            Some(b) if b.capacity() >= len => Some(pool.len() - 1),
            _ => pool.iter().rposition(|b| b.capacity() >= len),
        };
        let mut buf = match hit {
            Some(i) => pool.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Run backpropagation from `root` (gradient seeded with ones) and return
    /// the gradient of every node that received one.
    ///
    /// `root` is typically the scalar loss. Seeding with ones on a non-scalar
    /// root computes the gradient of the *sum* of its elements.
    ///
    /// Gradient arrays are backed by the tape's buffer free-list; they return
    /// to it when the `Gradients` value is dropped.
    pub fn backward(&self, root: Var<'_>) -> Gradients<'_> {
        #[cfg(feature = "kernel-timing")]
        let _kt = crate::ktime::timer(crate::ktime::Kernel::Backward);
        assert!(std::ptr::eq(root.tape, self), "var from a different tape");
        let nodes = self.nodes.borrow();
        let mut grads: Vec<Option<Array>> = (0..nodes.len()).map(|_| None).collect();
        let root_val = &nodes[root.id].value;
        let mut seed = Array::from_buffer(root_val.shape(), self.take_buffer(root_val.len()));
        self.track_bytes(seed.len() * std::mem::size_of::<f32>());
        seed.data_mut().fill(1.0);
        grads[root.id] = Some(seed);
        for id in (0..=root.id).rev() {
            // Take the gradient out so the sink can borrow `grads`.
            let Some(g) = grads[id].take() else { continue };
            if let Some(f) = &nodes[id].backward {
                let mut sink = GradSink {
                    tape: self,
                    nodes: &nodes,
                    grads: &mut grads,
                    node_id: id,
                };
                f(&g, &mut sink);
            }
            grads[id] = Some(g);
        }
        Gradients { tape: self, grads }
    }
}

/// Routes backward-pass gradient contributions into per-parent accumulators
/// drawn from the tape's buffer free-list.
pub struct GradSink<'a> {
    tape: &'a Tape,
    nodes: &'a [Node],
    grads: &'a mut Vec<Option<Array>>,
    node_id: usize,
}

impl GradSink<'_> {
    /// The gradient accumulator of parent `pid`, created zeroed (with the
    /// parent value's shape) on first touch. Backward closures accumulate
    /// (`+=`) into it — never overwrite — since several children may
    /// contribute to one parent.
    pub fn accum(&mut self, pid: usize) -> &mut Array {
        debug_assert!(
            pid < self.node_id,
            "backward edge must point to earlier node"
        );
        if self.grads[pid].is_none() {
            let shape = self.nodes[pid].value.shape();
            let len = self.nodes[pid].value.len();
            let buf = self.tape.take_buffer(len);
            self.tape.track_bytes(len * std::mem::size_of::<f32>());
            self.grads[pid] = Some(Array::from_buffer(shape, buf));
        }
        self.grads[pid].as_mut().unwrap()
    }

    /// Two accumulators at once, for backward loops that scatter into both
    /// parents in a single fused pass. Parents must be distinct nodes.
    pub fn accum2(&mut self, p0: usize, p1: usize) -> (&mut Array, &mut Array) {
        assert_ne!(p0, p1, "accum2 requires distinct parents");
        self.accum(p0);
        self.accum(p1);
        let base = self.grads.as_mut_ptr();
        // SAFETY: p0 != p1, both in bounds (accum indexed them), and the
        // Options are Some — the two &mut alias neither each other nor self.
        unsafe {
            (
                (*base.add(p0)).as_mut().unwrap(),
                (*base.add(p1)).as_mut().unwrap(),
            )
        }
    }

    /// Three accumulators at once (see [`GradSink::accum2`]).
    #[allow(clippy::type_complexity)]
    pub fn accum3(
        &mut self,
        p0: usize,
        p1: usize,
        p2: usize,
    ) -> (&mut Array, &mut Array, &mut Array) {
        assert!(
            p0 != p1 && p0 != p2 && p1 != p2,
            "accum3 requires distinct parents"
        );
        self.accum(p0);
        self.accum(p1);
        self.accum(p2);
        let base = self.grads.as_mut_ptr();
        // SAFETY: pairwise-distinct indices, all in bounds and Some.
        unsafe {
            (
                (*base.add(p0)).as_mut().unwrap(),
                (*base.add(p1)).as_mut().unwrap(),
                (*base.add(p2)).as_mut().unwrap(),
            )
        }
    }

    /// Convenience: `accum(pid) += g`.
    pub fn add(&mut self, pid: usize, g: &Array) {
        self.accum(pid).add_assign(g);
    }

    /// Convenience: `accum(pid) += scale * g`.
    pub fn add_scaled(&mut self, pid: usize, scale: f32, g: &Array) {
        self.accum(pid).axpy(scale, g);
    }
}

/// The result of [`Tape::backward`]: per-node gradients. Dropping it returns
/// every gradient buffer to the tape's free-list.
pub struct Gradients<'t> {
    tape: &'t Tape,
    grads: Vec<Option<Array>>,
}

impl Gradients<'_> {
    /// The gradient of the root with respect to `var`, if any reached it.
    pub fn get(&self, var: Var<'_>) -> Option<&Array> {
        self.grads.get(var.id).and_then(|g| g.as_ref())
    }

    /// Like [`Gradients::get`] but panics with a useful message when absent.
    pub fn expect(&self, var: Var<'_>) -> &Array {
        self.get(var).unwrap_or_else(|| {
            // expect is the documented panicking variant of `get`
            // st-lint: allow(panic-in-lib)
            panic!(
                "no gradient reached node {} (tape has {} nodes): the node is \
                 not an ancestor of the backward root — run the graph \
                 analyzer (st_tensor::analyze) on this tape to see which \
                 subgraphs are detached from the loss",
                var.id,
                self.grads.len()
            )
        })
    }

    /// Gradient by raw node id (used by the parameter binding machinery).
    pub fn by_id(&self, id: usize) -> Option<&Array> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }
}

impl Drop for Gradients<'_> {
    fn drop(&mut self) {
        let mut pool = self.tape.pool.borrow_mut();
        let mut freed = 0;
        for g in self.grads.drain(..).flatten() {
            freed += g.len() * std::mem::size_of::<f32>();
            pool.push(g.into_vec());
        }
        self.tape
            .cur_bytes
            .set(self.tape.cur_bytes.get().saturating_sub(freed));
    }
}

impl<'t> Var<'t> {
    /// The tape this variable belongs to.
    #[inline]
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// The raw node id on the tape.
    #[inline]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The forward value of this node (shared, cheap to clone).
    pub fn value(&self) -> Rc<Array> {
        self.tape.value_of(self.id)
    }

    /// The shape of the forward value.
    pub fn shape(&self) -> Vec<usize> {
        self.value().shape().to_vec()
    }

    /// Convenience: the forward value as a scalar. Panics if not length-1.
    pub fn scalar_value(&self) -> f32 {
        let v = self.value();
        assert_eq!(v.len(), 1, "scalar_value on shape {:?}", v.shape());
        v.data()[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn leaf_has_no_backward_effect() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![1.0, 2.0]));
        let g = t.backward(x);
        assert_eq!(g.expect(x).data(), &[1.0, 1.0]);
    }

    #[test]
    fn chain_of_adds_accumulates() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![1.0, 2.0]));
        // y = x + x + x  =>  dy/dx = 3
        let y = ops::add(ops::add(x, x), x);
        let g = t.backward(y);
        assert_eq!(g.expect(x).data(), &[3.0, 3.0]);
        assert_eq!(y.value().data(), &[3.0, 6.0]);
    }

    #[test]
    fn gradient_does_not_flow_past_root() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![1.0]));
        let y = ops::scale(x, 2.0);
        let _z = ops::scale(y, 10.0); // recorded after y, not part of y's history
        let g = t.backward(y);
        assert_eq!(g.expect(x).data(), &[2.0]);
    }

    #[test]
    fn unreached_nodes_have_no_gradient() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![1.0]));
        let other = t.leaf(Array::vector(vec![5.0]));
        let y = ops::scale(x, 3.0);
        let g = t.backward(y);
        assert!(g.get(other).is_none());
    }

    #[test]
    fn reset_clears_nodes_and_reuses_arena() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![1.0, 2.0]));
        let _y = ops::square(x);
        assert_eq!(t.len(), 2);
        t.reset();
        assert!(t.is_empty());
        // The tape is fully usable after reset.
        let x2 = t.leaf(Array::vector(vec![3.0]));
        let y2 = ops::square(x2);
        let g = t.backward(y2);
        assert_eq!(g.expect(x2).data(), &[6.0]);
    }

    #[test]
    fn gradient_buffers_recycle_through_pool() {
        let t = Tape::new();
        let run = |t: &Tape| {
            let x = t.leaf(Array::vector(vec![1.0, 2.0, 3.0]));
            let y = ops::sum_all(ops::square(x));
            let g = t.backward(y);
            let got = g.expect(x).data().to_vec();
            t.reset();
            got
        };
        let first = run(&t);
        let pooled = t.pool.borrow().len();
        assert!(pooled > 0, "dropping Gradients must refill the pool");
        let second = run(&t);
        assert_eq!(first, second, "recycled buffers must be re-zeroed");
        // Steady state: the pool neither grows nor shrinks across passes.
        assert_eq!(t.pool.borrow().len(), pooled);
    }

    #[test]
    fn tape_counters_track_create_and_drop() {
        let live0 = Tape::live_count();
        let created0 = Tape::created_count();
        {
            let _t = Tape::new();
            assert_eq!(Tape::live_count(), live0 + 1);
            assert_eq!(Tape::created_count(), created0 + 1);
        }
        // Dropping restores the live count but the created count is monotonic.
        assert_eq!(Tape::live_count(), live0);
        assert_eq!(Tape::created_count(), created0 + 1);
    }

    #[test]
    fn peak_bytes_grows_with_graph() {
        let t = Tape::new();
        assert_eq!(t.peak_bytes(), 0);
        let x = t.leaf(Array::zeros(&[8, 8]));
        let y = ops::sum_all(x);
        let peak_fwd = t.peak_bytes();
        assert!(peak_fwd >= 8 * 8 * 4);
        let _g = t.backward(y);
        assert!(t.peak_bytes() > peak_fwd, "backward buffers add to peak");
    }
}
