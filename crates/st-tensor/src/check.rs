//! Finite-difference gradient checking.
//!
//! Every differentiable op in this crate is validated by comparing its
//! analytic gradient (from [`crate::tape::Tape::backward`]) against a central
//! finite-difference estimate. The checker rebuilds the computation from
//! scratch for every perturbed input, so it exercises exactly the public API
//! a model would use.

use crate::array::Array;
use crate::tape::{Tape, Var};

/// Relative/absolute tolerance used by [`grad_check`].
///
/// f32 finite differences are noisy; 2e-2 relative with a 1e-3 absolute floor
/// is tight enough to catch any sign/transposition/indexing error while
/// tolerating rounding.
pub const GRAD_TOL: f32 = 2e-2;

/// Evaluate `f` on fresh leaves for `inputs` and return the scalar output.
fn eval<F>(inputs: &[Array], f: &F) -> f32
where
    F: for<'t> Fn(&'t Tape, &[Var<'t>]) -> Var<'t>,
{
    let tape = Tape::new();
    let vars: Vec<Var<'_>> = inputs.iter().map(|a| tape.leaf(a.clone())).collect();
    let out = f(&tape, &vars);
    out.scalar_value()
}

/// Check analytic gradients of the scalar function `f` against central finite
/// differences for every element of every input. Panics with a diagnostic on
/// mismatch.
pub fn grad_check<F>(inputs: &[Array], f: F)
where
    F: for<'t> Fn(&'t Tape, &[Var<'t>]) -> Var<'t>,
{
    // Analytic pass.
    let tape = Tape::new();
    let vars: Vec<Var<'_>> = inputs.iter().map(|a| tape.leaf(a.clone())).collect();
    let out = f(&tape, &vars);
    assert_eq!(
        out.value().len(),
        1,
        "grad_check requires a scalar objective, got shape {:?}",
        out.value().shape()
    );
    let grads = tape.backward(out);

    let eps = 3e-3f32;
    for (k, input) in inputs.iter().enumerate() {
        let analytic = grads
            .get(vars[k])
            .cloned()
            .unwrap_or_else(|| Array::zeros_like(input));
        for i in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[k].data_mut()[i] += eps;
            let mut minus = inputs.to_vec();
            minus[k].data_mut()[i] -= eps;
            let numeric = (eval(&plus, &f) - eval(&minus, &f)) / (2.0 * eps);
            let a = analytic.data()[i];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            let rel = (a - numeric).abs() / denom;
            assert!(
                rel < GRAD_TOL || (a - numeric).abs() < 1e-3,
                "gradient mismatch input {k} elem {i}: analytic {a}, numeric {numeric} (rel {rel})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn catches_correct_gradient() {
        let a = Array::vector(vec![1.0, -2.0, 0.5]);
        grad_check(&[a], |_, v| ops::sum_all(ops::square(v[0])));
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn catches_wrong_gradient() {
        // An objective whose value depends on the input via a path the tape
        // cannot see (the value is smuggled out as a constant), so the
        // analytic gradient is zero while the numeric slope is not.
        let a = Array::vector(vec![2.0]);
        grad_check(&[a], |tape, v| {
            let hidden = v[0].value().data()[0]; // bypasses the tape
            let c = tape.leaf(Array::scalar(hidden * hidden));
            ops::sum_all(c)
        });
    }
}
