//! Deterministic, vectorizable transcendental kernels (`exp`, `sigmoid`,
//! `tanh`) shared by the taped ops and the tape-free inference runtime.
//!
//! # Why not libm?
//!
//! Two reasons, both rooted in the workspace's reproducibility contract:
//!
//! 1. **Bit-identical results everywhere.** `f32::exp` / `f32::tanh` call
//!    the platform libm, whose results differ between libc versions and
//!    vectorized math libraries. Every sigmoid/tanh in this crate — taped
//!    or infer — now routes through these polynomials, so a model produces
//!    the same bits on every host, and the fused inference epilogues stay
//!    bit-identical to the taped oracle *by construction* (same code).
//! 2. **Vectorization.** glibc's scalar `tanhf` costs ~17 ns/call on the
//!    benchmark host — at `beam × 3·hidden` activations per GRU step that
//!    alone exceeds the decode latency budget. These kernels are
//!    branch-free (compute-both-sides + select), so LLVM auto-vectorizes
//!    them 8-wide under the crate's AVX2 dispatch, and the scalar and SIMD
//!    builds execute the same f32 operations in the same order — results
//!    are identical regardless of which build runs.
//!
//! Accuracy: ≤ a few ulp of the correctly-rounded result over the ranges
//! the models use (validated against an `f64` reference in the tests).
//! `exp` clamps its argument to ±87/88, which saturates ~1e-38 / 1.65e38 —
//! ample for activations, not a general-purpose libm replacement.
//!
//! The polynomial forms follow the classic Cephes `expf`/`tanhf`
//! (Cody–Waite argument reduction, degree-5/6 minimax polynomials).

/// log2(e), the reduction constant for `exp`.
const LOG2E: f32 = std::f32::consts::LOG2_E;
/// ln(2) split for Cody–Waite reduction: high part (exact in 12 bits —
/// the literal is the exact decimal expansion of that bit pattern, not a
/// rounded ln 2).
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
/// ...and the low-order correction.
const LN2_LO: f32 = -2.121_944_4e-4;

/// Branch-free `e^x` with the argument clamped to `[-87, 88]`.
///
/// `exp(-87) ≈ 1.6e-38` (smallest normal neighborhood) and `exp(88) ≈
/// 1.65e38` (just under `f32::MAX`), so the clamp only flattens inputs that
/// are saturated anyway for sigmoid/tanh purposes. NaN propagates.
#[inline(always)]
pub fn exp(x: f32) -> f32 {
    let x = x.clamp(-87.0, 88.0);
    // n = round(x / ln 2), as a float so the Cody–Waite subtraction below
    // stays exact; floor(x·log2e + 0.5) is correct over the clamped range.
    let n = (x * LOG2E + 0.5).floor();
    // r = x − n·ln2, in two steps to keep the reduction error below 1 ulp.
    let r = x - n * LN2_HI - n * LN2_LO;
    // Degree-5 minimax polynomial for e^r on r ∈ [−ln2/2, ln2/2] (Cephes).
    let mut p = 1.987_569_2e-4;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 5e-1;
    let y = p * (r * r) + r + 1.0;
    // Scale by 2^n through the exponent bits (n ∈ [−126, 127] after the
    // argument clamp, so the bit pattern is always a normal number).
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    y * scale
}

/// Branch-free logistic sigmoid `1 / (1 + e^{-x})`.
#[inline(always)]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + exp(-x))
}

/// Branch-free `tanh(x)` (Cephes form).
///
/// Small arguments (|x| < 0.625) use an odd minimax polynomial; the rest
/// use `1 − 2/(e^{2|x|} + 1)` with the sign restored. Both sides are
/// computed and selected, so the function if-converts and vectorizes.
#[inline(always)]
pub fn tanh(x: f32) -> f32 {
    let ax = x.abs();
    // Large branch: saturates to ±1.0 naturally (for |x| ≳ 9 the quotient
    // underflows below 1 ulp of 1.0, and `exp`'s clamp keeps it finite).
    let big = 1.0 - 2.0 / (exp(2.0 * ax) + 1.0);
    // Small branch: x + x³·P(x²) on |x| < 0.625 (Cephes minimax).
    let z = x * x;
    let mut p = -5.704_988_7e-3;
    p = p * z + 2.063_909e-2;
    p = p * z - 5.373_971_4e-2;
    p = p * z + 1.333_144_2e-1;
    p = p * z - 3.333_328_3e-1;
    let small = p * z * x + x;
    if ax < 0.625 {
        small
    } else if x.is_sign_negative() {
        -big
    } else {
        big
    }
}

/// In-place sigmoid over a slice, dispatched to the AVX2+FMA build when
/// available. Scalar and SIMD builds run identical arithmetic.
pub fn sigmoid_slice_mut(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        return unsafe { sigmoid_slice_avx2(xs) };
    }
    sigmoid_slice_impl(xs)
}

/// SAFETY: `#[target_feature]`-only unsafety — the body is the safe
/// `sigmoid_slice_impl` recompiled with AVX2+FMA codegen and contains no raw
/// pointers or intrinsics. Callers must have verified
/// [`crate::dispatch::avx2_fma()`]; executing on a CPU without those
/// features is undefined behavior (illegal instruction).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sigmoid_slice_avx2(xs: &mut [f32]) {
    sigmoid_slice_impl(xs)
}

#[inline(always)]
fn sigmoid_slice_impl(xs: &mut [f32]) {
    for x in xs {
        *x = sigmoid(*x);
    }
}

/// In-place tanh over a slice, dispatched like [`sigmoid_slice_mut`].
pub fn tanh_slice_mut(xs: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        return unsafe { tanh_slice_avx2(xs) };
    }
    tanh_slice_impl(xs)
}

/// SAFETY: `#[target_feature]`-only unsafety, same contract as
/// [`sigmoid_slice_avx2`] — the body is the safe `tanh_slice_impl` with
/// AVX2+FMA codegen; callers must have verified
/// [`crate::dispatch::avx2_fma()`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tanh_slice_avx2(xs: &mut [f32]) {
    tanh_slice_impl(xs)
}

#[inline(always)]
fn tanh_slice_impl(xs: &mut [f32]) {
    for x in xs {
        *x = tanh(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worst acceptable relative error vs the f64 reference (≈ 4 ulp).
    const REL_TOL: f64 = 5e-7;

    #[test]
    fn exp_matches_f64_reference() {
        let mut worst = 0.0f64;
        for i in -8700..=8700 {
            let x = i as f32 * 0.01;
            let got = exp(x) as f64;
            let want = (x as f64).exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
        }
        assert!(worst < REL_TOL, "exp worst rel err {worst:e}");
    }

    #[test]
    fn exp_clamps_not_overflows() {
        assert!(exp(1000.0).is_finite());
        assert!(exp(-1000.0) > 0.0);
        assert!(exp(f32::NAN).is_nan());
        assert_eq!(exp(0.0), 1.0);
    }

    #[test]
    fn sigmoid_matches_f64_reference() {
        let mut worst = 0.0f64;
        for i in -4000..=4000 {
            let x = i as f32 * 0.01;
            let got = sigmoid(x) as f64;
            let want = 1.0 / (1.0 + (-(x as f64)).exp());
            let rel = ((got - want) / want.max(1e-30)).abs();
            worst = worst.max(rel);
        }
        assert!(worst < REL_TOL, "sigmoid worst rel err {worst:e}");
        assert_eq!(sigmoid(0.0), 0.5);
        assert_eq!(sigmoid(100.0), 1.0);
        // exp's clamp leaves a subnormal remainder instead of exact 0.
        assert!(sigmoid(-100.0) < 1e-37);
    }

    #[test]
    fn tanh_matches_f64_reference() {
        let mut worst = 0.0f64;
        for i in -2000..=2000 {
            let x = i as f32 * 0.01;
            let got = tanh(x) as f64;
            let want = (x as f64).tanh();
            let denom = want.abs().max(1e-3); // abs error near 0, rel elsewhere
            let rel = ((got - want) / denom).abs();
            worst = worst.max(rel);
        }
        assert!(worst < REL_TOL, "tanh worst rel err {worst:e}");
        assert_eq!(tanh(0.0), 0.0);
        assert_eq!(tanh(25.0), 1.0);
        assert_eq!(tanh(-25.0), -1.0);
    }

    #[test]
    fn tanh_is_odd_and_continuous_at_branch() {
        for i in 0..100 {
            let x = 0.6 + i as f32 * 0.0005; // straddles the 0.625 switch
            assert_eq!(tanh(-x), -tanh(x));
            let d = (tanh(x + 5e-4) - tanh(x)).abs();
            assert!(d < 1e-3, "jump at {x}: {d}");
        }
    }

    #[test]
    fn slice_kernels_match_scalar_exactly() {
        let xs: Vec<f32> = (-300..300).map(|i| i as f32 * 0.037).collect();
        let mut s = xs.clone();
        sigmoid_slice_mut(&mut s);
        for (y, &x) in s.iter().zip(&xs) {
            assert_eq!(*y, sigmoid(x));
        }
        let mut t = xs.clone();
        tanh_slice_mut(&mut t);
        for (y, &x) in t.iter().zip(&xs) {
            assert_eq!(*y, tanh(x));
        }
    }
}
