//! Cache-blocked, operand-packing GEMM kernels for the `Array` matrix
//! products.
//!
//! The naive triple loops the engine started with stream the B operand
//! from main memory once per A-row and leave all accumulation in memory.
//! These kernels follow the classic GotoBLAS decomposition scaled down to
//! this workspace's sizes (k up to a few hundred, n up to a few thousand):
//!
//! * B is packed once per call into `[n_tiles][k][NR]` column tiles, so the
//!   micro-kernel reads it with stride `NR` regardless of the original
//!   leading dimension — this is also where `matmul_t` folds in its
//!   transpose for free (an O(k·n) pack instead of an O(m·k·n) strided
//!   inner loop).
//! * The micro-kernel holds an `MR × NR` accumulator block in registers
//!   and walks the shared k dimension once, broadcasting each A element
//!   against an NR-wide B row; LLVM auto-vectorizes the fixed-size inner
//!   loops to SIMD FMAs.
//! * Pack buffers come from a thread-local scratch pool and are reused
//!   across calls, so steady-state training does no GEMM allocations
//!   beyond the output array itself.
//!
//! Accumulation is sequential in `p` for every path, so results are
//! deterministic for a given shape — a property the data-parallel trainer
//! relies on when it compares serial and sharded runs bit-for-bit.

use std::cell::RefCell;

#[cfg(target_arch = "x86_64")]
use crate::dispatch::avx2_fma;

/// Micro-kernel rows: accumulator block height.
const MR: usize = 4;
/// Micro-kernel cols: accumulator block width. Two AVX2 lanes per
/// accumulator row gives the 4×NR block eight independent add chains —
/// enough to keep both FP ports busy despite the 4-cycle add latency
/// (mul and add stay separate instructions; see the determinism note).
const NR: usize = 16;

/// Below this row count packing cannot amortize (the whole product costs
/// about as much as the pack); fall back to a straight row-major loop.
const PACK_MIN_ROWS: usize = 3;

struct Scratch {
    /// Packed B tiles, `[n_tiles][k][NR]`, zero-padded on the column edge.
    packed_b: Vec<f32>,
    /// Transposed copy of A for `t_matmul` (Aᵀ·B as a plain GEMM).
    packed_a: Vec<f32>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = const {
        RefCell::new(Scratch {
            packed_b: Vec::new(),
            packed_a: Vec::new(),
        })
    };
}

/// Reserve `len` elements in a scratch buffer without zeroing re-used space.
fn ensure_len(buf: &mut Vec<f32>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// `out[m×n] = a[m×k] · b[k×n]`, all row-major. With `acc` the product is
/// added into `out`; otherwise `out` is fully overwritten.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], acc: bool) {
    #[cfg(feature = "kernel-timing")]
    let _kt = crate::ktime::timer(crate::ktime::Kernel::Gemm);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            out.fill(0.0);
        }
        return;
    }
    if m < PACK_MIN_ROWS {
        return gemm_rowmajor_unpacked(m, k, n, a, b, out, acc);
    }
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        pack_b(k, n, b, &mut scratch.packed_b);
        gemm_packed(m, k, n, a, &scratch.packed_b, out, acc);
    });
}

/// `out[m×n] = a[m×k] · bᵀ` where `b` is stored `[n×k]` row-major. With
/// `acc` the product is added into `out`.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], acc: bool) {
    #[cfg(feature = "kernel-timing")]
    let _kt = crate::ktime::timer(crate::ktime::Kernel::GemmBt);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            out.fill(0.0);
        }
        return;
    }
    if m < PACK_MIN_ROWS {
        bt_dot_rows(m, k, n, a, b, out, acc);
        return;
    }
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        pack_bt(k, n, b, &mut scratch.packed_b);
        gemm_packed(m, k, n, a, &scratch.packed_b, out, acc);
    });
}

/// `out[m×n] = aᵀ · b` where `a` is stored `[k×m]` row-major. With `acc`
/// the product is added into `out`.
pub fn gemm_at(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], acc: bool) {
    #[cfg(feature = "kernel-timing")]
    let _kt = crate::ktime::timer(crate::ktime::Kernel::GemmAt);
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !acc {
            out.fill(0.0);
        }
        return;
    }
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        // Transpose A into scratch so the kernel sees contiguous A rows.
        ensure_len(&mut scratch.packed_a, m * k);
        let at = &mut scratch.packed_a[..m * k];
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            for (i, &v) in a_row.iter().enumerate() {
                at[i * k + p] = v;
            }
        }
        if m < PACK_MIN_ROWS {
            gemm_rowmajor_unpacked(m, k, n, at, b, out, acc);
        } else {
            pack_b(k, n, b, &mut scratch.packed_b);
            gemm_packed(m, k, n, at, &scratch.packed_b, out, acc);
        }
    });
}

/// A matrix packed once into the `[n_tiles][k][NR]` tile layout the packed
/// micro-kernel consumes, for operands that are constant across many calls
/// (decode weights). [`gemm`] re-packs B on every call because training
/// weights change every step; inference weights do not, so a session packs
/// each weight once and every step skips straight to the micro-kernel —
/// at *any* row count, since with the pack already paid the packed kernel
/// beats the row-major fallback even at m = 1.
///
/// Bit-compatibility: the packed and unpacked kernels accumulate in the
/// same `p`-sequential order and neither contracts mul+add, so overwriting
/// products (`acc = false` — the only mode the inference path uses) through
/// a `PackedB` are bit-identical to [`gemm`] at every row count (pinned by
/// the `batched_rows_equal_single_rows` proptest). With `acc = true` the
/// packed kernel folds `out` in *after* the register accumulation, which
/// matches [`gemm`] only at `m ≥ PACK_MIN_ROWS` (below that, `gemm`'s
/// row-major fallback folds `out` in first — a last-ulp association
/// difference).
pub struct PackedB {
    k: usize,
    n: usize,
    tiles: Vec<f32>,
}

impl PackedB {
    /// Pack `b[k×n]` (row-major) into micro-kernel tile order.
    pub fn pack(k: usize, n: usize, b: &[f32]) -> Self {
        assert_eq!(b.len(), k * n, "PackedB::pack: b is not k×n");
        let mut tiles = Vec::new();
        pack_b(k, n, b, &mut tiles);
        Self { k, n, tiles }
    }

    /// Rows of the original matrix (the shared GEMM dimension).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the original matrix (the output width).
    pub fn n(&self) -> usize {
        self.n
    }
}

/// `out[m×n] = a[m×k] · B` with `B` packed ahead of time ([`PackedB`]).
/// With `acc` the product is added into `out`. Bit-identical to [`gemm`]
/// on the same operands.
pub fn gemm_prepacked(m: usize, a: &[f32], b: &PackedB, out: &mut [f32], acc: bool) {
    #[cfg(feature = "kernel-timing")]
    let _kt = crate::ktime::timer(crate::ktime::Kernel::Gemm);
    debug_assert_eq!(a.len(), m * b.k);
    debug_assert_eq!(out.len(), m * b.n);
    if m == 0 || b.n == 0 {
        return;
    }
    if b.k == 0 {
        if !acc {
            out.fill(0.0);
        }
        return;
    }
    gemm_packed(m, b.k, b.n, a, &b.tiles, out, acc);
}

/// Straight ikj loop for row counts too small to amortize packing. Same
/// `p`-sequential accumulation order as the packed kernel.
fn gemm_rowmajor_unpacked(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        return unsafe { gemm_rowmajor_avx2(m, k, n, a, b, out, acc) };
    }
    gemm_rowmajor_impl(m, k, n, a, b, out, acc)
}

/// SAFETY: the only unsafety is `#[target_feature]` — the body is the safe
/// `gemm_rowmajor_impl` recompiled with AVX2+FMA codegen and contains no raw
/// pointers or intrinsics of its own. Callers must ensure the CPU supports
/// AVX2 and FMA (every call site checks [`avx2_fma()`] first); executing it
/// on a CPU without them is undefined behavior (illegal instruction). Slice
/// preconditions (`a: m×k`, `b: k×n`, `out: m×n`) are asserted by the safe
/// `gemm_rowmajor` entry point before dispatch.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_rowmajor_avx2(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    gemm_rowmajor_impl(m, k, n, a, b, out, acc)
}

#[inline(always)]
fn gemm_rowmajor_impl(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    if !acc {
        out.fill(0.0);
    }
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Dot-product form of `a·bᵀ` for tiny row counts: both operand rows are
/// contiguous, so packing would cost more than it saves.
fn bt_dot_rows(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], acc: bool) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        return unsafe { bt_dot_rows_avx2(m, k, n, a, b, out, acc) };
    }
    bt_dot_rows_impl(m, k, n, a, b, out, acc)
}

/// SAFETY: `#[target_feature]`-only unsafety, same contract as
/// [`gemm_rowmajor_avx2`] — the body is the safe `bt_dot_rows_impl` with
/// AVX2+FMA codegen. Callers must have verified [`avx2_fma()`]; the
/// `a: m×k`, `b: n×k`, `out: m×n` slice invariants are asserted by the safe
/// `bt_dot_rows` wrapper.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn bt_dot_rows_avx2(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    bt_dot_rows_impl(m, k, n, a, b, out, acc)
}

#[inline(always)]
fn bt_dot_rows_impl(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let s = dot(a_row, b_row);
            if acc {
                out[i * n + j] += s;
            } else {
                out[i * n + j] = s;
            }
        }
    }
}

#[inline(always)]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Pack `b[k×n]` into `[n_tiles][k][NR]` tiles, zero-padding edge columns.
fn pack_b(k: usize, n: usize, b: &[f32], packed: &mut Vec<f32>) {
    let n_tiles = n.div_ceil(NR);
    ensure_len(packed, n_tiles * k * NR);
    for t in 0..n_tiles {
        let j0 = t * NR;
        let jw = NR.min(n - j0);
        let tile = &mut packed[t * k * NR..(t + 1) * k * NR];
        for p in 0..k {
            let src = &b[p * n + j0..p * n + j0 + jw];
            let dst = &mut tile[p * NR..p * NR + NR];
            dst[..jw].copy_from_slice(src);
            dst[jw..].fill(0.0);
        }
    }
}

/// Pack `bᵀ` (with `b` stored `[n×k]`) into the same tile layout as
/// [`pack_b`]: the transpose costs O(k·n) here instead of poisoning the
/// O(m·k·n) inner loop with stride-k reads.
fn pack_bt(k: usize, n: usize, b: &[f32], packed: &mut Vec<f32>) {
    let n_tiles = n.div_ceil(NR);
    ensure_len(packed, n_tiles * k * NR);
    for t in 0..n_tiles {
        let j0 = t * NR;
        let jw = NR.min(n - j0);
        let tile = &mut packed[t * k * NR..(t + 1) * k * NR];
        for (jj, row) in b[j0 * k..].chunks_exact(k).take(jw).enumerate() {
            for (p, &v) in row.iter().enumerate() {
                tile[p * NR + jj] = v;
            }
        }
        if jw < NR {
            for p in 0..k {
                tile[p * NR + jw..(p + 1) * NR].fill(0.0);
            }
        }
    }
}

/// Macro-loop over packed tiles: MR-row blocks of A against NR-column
/// tiles of packed B.
fn gemm_packed(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    packed_b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        return unsafe { gemm_packed_avx2(m, k, n, a, packed_b, out, acc) };
    }
    gemm_packed_impl(m, k, n, a, packed_b, out, acc)
}

/// SAFETY: `#[target_feature]`-only unsafety, same contract as
/// [`gemm_rowmajor_avx2`]. Callers must have verified [`avx2_fma()`]. The
/// packed-buffer invariant — `packed_b` holds `ceil(n/NR)` column panels of
/// `k×NR` zero-padded floats, exactly as laid out by `pack_b` — is
/// established by the safe `gemm_packed` wrapper, which also asserts the
/// `a`/`out` dimensions.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_packed_avx2(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    packed_b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    gemm_packed_impl(m, k, n, a, packed_b, out, acc)
}

#[inline(always)]
fn gemm_packed_impl(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    packed_b: &[f32],
    out: &mut [f32],
    acc: bool,
) {
    let n_tiles = n.div_ceil(NR);
    for t in 0..n_tiles {
        let j0 = t * NR;
        let jw = NR.min(n - j0);
        let tile = &packed_b[t * k * NR..(t + 1) * k * NR];
        let mut i0 = 0;
        while i0 + MR <= m {
            micro_kernel_4(k, &a[i0 * k..], tile, jw, &mut out[i0 * n + j0..], n, acc);
            i0 += MR;
        }
        for i in i0..m {
            micro_kernel_1(
                k,
                &a[i * k..(i + 1) * k],
                tile,
                jw,
                &mut out[i * n + j0..],
                acc,
            );
        }
    }
}

/// 4×NR register-accumulator kernel: walks k once, broadcasting each of
/// the four A elements against the NR-wide packed B row.
#[inline(always)]
fn micro_kernel_4(
    k: usize,
    a: &[f32],
    tile: &[f32],
    jw: usize,
    out: &mut [f32],
    ldc: usize,
    add_in: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let a0 = a[..k].iter();
    let a1 = a[k..2 * k].iter();
    let a2 = a[2 * k..3 * k].iter();
    let a3 = a[3 * k..4 * k].iter();
    // Pure zipped iteration: no index arithmetic or bounds checks survive
    // in the hot loop, and the k trip count is explicit to the optimizer.
    for ((((brow, &a0v), &a1v), &a2v), &a3v) in
        tile.chunks_exact(NR).zip(a0).zip(a1).zip(a2).zip(a3)
    {
        let av = [a0v, a1v, a2v, a3v];
        for (accr, &ar) in acc.iter_mut().zip(&av) {
            for (o, &bv) in accr.iter_mut().zip(brow) {
                *o += ar * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let dst = &mut out[r * ldc..r * ldc + jw];
        if add_in {
            for (o, &v) in dst.iter_mut().zip(accr) {
                *o += v;
            }
        } else {
            dst.copy_from_slice(&accr[..jw]);
        }
    }
}

/// Single-row edge kernel for the m % MR tail.
#[inline(always)]
fn micro_kernel_1(k: usize, a_row: &[f32], tile: &[f32], jw: usize, out: &mut [f32], add_in: bool) {
    let mut acc = [0.0f32; NR];
    for (p, brow) in tile.chunks_exact(NR).enumerate().take(k) {
        let av = a_row[p];
        for (o, &bv) in acc.iter_mut().zip(brow) {
            *o += av * bv;
        }
    }
    if add_in {
        for (o, &v) in out[..jw].iter_mut().zip(&acc) {
            *o += v;
        }
    } else {
        out[..jw].copy_from_slice(&acc[..jw]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = s;
            }
        }
        out
    }

    #[test]
    fn shapes_including_edges() {
        // Cover every (m % MR, n % NR) edge combination plus tiny dims.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 7, 13),
            (2, 5, 9),
            (3, 4, 8),
            (4, 8, 8),
            (5, 3, 17),
            (6, 16, 1),
            (7, 9, 23),
            (8, 32, 40),
            (13, 21, 34),
        ] {
            let a = fill(m * k, (m * 100 + k) as u64);
            let b = fill(k * n, (k * 100 + n) as u64);
            let want = naive(m, k, n, &a, &b);

            let mut got = vec![9.9; m * n];
            gemm(m, k, n, &a, &b, &mut got, false);
            for (w, g) in want.iter().zip(&got) {
                assert!((w - g).abs() <= 1e-4 * w.abs().max(1.0), "gemm {m}x{k}x{n}");
            }

            // bᵀ path: store B transposed ([n×k]) and ask for a·bᵀ.
            let mut bt = vec![0.0; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            let mut got = vec![9.9; m * n];
            gemm_bt(m, k, n, &a, &bt, &mut got, false);
            for (w, g) in want.iter().zip(&got) {
                assert!(
                    (w - g).abs() <= 1e-4 * w.abs().max(1.0),
                    "gemm_bt {m}x{k}x{n}"
                );
            }

            // aᵀ path: store A transposed ([k×m]) and ask for aᵀ·b.
            let mut at = vec![0.0; k * m];
            for i in 0..m {
                for p in 0..k {
                    at[p * m + i] = a[i * k + p];
                }
            }
            let mut got = vec![9.9; m * n];
            gemm_at(m, k, n, &at, &b, &mut got, false);
            for (w, g) in want.iter().zip(&got) {
                assert!(
                    (w - g).abs() <= 1e-4 * w.abs().max(1.0),
                    "gemm_at {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn prepacked_is_bit_identical_to_gemm_at_every_row_count() {
        let k = 11;
        let n = 21;
        let b = fill(k * n, 42);
        let packed = PackedB::pack(k, n, &b);
        assert_eq!((packed.k(), packed.n()), (k, n));
        for m in 1..=9 {
            let a = fill(m * k, m as u64);
            let mut want = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut want, false);
            let mut got = vec![9.9; m * n];
            gemm_prepacked(m, &a, &packed, &mut got, false);
            assert_eq!(got, want, "m={m}");
            // The accumulate path matches gemm wherever gemm itself runs the
            // packed kernel (m ≥ PACK_MIN_ROWS); below that the fold-in
            // association differs by design (see the PackedB docs).
            if m >= PACK_MIN_ROWS {
                let mut acc_want = vec![0.25; m * n];
                gemm(m, k, n, &a, &b, &mut acc_want, true);
                let mut acc_got = vec![0.25; m * n];
                gemm_prepacked(m, &a, &packed, &mut acc_got, true);
                assert_eq!(acc_got, acc_want, "acc m={m}");
            }
        }
    }

    #[test]
    fn zero_k_zeroes_output() {
        let mut out = vec![5.0; 6];
        gemm(2, 0, 3, &[], &[], &mut out, false);
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        // A big product followed by a small one must not read stale pack data.
        let a = fill(16 * 32, 1);
        let b = fill(32 * 24, 2);
        let mut out = vec![0.0; 16 * 24];
        gemm(16, 32, 24, &a, &b, &mut out, false);

        let a2 = fill(4 * 3, 3);
        let b2 = fill(3 * 5, 4);
        let mut got = vec![0.0; 4 * 5];
        gemm(4, 3, 5, &a2, &b2, &mut got, false);
        let want = naive(4, 3, 5, &a2, &b2);
        for (w, g) in want.iter().zip(&got) {
            assert!((w - g).abs() < 1e-5);
        }
    }

    #[test]
    fn accumulate_adds_onto_existing() {
        for &(m, k, n) in &[(1, 4, 5), (5, 7, 11), (8, 3, 8)] {
            let a = fill(m * k, 7);
            let b = fill(k * n, 8);
            let want: Vec<f32> = naive(m, k, n, &a, &b).iter().map(|v| v + 0.5).collect();
            let mut got = vec![0.5; m * n];
            gemm(m, k, n, &a, &b, &mut got, true);
            for (w, g) in want.iter().zip(&got) {
                assert!(
                    (w - g).abs() <= 1e-4 * w.abs().max(1.0),
                    "acc gemm {m}x{k}x{n}"
                );
            }
        }
    }
}
