//! Optimizers: SGD (with momentum) and Adam, plus global-norm gradient
//! clipping. The paper trains DeepST with Adam (§V-A).

use crate::array::Array;
use crate::param::Param;

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[&Param], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        total += p.grad().sq_norm();
    }
    rescale(params.iter().copied(), total, max_norm)
}

/// [`clip_grad_norm`] over *parameter groups*: each inner slice is one
/// logical tensor whose members are consecutive row blocks (a sharded
/// embedding table), and its squared norm is accumulated by chaining
/// [`Array::sq_norm_acc`] across the blocks in order — the identical float
/// addition sequence as `sq_norm` of the unsharded tensor, so the clip
/// decision (and hence training) is bit-identical to the dense layout.
/// Unallocated (cold-shard) gradients contribute exactly nothing, which is
/// also bitwise-neutral: every partial accumulator is non-negative and
/// `x + 0.0 == x` bitwise for non-negative `x`.
///
/// Singleton groups reproduce [`clip_grad_norm`] bit for bit.
pub fn clip_grad_norm_grouped(groups: &[Vec<&Param>], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for group in groups {
        let mut acc = 0.0f32;
        for p in group {
            acc = p.grad().sq_norm_acc(acc);
        }
        total += acc;
    }
    rescale(groups.iter().flatten().copied(), total, max_norm)
}

fn rescale<'p>(params: impl Iterator<Item = &'p Param>, total: f32, max_norm: f32) -> f32 {
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            // temporary move-out to avoid aliasing value/grad borrows;
            // an unallocated gradient clones empty and stays unallocated
            let mut g = p.grad().clone();
            g.scale_mut(scale);
            p.zero_grad();
            p.accumulate_grad(&g);
        }
    }
    norm
}

/// Common optimizer interface: consume accumulated gradients and update
/// parameter values in place, then zero the gradients.
pub trait Optimizer {
    /// Apply one update step. `params` must be the same set, in the same
    /// order, on every call.
    fn step(&mut self, params: &[&Param]);
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Array>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[&Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Array::zeros_like(&p.value()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "param set changed between steps"
        );
        for (p, v) in params.iter().zip(&mut self.velocity) {
            // An unallocated gradient is an exact zero: decay the velocity
            // (which may still be nonzero) but skip the vacuous g terms.
            let g = p.grad().clone();
            if self.momentum > 0.0 {
                v.scale_mut(self.momentum);
                if !g.is_empty() {
                    v.add_assign(&g);
                }
                p.apply_update(-self.lr, v);
            } else if !g.is_empty() {
                p.apply_update(-self.lr, &g);
            }
            p.zero_grad();
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2014) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Array>,
    v: Vec<Array>,
}

impl Adam {
    /// Adam with default β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0 && eps > 0.0);
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the full optimizer state (hyper-parameters, step counter,
    /// first/second-moment estimates) for checkpointing. The moment vectors
    /// are empty before the first [`Optimizer::step`].
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restore a state captured by [`Adam::export_state`]. The next
    /// [`Optimizer::step`] continues exactly where the snapshot left off;
    /// moment shapes are validated lazily against the parameter set there.
    pub fn import_state(&mut self, state: AdamState) -> Result<(), String> {
        if state.m.len() != state.v.len() {
            return Err(format!(
                "adam state has {} first moments but {} second moments",
                state.m.len(),
                state.v.len()
            ));
        }
        for (m, v) in state.m.iter().zip(&state.v) {
            if m.shape() != v.shape() {
                return Err(format!(
                    "adam moment shape mismatch: m {:?} vs v {:?}",
                    m.shape(),
                    v.shape()
                ));
            }
        }
        let hypers_ok = state.lr > 0.0
            && state.eps > 0.0
            && (0.0..1.0).contains(&state.beta1)
            && (0.0..1.0).contains(&state.beta2);
        if !hypers_ok {
            return Err("adam hyper-parameters out of range".to_string());
        }
        self.t = state.t;
        self.lr = state.lr;
        self.beta1 = state.beta1;
        self.beta2 = state.beta2;
        self.eps = state.eps;
        self.m = state.m;
        self.v = state.v;
        Ok(())
    }
}

/// A checkpointable snapshot of an [`Adam`] optimizer.
#[derive(Debug, Clone)]
pub struct AdamState {
    /// Steps taken (drives bias correction).
    pub t: u64,
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// First-moment estimates, one per parameter in step order.
    pub m: Vec<Array>,
    /// Second-moment estimates, one per parameter in step order.
    pub v: Vec<Array>,
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[&Param]) {
        if self.m.is_empty() {
            // Per-parameter moments start as empty sentinels and are
            // materialized the first time the parameter shows a gradient —
            // a never-touched (cold) embedding shard costs zero moment
            // bytes. Skipping it is exact: with m = v = 0 and g = 0 the
            // dense update is value += -0.0, a bitwise no-op.
            self.m = params.iter().map(|_| Array::zeros(&[0])).collect();
            self.v = params.iter().map(|_| Array::zeros(&[0])).collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "param set changed between steps"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad().clone();
            let g_zero = g.is_empty();
            if m.is_empty() {
                if g_zero {
                    continue; // still cold: exact zero update, keep it so
                }
                *m = Array::zeros_like(&p.value());
                *v = Array::zeros_like(&p.value());
            }
            // Once a parameter has history, every step must run (the
            // moments decay) even when this step's gradient is zero —
            // exactly as the dense layout would.
            let n = m.len();
            for i in 0..n {
                let gi = if g_zero { 0.0 } else { g.data()[i] };
                let mi = &mut m.data_mut()[i];
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                let vi = &mut v.data_mut()[i];
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                let delta = -self.lr * m_hat / (v_hat.sqrt() + self.eps);
                p.value_mut().data_mut()[i] += delta;
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::param::Binder;
    use crate::tape::Tape;

    /// One gradient step on loss = (w − target)².
    fn quad_step(w: &Param, target: f32) {
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let wv = b.var(w);
        let t = b.input(Array::full(w.value().shape(), target));
        let loss = ops::sum_all(ops::square(ops::sub(wv, t)));
        let grads = tape.backward(loss);
        b.accumulate_grads(&grads);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Param::new("w", Array::vector(vec![5.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quad_step(&w, 2.0);
            opt.step(&[&w]);
        }
        assert!((w.value().data()[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = Param::new("w", Array::vector(vec![-3.0]));
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        for _ in 0..200 {
            quad_step(&w, 1.0);
            opt.step(&[&w]);
        }
        assert!((w.value().data()[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = Param::new("w", Array::vector(vec![5.0, -4.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            quad_step(&w, 2.0);
            opt.step(&[&w]);
        }
        assert!((w.value().data()[0] - 2.0).abs() < 1e-2);
        assert!((w.value().data()[1] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn clip_reduces_norm() {
        let p = Param::new("p", Array::vector(vec![0.0, 0.0]));
        p.accumulate_grad(&Array::vector(vec![3.0, 4.0])); // norm 5
        let pre = clip_grad_norm(&[&p], 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let post = p.grad().sq_norm().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let p = Param::new("p", Array::vector(vec![0.0]));
        p.accumulate_grad(&Array::vector(vec![0.5]));
        clip_grad_norm(&[&p], 1.0);
        assert!((p.grad().data()[0] - 0.5).abs() < 1e-6);
    }

    /// A grouped clip over row blocks must make the same decision — and
    /// leave the same gradient bits — as a dense clip over the
    /// concatenated tensor.
    #[test]
    fn grouped_clip_matches_dense_clip_bitwise() {
        let g: Vec<f32> = (0..12).map(|i| (i as f32 - 4.0) * 0.7).collect();
        let dense = Param::new("d", Array::zeros(&[4, 3]));
        dense.accumulate_grad(&Array::from_vec(&[4, 3], g.clone()));
        let b0 = Param::new("d.b0", Array::zeros(&[2, 3]));
        let b1 = Param::new("d.b1", Array::zeros(&[2, 3]));
        b0.accumulate_grad(&Array::from_vec(&[2, 3], g[..6].to_vec()));
        b1.accumulate_grad(&Array::from_vec(&[2, 3], g[6..].to_vec()));
        let o_dense = Param::new("o", Array::zeros(&[2]));
        let o_grouped = Param::new("o", Array::zeros(&[2]));
        let og = Array::vector(vec![0.3, -2.0]);
        o_dense.accumulate_grad(&og);
        o_grouped.accumulate_grad(&og);

        let n_dense = clip_grad_norm(&[&dense, &o_dense], 1.5);
        let n_grouped = clip_grad_norm_grouped(&[vec![&b0, &b1], vec![&o_grouped]], 1.5);
        assert_eq!(n_dense.to_bits(), n_grouped.to_bits());
        let dense_bits: Vec<u32> = dense.grad().data().iter().map(|v| v.to_bits()).collect();
        let blocked_bits: Vec<u32> = b0
            .grad()
            .data()
            .iter()
            .chain(b1.grad().data().iter())
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(dense_bits, blocked_bits);
        let ob: Vec<u32> = o_dense.grad().data().iter().map(|v| v.to_bits()).collect();
        let og2: Vec<u32> = o_grouped
            .grad()
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(ob, og2);
    }

    /// Cold-shard skipping in Adam is exact: a parameter that never sees a
    /// gradient ends a multi-step run with bit-identical values to one fed
    /// explicit zero gradients, and costs zero moment bytes throughout.
    #[test]
    fn adam_cold_param_skip_is_bit_identical_to_zero_grads() {
        let run = |feed_zeros: bool| -> (Vec<u32>, bool) {
            let hot = Param::new("hot", Array::vector(vec![5.0, -4.0]));
            let cold = Param::new("cold", Array::vector(vec![1.25, -0.5, 3.0]));
            let mut opt = Adam::new(0.1);
            for _ in 0..25 {
                quad_step(&hot, 2.0);
                if feed_zeros {
                    cold.accumulate_grad(&Array::zeros(&[3]));
                }
                opt.step(&[&hot, &cold]);
            }
            let mut bits: Vec<u32> = hot.value().data().iter().map(|v| v.to_bits()).collect();
            bits.extend(cold.value().data().iter().map(|v| v.to_bits()));
            let cold_moments_empty = opt.m[1].is_empty() && opt.v[1].is_empty();
            (bits, cold_moments_empty)
        };
        let (lazy_bits, lazy_empty) = run(false);
        let (dense_bits, dense_empty) = run(true);
        assert_eq!(lazy_bits, dense_bits);
        assert!(lazy_empty, "cold param allocated moments");
        assert!(!dense_empty, "zero-fed param should have materialized");
    }

    /// Once a parameter has gradient history, a later zero-gradient step
    /// must still decay its moments (it is no longer skippable).
    #[test]
    fn adam_steps_hot_param_with_empty_grad() {
        let w = Param::new("w", Array::vector(vec![1.0]));
        let mut opt = Adam::new(0.1);
        quad_step(&w, 0.0);
        opt.step(&[&w]);
        let after_one = w.value().data()[0];
        // no new gradient: momentum keeps moving the value
        opt.step(&[&w]);
        assert_ne!(after_one.to_bits(), w.value().data()[0].to_bits());
    }

    /// Splitting a run at an arbitrary step via export/import must produce
    /// bit-identical parameters to the uninterrupted run.
    #[test]
    fn adam_state_roundtrip_is_bit_identical() {
        let run = |split: Option<usize>| -> Vec<u32> {
            let w = Param::new("w", Array::vector(vec![5.0, -4.0]));
            let mut opt = Adam::new(0.1);
            for step in 0..40 {
                if Some(step) == split {
                    let state = opt.export_state();
                    let mut fresh = Adam::new(0.33); // different lr, overwritten
                    fresh.import_state(state).unwrap();
                    opt = fresh;
                }
                quad_step(&w, 2.0);
                opt.step(&[&w]);
            }
            let bits: Vec<u32> = w.value().data().iter().map(|v| v.to_bits()).collect();
            bits
        };
        let solid = run(None);
        assert_eq!(solid, run(Some(17)));
        assert_eq!(solid, run(Some(1)));
    }

    #[test]
    fn adam_import_rejects_inconsistent_state() {
        let mut opt = Adam::new(0.1);
        let mut bad = opt.export_state();
        bad.m.push(Array::vector(vec![0.0]));
        assert!(opt.import_state(bad).is_err());
        let mut bad_lr = opt.export_state();
        bad_lr.lr = -1.0;
        assert!(opt.import_state(bad_lr).is_err());
    }

    #[test]
    fn step_zeroes_gradients() {
        let w = Param::new("w", Array::vector(vec![1.0]));
        quad_step(&w, 0.0);
        let mut opt = Adam::new(0.01);
        opt.step(&[&w]);
        assert_eq!(w.grad().data(), &[0.0]);
        assert_eq!(opt.steps(), 1);
    }
}
