//! Optimizers: SGD (with momentum) and Adam, plus global-norm gradient
//! clipping. The paper trains DeepST with Adam (§V-A).

use crate::array::Array;
use crate::param::Param;

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[&Param], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        total += p.grad().sq_norm();
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            // temporary move-out to avoid aliasing value/grad borrows
            let mut g = p.grad().clone();
            g.scale_mut(scale);
            p.zero_grad();
            p.accumulate_grad(&g);
        }
    }
    norm
}

/// Common optimizer interface: consume accumulated gradients and update
/// parameter values in place, then zero the gradients.
pub trait Optimizer {
    /// Apply one update step. `params` must be the same set, in the same
    /// order, on every call.
    fn step(&mut self, params: &[&Param]);
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Array>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[&Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Array::zeros_like(&p.value()))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "param set changed between steps"
        );
        for (p, v) in params.iter().zip(&mut self.velocity) {
            let g = p.grad().clone();
            if self.momentum > 0.0 {
                v.scale_mut(self.momentum);
                v.add_assign(&g);
                p.apply_update(-self.lr, v);
            } else {
                p.apply_update(-self.lr, &g);
            }
            p.zero_grad();
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2014) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Array>,
    v: Vec<Array>,
}

impl Adam {
    /// Adam with default β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0 && eps > 0.0);
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0);
        self.lr = lr;
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[&Param]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Array::zeros_like(&p.value()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Array::zeros_like(&p.value()))
                .collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "param set changed between steps"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad().clone();
            for i in 0..g.len() {
                let gi = g.data()[i];
                let mi = &mut m.data_mut()[i];
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                let vi = &mut v.data_mut()[i];
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                let delta = -self.lr * m_hat / (v_hat.sqrt() + self.eps);
                p.value_mut().data_mut()[i] += delta;
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::param::Binder;
    use crate::tape::Tape;

    /// One gradient step on loss = (w − target)².
    fn quad_step(w: &Param, target: f32) {
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let wv = b.var(w);
        let t = b.input(Array::full(w.value().shape(), target));
        let loss = ops::sum_all(ops::square(ops::sub(wv, t)));
        let grads = tape.backward(loss);
        b.accumulate_grads(&grads);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Param::new("w", Array::vector(vec![5.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quad_step(&w, 2.0);
            opt.step(&[&w]);
        }
        assert!((w.value().data()[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = Param::new("w", Array::vector(vec![-3.0]));
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        for _ in 0..200 {
            quad_step(&w, 1.0);
            opt.step(&[&w]);
        }
        assert!((w.value().data()[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = Param::new("w", Array::vector(vec![5.0, -4.0]));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            quad_step(&w, 2.0);
            opt.step(&[&w]);
        }
        assert!((w.value().data()[0] - 2.0).abs() < 1e-2);
        assert!((w.value().data()[1] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn clip_reduces_norm() {
        let p = Param::new("p", Array::vector(vec![0.0, 0.0]));
        p.accumulate_grad(&Array::vector(vec![3.0, 4.0])); // norm 5
        let pre = clip_grad_norm(&[&p], 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let post = p.grad().sq_norm().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_below_threshold() {
        let p = Param::new("p", Array::vector(vec![0.0]));
        p.accumulate_grad(&Array::vector(vec![0.5]));
        clip_grad_norm(&[&p], 1.0);
        assert!((p.grad().data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn step_zeroes_gradients() {
        let w = Param::new("w", Array::vector(vec![1.0]));
        quad_step(&w, 0.0);
        let mut opt = Adam::new(0.01);
        opt.step(&[&w]);
        assert_eq!(w.grad().data(), &[0.0]);
        assert_eq!(opt.steps(), 1);
    }
}
