//! Random initialization and sampling helpers.
//!
//! All randomness in the workspace flows through seeded [`rand::rngs::StdRng`]
//! instances so every experiment is reproducible. Gaussian samples use
//! Box–Muller (the approved `rand` crate alone ships only uniform sampling).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::array::Array;

/// A seeded RNG for deterministic experiments.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via Box–Muller.
pub fn sample_normal(rng: &mut StdRng) -> f32 {
    // Avoid u1 == 0 which would make ln blow up.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// One Gumbel(0, 1) sample (for the Gumbel-Softmax relaxation, §IV-D).
pub fn sample_gumbel(rng: &mut StdRng) -> f32 {
    let u: f32 = rng.gen_range(f32::EPSILON..1.0);
    -(-u.ln()).ln()
}

/// Array of i.i.d. `N(0, std²)` samples.
pub fn randn(shape: &[usize], std: f32, rng: &mut StdRng) -> Array {
    let n: usize = shape.iter().product();
    Array::from_vec(shape, (0..n).map(|_| sample_normal(rng) * std).collect())
}

/// SplitMix64 finalizer: one statistically independent 64-bit stream seed
/// per `(table_seed, row)` pair.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG that generates row `row` of a table keyed by `table_seed`.
///
/// Each row gets its own seeded stream, so row `r`'s values depend only on
/// `(table_seed, r)` — never on how many rows precede it or how the table is
/// partitioned into blocks. A row-sharded table and a dense table built from
/// the same `table_seed` are therefore bit-identical row by row.
pub fn row_rng(table_seed: u64, row: usize) -> StdRng {
    StdRng::seed_from_u64(splitmix64(
        table_seed ^ (row as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
    ))
}

/// Fill one table row with i.i.d. `N(0, std²)` samples drawn from its
/// dedicated [`row_rng`] stream.
pub fn fill_normal_row(buf: &mut [f32], std: f32, table_seed: u64, row: usize) {
    let mut r = row_rng(table_seed, row);
    for o in buf.iter_mut() {
        *o = sample_normal(&mut r) * std;
    }
}

/// A `[rows, cols]` matrix of `N(0, std²)` samples drawn row by row from
/// per-row [`row_rng`] streams — the vocab-order-deterministic counterpart
/// of [`randn`] used for (possibly sharded) embedding tables.
pub fn randn_rows(rows: usize, cols: usize, std: f32, table_seed: u64) -> Array {
    let mut a = Array::zeros(&[rows, cols]);
    for r in 0..rows {
        fill_normal_row(a.row_mut(r), std, table_seed, r);
    }
    a
}

/// Array of i.i.d. `U(lo, hi)` samples.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Array {
    let n: usize = shape.iter().product();
    Array::from_vec(shape, (0..n).map(|_| rng.gen_range(lo..hi)).collect())
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Array {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], -bound, bound, rng)
}

/// He/Kaiming uniform init (for ReLU-family activations), arbitrary shape
/// with explicit fan-in.
pub fn kaiming(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Array {
    let bound = (3.0 / fan_in as f32).sqrt() * std::f32::consts::SQRT_2;
    uniform(shape, -bound, bound, rng)
}

/// Sample an index from an (unnormalized, non-negative) weight slice.
pub fn sample_categorical(weights: &[f32], rng: &mut StdRng) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f32 = weights.iter().sum();
    if total <= 0.0 {
        // degenerate: uniform fallback
        return rng.gen_range(0..weights.len());
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a = randn(&[4], 1.0, &mut rng(7));
        let b = randn(&[4], 1.0, &mut rng(7));
        assert_eq!(a.data(), b.data());
        let c = randn(&[4], 1.0, &mut rng(8));
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn randn_rows_is_row_deterministic() {
        // Row r of a table depends only on (table_seed, r): any sub-range of
        // rows, generated independently, matches the dense table bitwise.
        let dense = randn_rows(64, 7, 0.1, 99);
        for (rows, start) in [(16usize, 0usize), (16, 16), (5, 59)] {
            for r in 0..rows {
                let mut buf = vec![0.0f32; 7];
                fill_normal_row(&mut buf, 0.1, 99, start + r);
                assert_eq!(buf.as_slice(), dense.row(start + r), "row {}", start + r);
            }
        }
        // and a different table seed gives a different table
        let other = randn_rows(64, 7, 0.1, 100);
        assert_ne!(dense.data(), other.data());
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| sample_normal(&mut r)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gumbel_mean_is_euler_gamma() {
        let mut r = rng(11);
        let n = 20_000;
        let mean: f32 = (0..n).map(|_| sample_gumbel(&mut r)).sum::<f32>() / n as f32;
        assert!((mean - 0.5772).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn uniform_bounds() {
        let a = uniform(&[1000], -2.0, 3.0, &mut rng(1));
        assert!(a.min() >= -2.0 && a.max() < 3.0);
    }

    #[test]
    fn xavier_bound() {
        let a = xavier(100, 100, &mut rng(2));
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(a.max() <= bound && a.min() >= -bound);
        assert_eq!(a.shape(), &[100, 100]);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng(3);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[sample_categorical(&w, &mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f32 / 4000.0;
        assert!((frac2 - 0.75).abs() < 0.05, "frac {frac2}");
    }

    #[test]
    fn categorical_degenerate_weights() {
        let mut r = rng(4);
        let w = [0.0, 0.0];
        // must not panic, returns a valid index
        for _ in 0..10 {
            assert!(sample_categorical(&w, &mut r) < 2);
        }
    }
}
