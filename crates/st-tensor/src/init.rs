//! Random initialization and sampling helpers.
//!
//! All randomness in the workspace flows through seeded [`rand::rngs::StdRng`]
//! instances so every experiment is reproducible. Gaussian samples use
//! Box–Muller (the approved `rand` crate alone ships only uniform sampling).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::array::Array;

/// A seeded RNG for deterministic experiments.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via Box–Muller.
pub fn sample_normal(rng: &mut StdRng) -> f32 {
    // Avoid u1 == 0 which would make ln blow up.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// One Gumbel(0, 1) sample (for the Gumbel-Softmax relaxation, §IV-D).
pub fn sample_gumbel(rng: &mut StdRng) -> f32 {
    let u: f32 = rng.gen_range(f32::EPSILON..1.0);
    -(-u.ln()).ln()
}

/// Array of i.i.d. `N(0, std²)` samples.
pub fn randn(shape: &[usize], std: f32, rng: &mut StdRng) -> Array {
    let n: usize = shape.iter().product();
    Array::from_vec(shape, (0..n).map(|_| sample_normal(rng) * std).collect())
}

/// Array of i.i.d. `U(lo, hi)` samples.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Array {
    let n: usize = shape.iter().product();
    Array::from_vec(shape, (0..n).map(|_| rng.gen_range(lo..hi)).collect())
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Array {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], -bound, bound, rng)
}

/// He/Kaiming uniform init (for ReLU-family activations), arbitrary shape
/// with explicit fan-in.
pub fn kaiming(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Array {
    let bound = (3.0 / fan_in as f32).sqrt() * std::f32::consts::SQRT_2;
    uniform(shape, -bound, bound, rng)
}

/// Sample an index from an (unnormalized, non-negative) weight slice.
pub fn sample_categorical(weights: &[f32], rng: &mut StdRng) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f32 = weights.iter().sum();
    if total <= 0.0 {
        // degenerate: uniform fallback
        return rng.gen_range(0..weights.len());
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a = randn(&[4], 1.0, &mut rng(7));
        let b = randn(&[4], 1.0, &mut rng(7));
        assert_eq!(a.data(), b.data());
        let c = randn(&[4], 1.0, &mut rng(8));
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| sample_normal(&mut r)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gumbel_mean_is_euler_gamma() {
        let mut r = rng(11);
        let n = 20_000;
        let mean: f32 = (0..n).map(|_| sample_gumbel(&mut r)).sum::<f32>() / n as f32;
        assert!((mean - 0.5772).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn uniform_bounds() {
        let a = uniform(&[1000], -2.0, 3.0, &mut rng(1));
        assert!(a.min() >= -2.0 && a.max() < 3.0);
    }

    #[test]
    fn xavier_bound() {
        let a = xavier(100, 100, &mut rng(2));
        let bound = (6.0f32 / 200.0).sqrt();
        assert!(a.max() <= bound && a.min() >= -bound);
        assert_eq!(a.shape(), &[100, 100]);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut r = rng(3);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[sample_categorical(&w, &mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f32 / 4000.0;
        assert!((frac2 - 0.75).abs() < 0.05, "frac {frac2}");
    }

    #[test]
    fn categorical_degenerate_weights() {
        let mut r = rng(4);
        let w = [0.0, 0.0];
        // must not panic, returns a valid index
        for _ in 0..10 {
            assert!(sample_categorical(&w, &mut r) < 2);
        }
    }
}
