//! Runtime SIMD feature detection shared by every twice-compiled kernel.
//!
//! The pattern (established in `gemm.rs`, reused by `mathfn.rs` and
//! `infer.rs`): a safe `#[inline(always)]` implementation is compiled twice —
//! once baseline, once inside a `#[target_feature(enable = "avx2", enable =
//! "fma")]` wrapper — and the wrapper is selected here at runtime. The crate
//! therefore stays portable without `-C target-cpu` while hot loops get
//! 8-wide FMAs on hosts that have them.

/// Whether this x86-64 host has AVX2 + FMA (checked once per process).
///
/// Returns `false` under Miri (which does not model the intrinsics) and when
/// the `ST_TENSOR_FORCE_SCALAR` environment variable is set to anything
/// non-empty — the escape hatch CI uses to smoke-test the portable kernels
/// on AVX2 hardware.
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn avx2_fma() -> bool {
    use std::sync::OnceLock;
    static OK: OnceLock<bool> = OnceLock::new();
    if cfg!(miri) {
        // Miri interprets MIR and does not model AVX2 intrinsics; force the
        // portable kernels so the unsafe paths stay checkable under it.
        return false;
    }
    *OK.get_or_init(|| {
        if std::env::var_os("ST_TENSOR_FORCE_SCALAR").is_some_and(|v| !v.is_empty()) {
            return false;
        }
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    })
}

/// Non-x86 fallback: the baseline kernels are the only kernels.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub(crate) fn avx2_fma() -> bool {
    false
}

/// Whether the SIMD (AVX2+FMA) kernel builds are active on this host —
/// public so benchmark writers can record it alongside their numbers.
pub fn simd_active() -> bool {
    avx2_fma()
}
