//! Row-blocked parameter layout for tensors too large to touch
//! monolithically.
//!
//! A [`BlockedParam`] is one logical `[rows, cols]` matrix stored as
//! consecutive row blocks of at most `block_rows` rows, each an ordinary
//! [`Param`]. Everything downstream — tape binding, gradient accumulation,
//! clipping, the optimizer, checkpointing — operates on the per-block
//! `Param`s, so:
//!
//! - a forward pass binds (copies onto the tape) only the blocks its
//!   lookups touch; cold blocks cost **zero tape bytes**;
//! - gradients and optimizer moments materialize lazily per block (see
//!   [`Param`]'s empty-sentinel gradients); cold blocks cost **zero
//!   gradient/moment bytes**;
//! - checkpoints serialize each block as its own named tensor entry.
//!
//! **Residency rule:** a block becomes *resident* the first time a lookup
//! gradient touches it, and stays resident for the life of the process
//! (its gradient/moment buffers are retained, zeroed between steps). The
//! resident set is therefore the union of all rows ever trained on —
//! bounded by workload locality, not by vocabulary size.
//!
//! **Bit-identity:** a `BlockedParam` whose rows were initialized with the
//! per-row deterministic streams of [`crate::init::randn_rows`] holds
//! exactly the bytes of the equivalent dense table, block boundaries
//! included; combined with order-preserving blocked gather
//! ([`crate::ops::gather_rows_blocked`]) and chained-accumulator grouped
//! clipping ([`crate::optim::clip_grad_norm_grouped`]), training on the
//! blocked layout is bit-identical to the dense layout.

use crate::array::Array;
use crate::param::Param;

/// A `[rows, cols]` matrix partitioned into consecutive row blocks, each a
/// [`Param`] of at most `block_rows` rows. See the module docs for the
/// residency and bit-identity contracts.
#[derive(Debug)]
pub struct BlockedParam {
    name: String,
    rows: usize,
    cols: usize,
    block_rows: usize,
    blocks: Vec<Param>,
}

impl BlockedParam {
    /// Build a blocked `[rows, cols]` matrix whose row `r` is filled by
    /// `fill_row(r, buf)`. Rows are generated in vocabulary order, one
    /// block at a time; because `fill_row` receives the *global* row index,
    /// the produced bytes do not depend on `block_rows`.
    ///
    /// With a single block the block's `Param` is named `name` verbatim
    /// (the dense layout, and the legacy checkpoint entry name); with
    /// several, block `i` is `name.b{i}`.
    pub fn from_rows(
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        block_rows: usize,
        mut fill_row: impl FnMut(usize, &mut [f32]),
    ) -> Self {
        let name = name.into();
        assert!(rows > 0 && cols > 0, "blocked param must be non-empty");
        assert!(block_rows > 0, "block_rows must be positive");
        let n_blocks = rows.div_ceil(block_rows);
        let mut blocks = Vec::with_capacity(n_blocks);
        for b in 0..n_blocks {
            let lo = b * block_rows;
            let hi = (lo + block_rows).min(rows);
            let mut value = Array::zeros(&[hi - lo, cols]);
            for r in lo..hi {
                fill_row(r, value.row_mut(r - lo));
            }
            let block_name = if n_blocks == 1 {
                name.clone()
            } else {
                format!("{name}.b{b}")
            };
            blocks.push(Param::new(block_name, value));
        }
        Self {
            name,
            rows,
            cols,
            block_rows,
            blocks,
        }
    }

    /// Build from an existing dense `[rows, cols]` array (tests, format
    /// migration).
    pub fn from_dense(name: impl Into<String>, dense: &Array, block_rows: usize) -> Self {
        assert_eq!(dense.ndim(), 2, "from_dense expects a 2-D array");
        let (rows, cols) = (dense.shape()[0], dense.shape()[1]);
        Self::from_rows(name, rows, cols, block_rows, |r, buf| {
            buf.copy_from_slice(dense.row(r))
        })
    }

    /// The logical tensor's name (block `Param`s are `name.b{i}`, or `name`
    /// itself when there is a single block).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total logical rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns (identical across blocks).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows per block (the last block may be shorter).
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of row blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Map a global row to its `(block index, row within block)`.
    pub fn locate(&self, row: usize) -> (usize, usize) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        (row / self.block_rows, row % self.block_rows)
    }

    /// One block's backing [`Param`].
    pub fn block(&self, b: usize) -> &Param {
        &self.blocks[b]
    }

    /// All blocks, in row order.
    pub fn blocks(&self) -> &[Param] {
        &self.blocks
    }

    /// Copy one logical row out of its block.
    pub fn row_copy(&self, row: usize, out: &mut [f32]) {
        let (b, r) = self.locate(row);
        out.copy_from_slice(self.blocks[b].value().row(r));
    }

    /// Materialize the dense `[rows, cols]` equivalent (checkpoint
    /// migration, quantization, parity oracles) — the one deliberate
    /// full-size allocation in the blocked API.
    pub fn to_dense(&self) -> Array {
        let mut out = Array::zeros(&[self.rows, self.cols]);
        let mut row = 0;
        for p in &self.blocks {
            let v = p.value();
            for r in 0..v.shape()[0] {
                out.row_mut(row).copy_from_slice(v.row(r));
                row += 1;
            }
        }
        out
    }

    /// Bytes held by block values (always resident in this layout).
    pub fn value_bytes(&self) -> usize {
        self.rows * self.cols * std::mem::size_of::<f32>()
    }

    /// Bytes held by *materialized* gradient buffers — the resident set.
    /// Cold blocks contribute zero.
    pub fn resident_grad_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|p| p.grad().len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Number of blocks whose gradient has ever been touched.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.iter().filter(|p| p.grad_allocated()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn blocking_is_invisible_in_the_bytes() {
        // Same per-row init, three different block sizes → identical dense
        // bytes, including a short final block.
        let dense = init::randn_rows(10, 3, 0.1, 42);
        for block_rows in [1usize, 4, 10, 64] {
            let bp = BlockedParam::from_rows("t", 10, 3, block_rows, |r, buf| {
                init::fill_normal_row(buf, 0.1, 42, r)
            });
            assert_eq!(
                bp.to_dense().data(),
                dense.data(),
                "block_rows {block_rows}"
            );
            assert_eq!(bp.num_blocks(), 10usize.div_ceil(block_rows));
        }
    }

    #[test]
    fn locate_and_row_copy_agree_with_dense() {
        let dense = init::randn_rows(9, 2, 1.0, 7);
        let bp = BlockedParam::from_dense("t", &dense, 4);
        assert_eq!(bp.num_blocks(), 3);
        assert_eq!(bp.block(2).value().shape(), &[1, 2]);
        for row in 0..9 {
            let (b, r) = bp.locate(row);
            assert_eq!(b, row / 4);
            assert_eq!(r, row % 4);
            let mut buf = [0.0f32; 2];
            bp.row_copy(row, &mut buf);
            assert_eq!(&buf, dense.row(row));
        }
    }

    #[test]
    fn single_block_keeps_the_dense_param_name() {
        let bp = BlockedParam::from_rows("emb.table", 5, 2, 4096, |_, buf| buf.fill(0.0));
        assert_eq!(bp.num_blocks(), 1);
        assert_eq!(bp.block(0).name(), "emb.table");
        let multi = BlockedParam::from_rows("emb.table", 5, 2, 2, |_, buf| buf.fill(0.0));
        assert_eq!(multi.block(0).name(), "emb.table.b0");
        assert_eq!(multi.block(2).name(), "emb.table.b2");
    }

    #[test]
    fn residency_tracks_touched_blocks_only() {
        let bp = BlockedParam::from_rows("t", 8, 2, 2, |_, buf| buf.fill(1.0));
        assert_eq!(bp.resident_blocks(), 0);
        assert_eq!(bp.resident_grad_bytes(), 0);
        bp.block(1)
            .accumulate_grad(&Array::from_vec(&[2, 2], vec![1.0; 4]));
        assert_eq!(bp.resident_blocks(), 1);
        assert_eq!(bp.resident_grad_bytes(), 4 * 4);
        bp.block(1).zero_grad(); // stays resident
        assert_eq!(bp.resident_blocks(), 1);
        assert_eq!(bp.value_bytes(), 8 * 2 * 4);
    }
}
