//! Static analysis of autodiff graphs: shape dry-runs and gradient-flow
//! audits without executing kernels.
//!
//! The analyzer consumes a [`GraphSpec`] — per-node shapes plus the
//! [`OpMeta`] each op records when it is pushed onto a [`crate::Tape`] — and
//! reports typed [`Diagnostic`]s:
//!
//! - **shape mismatches** at the op that introduces them, re-derived from the
//!   engine's own inference rules (so a spec built by [`SpecBuilder`] from
//!   leaf shapes alone is checked end to end, a *dry run* of the graph);
//! - **unreachable parameters**: bound leaves with no gradient path from the
//!   backward root;
//! - **detached subgraphs**: op sinks whose results never reach the root;
//! - **constant-foldable ops**: subgraphs rooted only in `const` leaves,
//!   recomputed every step for the same value;
//! - **NaN hazards**: `div`/`reciprocal` whose denominator is not provably
//!   positive, and `ln`/`sqrt` over possibly-negative inputs, found by a
//!   sign abstract interpretation (see [`Sign`]);
//! - **deep f32 accumulations**: reduction chains whose worst-case serial
//!   accumulation length exceeds a threshold, where f32 rounding error grows
//!   linearly.
//!
//! Graphs come from two sources: [`crate::Tape::export_spec`] snapshots a
//! live tape (the integration path used by the trainer before epoch 0), and
//! [`SpecBuilder`] constructs a spec from leaf shapes only (the pure dry-run
//! path used in tests and planted-defect suites). Every pass is linear in
//! nodes + edges, so analysing even the largest training graph is
//! sub-millisecond.

use std::collections::HashMap;
use std::fmt;

use crate::tape::OpMeta;

/// Shape and op metadata for one tape node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The node's (recorded or inferred) output shape; empty when unknown —
    /// downstream rules involving an unknown shape are skipped rather than
    /// cascaded.
    pub shape: Vec<usize>,
    /// Op name, parents, and attributes as recorded at push time.
    pub op: OpMeta,
}

/// A kernel-free description of an autodiff graph: one [`NodeSpec`] per tape
/// node, ids equal to vector positions (= topological order).
#[derive(Debug, Clone, Default)]
pub struct GraphSpec {
    /// Nodes in tape order.
    pub nodes: Vec<NodeSpec>,
}

/// The category of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// An op's operand shapes violate its inference rule.
    ShapeMismatch,
    /// A bound parameter leaf has no gradient path from the backward root.
    UnreachableParam,
    /// An op sink whose value never reaches the backward root.
    DetachedSubgraph,
    /// An op computed entirely from `const` leaves: same value every step.
    ConstantFoldable,
    /// A `div`/`reciprocal`/`ln`/`sqrt` whose input sign admits NaN/Inf or a
    /// silent clamp.
    NanHazard,
    /// A serial f32 accumulation chain longer than the configured threshold.
    DeepAccumulation,
    /// A model output space narrower than the data it must address (e.g. a
    /// slot head with fewer slots than the road network's max out-degree),
    /// making some targets unlearnable and some transitions undecodable.
    TruncatedOutputSpace,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintKind::ShapeMismatch => "shape-mismatch",
            LintKind::UnreachableParam => "unreachable-param",
            LintKind::DetachedSubgraph => "detached-subgraph",
            LintKind::ConstantFoldable => "constant-foldable",
            LintKind::NanHazard => "nan-hazard",
            LintKind::DeepAccumulation => "deep-accumulation",
            LintKind::TruncatedOutputSpace => "truncated-output-space",
        };
        f.write_str(s)
    }
}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The graph is wrong: training it would panic, silently skip a
    /// parameter, or produce meaningless numbers.
    Error,
    /// The graph works but has a latent defect (wasted compute, a clamp
    /// distorting gradients, precision loss).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// One analyzer finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub kind: LintKind,
    /// Error or warning.
    pub severity: Severity,
    /// The node the finding anchors to, if any.
    pub node: Option<usize>,
    /// Human-readable description naming the op and shapes involved.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(
                f,
                "{} [{}] at node {}: {}",
                self.severity, self.kind, n, self.message
            ),
            None => write!(f, "{} [{}]: {}", self.severity, self.kind, self.message),
        }
    }
}

/// Analyzer thresholds.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Maximum tolerated worst-case serial f32 accumulation length before a
    /// [`LintKind::DeepAccumulation`] warning fires. With f32's 24-bit
    /// mantissa, relative error of naive summation grows like `n · 2⁻²⁴`, so
    /// the default of 10⁵ corresponds to ~0.6% worst-case relative error.
    pub accum_depth_threshold: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self {
            accum_depth_threshold: 100_000,
        }
    }
}

/// The sign lattice of the NaN-hazard abstract interpretation:
/// `Pos ⊑ NonNeg ⊑ Unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Provably `> 0` everywhere.
    Pos,
    /// Provably `>= 0` everywhere.
    NonNeg,
    /// No sign information.
    Unknown,
}

impl Sign {
    fn join(self, other: Sign) -> Sign {
        use Sign::*;
        match (self, other) {
            (Pos, Pos) => Pos,
            (Unknown, _) | (_, Unknown) => Unknown,
            _ => NonNeg,
        }
    }

    fn at_least_nonneg(self) -> bool {
        matches!(self, Sign::Pos | Sign::NonNeg)
    }
}

/// Run every analysis pass over `spec`, treating `root` as the backward root
/// (the loss) and `bound` as the `(name, leaf id)` parameter bindings (see
/// [`crate::Binder::bound_params`]). Findings come back in node order within
/// each pass.
pub fn analyze(
    spec: &GraphSpec,
    root: usize,
    bound: &[(String, usize)],
    cfg: &AnalyzerConfig,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if spec.nodes.is_empty() {
        return diags;
    }
    let root = root.min(spec.nodes.len() - 1);
    let shapes = check_shapes(spec, &mut diags);
    let reachable = ancestors_of(spec, root);
    check_unreachable_params(bound, &reachable, &mut diags);
    check_detached(spec, root, &reachable, &mut diags);
    check_constant_foldable(spec, &reachable, &mut diags);
    check_nan_hazards(spec, &shapes, &mut diags);
    check_accum_depth(spec, &shapes, cfg, &mut diags);
    diags
}

/// True if any diagnostic in `diags` is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

// ---------------------------------------------------------------------------
// Shape inference
// ---------------------------------------------------------------------------

fn fmt_shape(s: &[usize]) -> String {
    format!("{s:?}")
}

/// Derive the output shape of `op` from its parents' shapes using the same
/// rules the kernels enforce at run time. `Err` carries the mismatch message.
/// Parents with unknown (empty) shape make the result unknown (`Ok(vec![])`)
/// instead of cascading errors.
pub fn infer_shape(op: &OpMeta, parent_shapes: &[&[usize]]) -> Result<Vec<usize>, String> {
    if op.parents.len() != parent_shapes.len() {
        return Err(format!(
            "{}: expected {} parent shapes, got {}",
            op.name,
            op.parents.len(),
            parent_shapes.len()
        ));
    }
    if parent_shapes.iter().any(|s| s.is_empty()) && !matches!(op.name, "leaf" | "const") {
        return Ok(Vec::new());
    }
    let p = parent_shapes;
    let numel = |s: &[usize]| s.iter().product::<usize>();
    match op.name {
        "leaf" | "const" => Ok(Vec::new()),
        // Elementwise binary over identical shapes.
        "add" | "sub" | "mul" | "div" => {
            if p[0] == p[1] {
                Ok(p[0].to_vec())
            } else {
                Err(format!(
                    "{}: operand shapes differ: {} vs {}",
                    op.name,
                    fmt_shape(p[0]),
                    fmt_shape(p[1])
                ))
            }
        }
        // Elementwise unary.
        "scale" | "add_scalar" | "exp" | "ln" | "sqrt" | "square" | "reciprocal" | "sigmoid"
        | "tanh" | "relu" | "leaky_relu" | "softplus" => Ok(p[0].to_vec()),
        "matmul" => {
            let (a, b) = (p[0], p[1]);
            if a.len() != 2 || b.len() != 2 {
                Err(format!(
                    "matmul: operands must be 2-D, got {} and {}",
                    fmt_shape(a),
                    fmt_shape(b)
                ))
            } else if a[1] != b[0] {
                Err(format!(
                    "matmul: inner dims differ: {} · {}",
                    fmt_shape(a),
                    fmt_shape(b)
                ))
            } else {
                Ok(vec![a[0], b[1]])
            }
        }
        "affine" => {
            let (x, w, b) = (p[0], p[1], p[2]);
            if x.len() != 2 || w.len() != 2 {
                Err(format!(
                    "affine: x and w must be 2-D, got {} and {}",
                    fmt_shape(x),
                    fmt_shape(w)
                ))
            } else if x[1] != w[0] {
                Err(format!(
                    "affine: inner dims differ: {} · {}",
                    fmt_shape(x),
                    fmt_shape(w)
                ))
            } else if numel(b) != w[1] {
                Err(format!(
                    "affine: bias {} does not match output width {}",
                    fmt_shape(b),
                    w[1]
                ))
            } else {
                Ok(vec![x[0], w[1]])
            }
        }
        "add_bias" | "mul_row_broadcast" => {
            let (a, v) = (p[0], p[1]);
            if a.len() != 2 {
                Err(format!(
                    "{}: expects a 2-D left operand, got {}",
                    op.name,
                    fmt_shape(a)
                ))
            } else if numel(v) != a[1] {
                Err(format!(
                    "{}: row vector {} does not match width of {}",
                    op.name,
                    fmt_shape(v),
                    fmt_shape(a)
                ))
            } else {
                Ok(a.to_vec())
            }
        }
        "sum_all" => Ok(vec![1]),
        "row_sum" => {
            if p[0].len() != 2 {
                Err(format!("row_sum: expects 2-D, got {}", fmt_shape(p[0])))
            } else {
                Ok(vec![p[0][0]])
            }
        }
        "reshape" => {
            let target = &op.iattrs;
            if numel(p[0]) != numel(target) {
                Err(format!(
                    "reshape: {} has {} elements, target {} has {}",
                    fmt_shape(p[0]),
                    numel(p[0]),
                    fmt_shape(target),
                    numel(target)
                ))
            } else {
                Ok(target.clone())
            }
        }
        "concat_cols" => {
            let mut total = 0;
            let n = p[0].first().copied().unwrap_or(0);
            for s in p {
                if s.len() != 2 {
                    return Err(format!(
                        "concat_cols: expects 2-D parts, got {}",
                        fmt_shape(s)
                    ));
                }
                if s[0] != n {
                    return Err(format!("concat_cols: row mismatch: {} vs {} rows", s[0], n));
                }
                total += s[1];
            }
            Ok(vec![n, total])
        }
        "slice_cols" => {
            let (start, end) = (op.iattrs[0], op.iattrs[1]);
            if p[0].len() != 2 {
                Err(format!("slice_cols: expects 2-D, got {}", fmt_shape(p[0])))
            } else if start > end || end > p[0][1] {
                Err(format!(
                    "slice_cols: range {start}..{end} out of bounds for {}",
                    fmt_shape(p[0])
                ))
            } else {
                Ok(vec![p[0][0], end - start])
            }
        }
        "gather_rows" => {
            if p[0].len() != 2 {
                Err(format!(
                    "gather_rows: expects a 2-D table, got {}",
                    fmt_shape(p[0])
                ))
            } else {
                Ok(vec![op.iattrs[0], p[0][1]])
            }
        }
        "gather_rows_blocked" => {
            let d = p[0].get(1).copied().unwrap_or(0);
            for s in p {
                if s.len() != 2 {
                    return Err(format!(
                        "gather_rows_blocked: expects 2-D blocks, got {}",
                        fmt_shape(s)
                    ));
                }
                if s[1] != d {
                    return Err(format!(
                        "gather_rows_blocked: block column mismatch: {} vs {d}",
                        s[1]
                    ));
                }
            }
            Ok(vec![op.iattrs[0], d])
        }
        "softmax_rows" | "log_softmax_rows" => {
            if p[0].len() != 2 {
                Err(format!("{}: expects 2-D, got {}", op.name, fmt_shape(p[0])))
            } else {
                Ok(p[0].to_vec())
            }
        }
        "pick_per_row" => {
            if p[0].len() != 2 {
                Err(format!(
                    "pick_per_row: expects 2-D, got {}",
                    fmt_shape(p[0])
                ))
            } else if op.iattrs[0] != p[0][0] {
                Err(format!(
                    "pick_per_row: {} indices for {} rows",
                    op.iattrs[0], p[0][0]
                ))
            } else {
                Ok(vec![p[0][0]])
            }
        }
        "mask_rows" => {
            if p[0].len() != 2 {
                Err(format!("mask_rows: expects 2-D, got {}", fmt_shape(p[0])))
            } else {
                Ok(p[0].to_vec())
            }
        }
        "conv2d" => {
            let (x, k, b) = (p[0], p[1], p[2]);
            let (stride, pad) = (op.iattrs[0], op.iattrs[1]);
            if x.len() != 4 || k.len() != 4 {
                return Err(format!(
                    "conv2d: expects NCHW input and OCKhKw kernel, got {} and {}",
                    fmt_shape(x),
                    fmt_shape(k)
                ));
            }
            if x[1] != k[1] {
                return Err(format!(
                    "conv2d: channel mismatch: input has {}, kernel expects {}",
                    x[1], k[1]
                ));
            }
            if numel(b) != k[0] {
                return Err(format!(
                    "conv2d: bias {} does not match {} output channels",
                    fmt_shape(b),
                    k[0]
                ));
            }
            if x[2] + 2 * pad < k[2] || x[3] + 2 * pad < k[3] {
                return Err(format!(
                    "conv2d: kernel {} larger than padded input {} (pad {pad})",
                    fmt_shape(k),
                    fmt_shape(x)
                ));
            }
            let oh = (x[2] + 2 * pad - k[2]) / stride + 1;
            let ow = (x[3] + 2 * pad - k[3]) / stride + 1;
            Ok(vec![x[0], k[0], oh, ow])
        }
        "avg_pool_global" => {
            if p[0].len() != 4 {
                Err(format!(
                    "avg_pool_global: expects NCHW, got {}",
                    fmt_shape(p[0])
                ))
            } else {
                Ok(vec![p[0][0], p[0][1]])
            }
        }
        "channel_mean" => {
            if p[0].len() != 4 {
                Err(format!(
                    "channel_mean: expects NCHW, got {}",
                    fmt_shape(p[0])
                ))
            } else {
                Ok(vec![p[0][1]])
            }
        }
        "channel_affine" => {
            let (x, s, b) = (p[0], p[1], p[2]);
            if x.len() != 4 {
                Err(format!(
                    "channel_affine: expects NCHW, got {}",
                    fmt_shape(x)
                ))
            } else if numel(s) != x[1] || numel(b) != x[1] {
                Err(format!(
                    "channel_affine: scale {} / shift {} do not match {} channels",
                    fmt_shape(s),
                    fmt_shape(b),
                    x[1]
                ))
            } else {
                Ok(x.to_vec())
            }
        }
        "sub_channel" | "mul_channel" => {
            let (x, v) = (p[0], p[1]);
            if x.len() != 4 {
                Err(format!("{}: expects NCHW, got {}", op.name, fmt_shape(x)))
            } else if numel(v) != x[1] {
                Err(format!(
                    "{}: vector {} does not match {} channels",
                    op.name,
                    fmt_shape(v),
                    x[1]
                ))
            } else {
                Ok(x.to_vec())
            }
        }
        // Unknown ops pass their first parent's shape through so one
        // unregistered op does not silence the rest of the graph.
        _ => Ok(p.first().map(|s| s.to_vec()).unwrap_or_default()),
    }
}

/// Re-derive every node's shape; record a [`LintKind::ShapeMismatch`] where
/// inference fails or disagrees with the recorded shape. Returns the derived
/// shapes (falling back to recorded ones) for downstream passes.
fn check_shapes(spec: &GraphSpec, diags: &mut Vec<Diagnostic>) -> Vec<Vec<usize>> {
    let mut shapes: Vec<Vec<usize>> = Vec::with_capacity(spec.nodes.len());
    for (i, node) in spec.nodes.iter().enumerate() {
        if matches!(node.op.name, "leaf" | "const") {
            shapes.push(node.shape.clone());
            continue;
        }
        let parents: Vec<&[usize]> = node.op.parents.iter().map(|&p| &shapes[p][..]).collect();
        match infer_shape(&node.op, &parents) {
            Ok(inferred) => {
                if !inferred.is_empty() && !node.shape.is_empty() && inferred != node.shape {
                    diags.push(Diagnostic {
                        kind: LintKind::ShapeMismatch,
                        severity: Severity::Error,
                        node: Some(i),
                        message: format!(
                            "{}: recorded shape {} disagrees with inferred {}",
                            node.op.name,
                            fmt_shape(&node.shape),
                            fmt_shape(&inferred)
                        ),
                    });
                    shapes.push(node.shape.clone());
                } else if inferred.is_empty() {
                    shapes.push(node.shape.clone());
                } else {
                    shapes.push(inferred);
                }
            }
            Err(msg) => {
                diags.push(Diagnostic {
                    kind: LintKind::ShapeMismatch,
                    severity: Severity::Error,
                    node: Some(i),
                    message: msg,
                });
                // Unknown from here on; dependents are skipped, not cascaded.
                shapes.push(node.shape.clone());
            }
        }
    }
    shapes
}

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

/// Mark the ancestors of `root` (including `root` itself): exactly the nodes
/// the backward sweep can deposit gradient into.
fn ancestors_of(spec: &GraphSpec, root: usize) -> Vec<bool> {
    let mut mark = vec![false; spec.nodes.len()];
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if mark[n] {
            continue;
        }
        mark[n] = true;
        stack.extend(spec.nodes[n].op.parents.iter().copied());
    }
    mark
}

fn check_unreachable_params(
    bound: &[(String, usize)],
    reachable: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    for (name, id) in bound {
        if *id >= reachable.len() || !reachable[*id] {
            diags.push(Diagnostic {
                kind: LintKind::UnreachableParam,
                severity: Severity::Error,
                node: Some(*id),
                message: format!(
                    "parameter '{name}' is bound to the tape but has no gradient \
                     path from the loss: it will never be updated"
                ),
            });
        }
    }
}

fn check_detached(spec: &GraphSpec, root: usize, reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    // A node is a sink if nothing consumes it. Report detached *op* sinks
    // only — each is the root of one dead subgraph, so one finding per
    // subgraph rather than one per node.
    let mut consumed = vec![false; spec.nodes.len()];
    for node in &spec.nodes {
        for &p in &node.op.parents {
            consumed[p] = true;
        }
    }
    for (i, node) in spec.nodes.iter().enumerate() {
        if i != root && !consumed[i] && !reachable[i] && !matches!(node.op.name, "leaf" | "const") {
            diags.push(Diagnostic {
                kind: LintKind::DetachedSubgraph,
                severity: Severity::Warning,
                node: Some(i),
                message: format!(
                    "{}: result (and the subgraph feeding it) never reaches the \
                     loss; it is computed, then dropped",
                    node.op.name
                ),
            });
        }
    }
}

fn check_constant_foldable(spec: &GraphSpec, reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    // An op is const-only if no `leaf` occurs among its transitive inputs.
    // Report maximal const-only ops (those with a non-const consumer, or no
    // consumer at all) that contribute to the loss — recomputing them every
    // step is pure waste.
    let n = spec.nodes.len();
    let mut const_only = vec![false; n];
    for (i, node) in spec.nodes.iter().enumerate() {
        const_only[i] = match node.op.name {
            "leaf" => false,
            "const" => true,
            _ => !node.op.parents.is_empty() && node.op.parents.iter().all(|&p| const_only[p]),
        };
    }
    let mut has_const_consumer = vec![false; n];
    for (i, node) in spec.nodes.iter().enumerate() {
        if const_only[i] {
            for &p in &node.op.parents {
                has_const_consumer[p] = true;
            }
        }
    }
    for (i, node) in spec.nodes.iter().enumerate() {
        if const_only[i]
            && !has_const_consumer[i]
            && reachable[i]
            && !matches!(node.op.name, "const")
        {
            diags.push(Diagnostic {
                kind: LintKind::ConstantFoldable,
                severity: Severity::Warning,
                node: Some(i),
                message: format!(
                    "{}: computed entirely from constants — same value every \
                     step; fold it at construction time",
                    node.op.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// NaN hazards (sign abstract interpretation)
// ---------------------------------------------------------------------------

fn sign_of(spec: &GraphSpec, signs: &[Sign], node: &NodeSpec) -> Sign {
    use Sign::*;
    let p = |i: usize| signs[node.op.parents[i]];
    let _ = spec;
    match node.op.name {
        // Strictly positive ranges.
        "exp" | "sigmoid" | "softplus" | "softmax_rows" => Pos,
        // Non-negative ranges (sqrt clamps its input to 0).
        "square" | "relu" => NonNeg,
        "sqrt" => match p(0) {
            Pos => Pos,
            _ => NonNeg,
        },
        "add" => match (p(0), p(1)) {
            (Pos, s) | (s, Pos) if s.at_least_nonneg() => Pos,
            (NonNeg, NonNeg) => NonNeg,
            _ => Unknown,
        },
        "mul" | "mul_channel" | "mul_row_broadcast" => match (p(0), p(1)) {
            (Pos, Pos) => Pos,
            (a, b) if a.at_least_nonneg() && b.at_least_nonneg() => NonNeg,
            _ => Unknown,
        },
        "div" => match (p(0), p(1)) {
            (Pos, Pos) => Pos,
            (NonNeg, Pos) => NonNeg,
            _ => Unknown,
        },
        "reciprocal" => match p(0) {
            Pos => Pos,
            _ => Unknown,
        },
        "scale" => {
            let s = node.op.sattrs[0];
            if s > 0.0 {
                p(0)
            // st-lint: allow(float-eq) — exact scalar recorded on the tape
            } else if s == 0.0 {
                NonNeg
            } else {
                Unknown
            }
        }
        "add_scalar" => {
            let c = node.op.sattrs[0];
            if c > 0.0 && p(0).at_least_nonneg() {
                Pos
            // st-lint: allow(float-eq) — exact scalar recorded on the tape
            } else if c == 0.0 {
                p(0)
            } else {
                // A positive shift of an unknown operand (or any negative
                // shift) proves nothing.
                Unknown
            }
        }
        // leaky_relu is the identity on non-negative inputs, whatever the
        // slope, so it preserves Pos/NonNeg.
        "leaky_relu" => match p(0) {
            Pos => Pos,
            NonNeg => NonNeg,
            _ => Unknown,
        },
        // Sign-preserving reductions and data movement (sums of ≥1 term,
        // row/element selection, averaging).
        "sum_all" | "row_sum" | "reshape" | "gather_rows" | "pick_per_row" | "slice_cols"
        | "avg_pool_global" | "channel_mean" => p(0),
        "matmul" => match (p(0), p(1)) {
            (Pos, Pos) => Pos,
            (a, b) if a.at_least_nonneg() && b.at_least_nonneg() => NonNeg,
            _ => Unknown,
        },
        // row selections across several operands preserve the joined sign
        "concat_cols" | "gather_rows_blocked" => node
            .op
            .parents
            .iter()
            .map(|&i| signs[i])
            .fold(Pos, Sign::join),
        // mask weights, biases, affine shifts, convolutions: unconstrained.
        _ => Unknown,
    }
}

fn check_nan_hazards(spec: &GraphSpec, shapes: &[Vec<usize>], diags: &mut Vec<Diagnostic>) {
    let _ = shapes;
    let mut signs: Vec<Sign> = Vec::with_capacity(spec.nodes.len());
    for node in &spec.nodes {
        signs.push(sign_of(spec, &signs, node));
    }
    for (i, node) in spec.nodes.iter().enumerate() {
        let p = |k: usize| signs[node.op.parents[k]];
        match node.op.name {
            "div" if p(1) != Sign::Pos => diags.push(Diagnostic {
                kind: LintKind::NanHazard,
                severity: Severity::Warning,
                node: Some(i),
                message: format!(
                    "div: denominator is not provably positive (sign: {:?}); a \
                     zero produces Inf/NaN that poisons the whole backward pass \
                     — clamp it, e.g. add_scalar(softplus(x), eps)",
                    p(1)
                ),
            }),
            "reciprocal" if p(0) != Sign::Pos => diags.push(Diagnostic {
                kind: LintKind::NanHazard,
                severity: Severity::Warning,
                node: Some(i),
                message: format!(
                    "reciprocal: input is not provably positive (sign: {:?}); a \
                     zero produces Inf that poisons the whole backward pass",
                    p(0)
                ),
            }),
            "ln" if p(0) != Sign::Pos => diags.push(Diagnostic {
                kind: LintKind::NanHazard,
                severity: Severity::Warning,
                node: Some(i),
                message: format!(
                    "ln: input is not provably positive (sign: {:?}); the engine \
                     clamps to 1e-12, silently flattening gradients wherever the \
                     clamp is active",
                    p(0)
                ),
            }),
            "sqrt" if !p(0).at_least_nonneg() => diags.push(Diagnostic {
                kind: LintKind::NanHazard,
                severity: Severity::Warning,
                node: Some(i),
                message: "sqrt: input may be negative; the engine clamps to 0, \
                          silently zeroing the value and its gradient there"
                    .to_string(),
            }),
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Accumulation depth
// ---------------------------------------------------------------------------

fn check_accum_depth(
    spec: &GraphSpec,
    shapes: &[Vec<usize>],
    cfg: &AnalyzerConfig,
    diags: &mut Vec<Diagnostic>,
) {
    // Worst-case length of the serial f32 accumulation chain ending at each
    // node: reductions add the number of terms they fold, elementwise adds
    // contribute one term, everything else passes the max through.
    let numel = |i: usize| shapes[i].iter().product::<usize>().max(1);
    let mut depth: Vec<usize> = Vec::with_capacity(spec.nodes.len());
    for node in &spec.nodes {
        let pmax = node.op.parents.iter().map(|&p| depth[p]).max().unwrap_or(0);
        let d = match node.op.name {
            "leaf" | "const" => 1,
            "add" | "sub" => pmax + 1,
            "sum_all" => pmax + numel(node.op.parents[0]),
            "row_sum" => pmax + shapes[node.op.parents[0]].get(1).copied().unwrap_or(1),
            "matmul" => pmax + shapes[node.op.parents[0]].get(1).copied().unwrap_or(1),
            "affine" => pmax + shapes[node.op.parents[1]].first().copied().unwrap_or(1) + 1,
            "conv2d" => {
                let k = &shapes[node.op.parents[1]];
                pmax + k.iter().skip(1).product::<usize>().max(1)
            }
            "avg_pool_global" => {
                let x = &shapes[node.op.parents[0]];
                pmax + x.iter().skip(2).product::<usize>().max(1)
            }
            "channel_mean" => {
                let x = &shapes[node.op.parents[0]];
                pmax + (x.first().copied().unwrap_or(1) * x.iter().skip(2).product::<usize>())
                    .max(1)
            }
            _ => pmax,
        };
        depth.push(d);
    }
    for (i, node) in spec.nodes.iter().enumerate() {
        let pmax = node.op.parents.iter().map(|&p| depth[p]).max().unwrap_or(0);
        // Report the node that crosses the threshold, not every descendant.
        if depth[i] > cfg.accum_depth_threshold && pmax <= cfg.accum_depth_threshold {
            diags.push(Diagnostic {
                kind: LintKind::DeepAccumulation,
                severity: Severity::Warning,
                node: Some(i),
                message: format!(
                    "{}: worst-case serial f32 accumulation length {} exceeds \
                     {} — rounding error grows linearly; consider pairwise or \
                     f64 accumulation",
                    node.op.name, depth[i], cfg.accum_depth_threshold
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// SpecBuilder: dry-run graphs from shapes alone
// ---------------------------------------------------------------------------

/// Builds a [`GraphSpec`] from leaf shapes only, deriving every op's shape by
/// [`infer_shape`] — a shape dry-run that never allocates an array or runs a
/// kernel. Ops whose inference fails get an unknown shape; [`analyze`]
/// reports the failure at that node.
#[derive(Debug, Default)]
pub struct SpecBuilder {
    nodes: Vec<NodeSpec>,
    named: HashMap<String, usize>,
}

impl SpecBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a trainable-input leaf of the given shape.
    pub fn leaf(&mut self, shape: &[usize]) -> usize {
        self.push_node(shape.to_vec(), OpMeta::leaf())
    }

    /// Add a trainable-input leaf registered under a parameter name, so the
    /// builder can double as the binding list for [`analyze`].
    pub fn param(&mut self, name: &str, shape: &[usize]) -> usize {
        let id = self.leaf(shape);
        self.named.insert(name.to_string(), id);
        id
    }

    /// Add a constant leaf of the given shape.
    pub fn constant(&mut self, shape: &[usize]) -> usize {
        self.push_node(shape.to_vec(), OpMeta::constant())
    }

    /// Add an op node; its shape is derived from its parents, or unknown if
    /// derivation fails (the failure resurfaces as a diagnostic in
    /// [`analyze`]).
    pub fn op(&mut self, meta: OpMeta) -> usize {
        let parents: Vec<&[usize]> = meta
            .parents
            .iter()
            .map(|&p| &self.nodes[p].shape[..])
            .collect();
        let shape = infer_shape(&meta, &parents).unwrap_or_default();
        self.push_node(shape, meta)
    }

    /// The `(name, id)` bindings registered via [`SpecBuilder::param`].
    pub fn bindings(&self) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self.named.iter().map(|(n, &i)| (n.clone(), i)).collect();
        v.sort_by_key(|(_, i)| *i);
        v
    }

    /// The derived shape of a node (empty if unknown).
    pub fn shape(&self, id: usize) -> &[usize] {
        &self.nodes[id].shape
    }

    /// Finish building.
    pub fn finish(self) -> GraphSpec {
        GraphSpec { nodes: self.nodes }
    }

    fn push_node(&mut self, shape: Vec<usize>, op: OpMeta) -> usize {
        let id = self.nodes.len();
        self.nodes.push(NodeSpec { shape, op });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::tape::Tape;
    use crate::Array;

    fn kinds(diags: &[Diagnostic]) -> Vec<LintKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    fn meta(name: &'static str, parents: Vec<usize>) -> OpMeta {
        OpMeta::new(name, parents)
    }

    #[test]
    fn clean_linear_graph_is_clean() {
        let mut b = SpecBuilder::new();
        let x = b.leaf(&[8, 4]);
        let w = b.param("w", &[4, 3]);
        let bias = b.param("b", &[3]);
        let y = b.op(meta("affine", vec![x, w, bias]));
        let sq = b.op(meta("square", vec![y]));
        let loss = b.op(meta("sum_all", vec![sq]));
        let bindings = b.bindings();
        let spec = b.finish();
        let diags = analyze(&spec, loss, &bindings, &AnalyzerConfig::default());
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn detects_matmul_shape_mismatch() {
        let mut b = SpecBuilder::new();
        let x = b.leaf(&[8, 4]);
        let w = b.leaf(&[5, 3]); // planted: inner dims 4 vs 5
        let y = b.op(meta("matmul", vec![x, w]));
        let loss = b.op(meta("sum_all", vec![y]));
        let spec = b.finish();
        let diags = analyze(&spec, loss, &[], &AnalyzerConfig::default());
        assert!(
            kinds(&diags).contains(&LintKind::ShapeMismatch),
            "{diags:?}"
        );
        let d = diags
            .iter()
            .find(|d| d.kind == LintKind::ShapeMismatch)
            .expect("shape diag");
        assert_eq!(d.node, Some(2));
        assert!(d.message.contains("inner dims"), "{}", d.message);
    }

    #[test]
    fn shape_error_does_not_cascade() {
        let mut b = SpecBuilder::new();
        let x = b.leaf(&[8, 4]);
        let w = b.leaf(&[5, 3]);
        let y = b.op(meta("matmul", vec![x, w])); // fails; shape unknown
        let z = b.op(meta("relu", vec![y])); // depends on unknown: skipped
        let loss = b.op(meta("sum_all", vec![z]));
        let spec = b.finish();
        let diags = analyze(&spec, loss, &[], &AnalyzerConfig::default());
        let shape_errs: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::ShapeMismatch)
            .collect();
        assert_eq!(shape_errs.len(), 1, "{diags:?}");
    }

    #[test]
    fn detects_unreachable_param() {
        let mut b = SpecBuilder::new();
        let x = b.leaf(&[4, 4]);
        let w = b.param("model.w", &[4, 4]);
        let _orphan = b.param("model.orphan", &[4, 4]); // planted: never used
        let y = b.op(meta("matmul", vec![x, w]));
        let loss = b.op(meta("sum_all", vec![y]));
        let bindings = b.bindings();
        let spec = b.finish();
        let diags = analyze(&spec, loss, &bindings, &AnalyzerConfig::default());
        let ur: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::UnreachableParam)
            .collect();
        assert_eq!(ur.len(), 1, "{diags:?}");
        assert!(ur[0].message.contains("model.orphan"));
        assert_eq!(ur[0].severity, Severity::Error);
    }

    #[test]
    fn detects_detached_subgraph() {
        let mut b = SpecBuilder::new();
        let x = b.leaf(&[4, 4]);
        let w = b.param("w", &[4, 4]);
        let y = b.op(meta("matmul", vec![x, w]));
        let loss = b.op(meta("sum_all", vec![y]));
        // planted: a side computation whose result is dropped
        let dead1 = b.op(meta("relu", vec![y]));
        let _dead2 = b.op(meta("sum_all", vec![dead1]));
        let bindings = b.bindings();
        let spec = b.finish();
        let diags = analyze(&spec, loss, &bindings, &AnalyzerConfig::default());
        let det: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::DetachedSubgraph)
            .collect();
        // Only the sink is reported, not every dead node.
        assert_eq!(det.len(), 1, "{diags:?}");
        assert_eq!(det[0].node, Some(5));
    }

    #[test]
    fn detects_constant_foldable() {
        let mut b = SpecBuilder::new();
        let x = b.leaf(&[4, 4]);
        let c1 = b.constant(&[4, 4]);
        let c2 = b.op(meta("square", vec![c1])); // planted: const-only chain
        let y = b.op(meta("add", vec![x, c2]));
        let loss = b.op(meta("sum_all", vec![y]));
        let spec = b.finish();
        let diags = analyze(&spec, loss, &[], &AnalyzerConfig::default());
        let cf: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::ConstantFoldable)
            .collect();
        assert_eq!(cf.len(), 1, "{diags:?}");
        assert_eq!(cf[0].node, Some(2));
    }

    #[test]
    fn detects_unclamped_div_and_ln() {
        let mut b = SpecBuilder::new();
        let x = b.leaf(&[4, 4]);
        let y = b.leaf(&[4, 4]);
        let q = b.op(meta("div", vec![x, y])); // planted: unknown denominator
        let l = b.op(meta("ln", vec![q])); // planted: unknown ln input
        let loss = b.op(meta("sum_all", vec![l]));
        let spec = b.finish();
        let diags = analyze(&spec, loss, &[], &AnalyzerConfig::default());
        let nan: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::NanHazard)
            .collect();
        assert_eq!(nan.len(), 2, "{diags:?}");
    }

    #[test]
    fn sign_lattice_clears_clamped_patterns() {
        // The ELBO's variance pattern: add_scalar(softplus(x), eps) is
        // provably positive, so ln/div over it must NOT fire.
        let mut b = SpecBuilder::new();
        let x = b.leaf(&[4, 2]);
        let sp = b.op(meta("softplus", vec![x]));
        let var = b.op(meta("add_scalar", vec![sp]).with_sattrs(vec![1e-4]));
        let num = b.op(meta("square", vec![x]));
        let q = b.op(meta("div", vec![num, var]));
        let lnv = b.op(meta("ln", vec![var]));
        let s = b.op(meta("add", vec![q, lnv]));
        let loss = b.op(meta("sum_all", vec![s]));
        let spec = b.finish();
        let diags = analyze(&spec, loss, &[], &AnalyzerConfig::default());
        assert!(
            !kinds(&diags).contains(&LintKind::NanHazard),
            "false positive: {diags:?}"
        );
    }

    #[test]
    fn sign_lattice_clears_batchnorm_pattern() {
        // BatchNorm denominator: reciprocal(sqrt(add_scalar(channel_mean(
        // square(xc)), eps))) — provably positive end to end.
        let mut b = SpecBuilder::new();
        let xc = b.leaf(&[2, 3, 4, 4]);
        let sq = b.op(meta("square", vec![xc]));
        let cm = b.op(meta("channel_mean", vec![sq]));
        let veps = b.op(meta("add_scalar", vec![cm]).with_sattrs(vec![1e-5]));
        let sd = b.op(meta("sqrt", vec![veps]));
        let inv = b.op(meta("reciprocal", vec![sd]));
        let scaled = b.op(meta("mul_channel", vec![xc, inv]));
        let pool = b.op(meta("avg_pool_global", vec![scaled]));
        let loss = b.op(meta("sum_all", vec![pool]));
        let spec = b.finish();
        let diags = analyze(&spec, loss, &[], &AnalyzerConfig::default());
        assert!(
            !kinds(&diags).contains(&LintKind::NanHazard),
            "false positive: {diags:?}"
        );
    }

    #[test]
    fn detects_deep_accumulation() {
        let mut b = SpecBuilder::new();
        let x = b.leaf(&[1, 200_000]); // planted: 200k-term serial sum
        let loss = b.op(meta("sum_all", vec![x]));
        let spec = b.finish();
        let diags = analyze(&spec, loss, &[], &AnalyzerConfig::default());
        let deep: Vec<_> = diags
            .iter()
            .filter(|d| d.kind == LintKind::DeepAccumulation)
            .collect();
        assert_eq!(deep.len(), 1, "{diags:?}");
        assert_eq!(deep[0].node, Some(1));
    }

    #[test]
    fn export_spec_matches_live_tape() {
        // A real tape exports a spec whose analysis is clean, and whose
        // recorded shapes agree with the analyzer's inference everywhere.
        let tape = Tape::new();
        let x = tape.leaf(Array::ones(&[3, 4]));
        let w = tape.leaf(Array::ones(&[4, 2]));
        let b = tape.leaf(Array::ones(&[2]));
        let h = ops::affine(x, w, b);
        let s = ops::softmax_rows(h);
        let l = ops::ln(s);
        let loss = ops::sum_all(l);
        let spec = tape.export_spec();
        assert_eq!(spec.nodes.len(), 7);
        let diags = analyze(
            &spec,
            loss.id(),
            &[("w".into(), w.id()), ("b".into(), b.id())],
            &AnalyzerConfig::default(),
        );
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        assert_eq!(spec.nodes[h.id()].op.name, "affine");
        assert_eq!(spec.nodes[h.id()].shape, vec![3, 2]);
    }

    #[test]
    fn analysis_is_fast_on_large_graphs() {
        // 100k-node chain analysed in well under a second (acceptance: the
        // full pre-train analysis of the largest config < 1 s).
        let mut b = SpecBuilder::new();
        let mut cur = b.leaf(&[64, 64]);
        for _ in 0..100_000 {
            cur = b.op(meta("relu", vec![cur]));
        }
        let loss = b.op(meta("sum_all", vec![cur]));
        let spec = b.finish();
        let t0 = std::time::Instant::now();
        let diags = analyze(&spec, loss, &[], &AnalyzerConfig::default());
        assert!(diags.is_empty(), "{diags:?}");
        assert!(
            t0.elapsed().as_millis() < 1000,
            "analysis took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn diagnostic_display_is_informative() {
        let d = Diagnostic {
            kind: LintKind::NanHazard,
            severity: Severity::Warning,
            node: Some(7),
            message: "div by maybe-zero".into(),
        };
        let s = d.to_string();
        assert!(s.contains("warning"), "{s}");
        assert!(s.contains("nan-hazard"), "{s}");
        assert!(s.contains("node 7"), "{s}");
    }
}
