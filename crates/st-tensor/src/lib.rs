//! `st-tensor`: a from-scratch, CPU, reverse-mode automatic differentiation
//! engine.
//!
//! This crate is the numerical substrate of the DeepST reproduction. The
//! paper's artifact was built on PyTorch; no comparable Rust stack exists for
//! sequential latent-variable models, so we implement the minimum complete
//! engine the model needs:
//!
//! - [`array::Array`] — dense row-major `f32` n-d arrays with the matrix
//!   kernels used by the model (GEMM and fused-transpose variants).
//! - [`tape::Tape`] / [`tape::Var`] — an append-only autodiff tape; node ids
//!   double as a topological order, so backprop is a single reverse sweep.
//! - [`ops`] — differentiable ops (arithmetic, activations, softmax family,
//!   embeddings, concat/slice/mask), each gradient-checked against central
//!   finite differences.
//! - [`conv`] — Conv2d / pooling / per-channel ops for the traffic CNN.
//! - [`param`] — persistent [`param::Param`]s and the [`param::Binder`] that
//!   bridges them onto per-step tapes.
//! - [`optim`] — SGD and Adam with gradient clipping.
//! - [`init`] — seeded initializers and the Normal/Gumbel samplers used by
//!   the VAE reparameterizations.
//! - [`analyze`] — a static graph analyzer: shape dry-runs, gradient-flow
//!   audits, and NaN-hazard detection over exported tape specs, without
//!   executing kernels.
//!
//! # Example
//!
//! ```
//! use st_tensor::{Array, Tape, ops};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Array::vector(vec![1.0, 2.0, 3.0]));
//! let loss = ops::sum_all(ops::square(x)); // Σ xᵢ²
//! let grads = tape.backward(loss);
//! assert_eq!(grads.expect(x).data(), &[2.0, 4.0, 6.0]);
//! ```

/// Dry-run graph analyzer: shape inference and grad-flow lints.
pub mod analyze;
/// The dense row-major f32 tensor type.
pub mod array;
/// Row-blocked parameter layout for graph-scale tensors.
pub mod block;
/// Finite-difference gradient checking utilities.
pub mod check;
/// Direct convolution kernels and channel-wise ops.
pub mod conv;
mod dispatch;
mod gemm;
/// Tape-free forward kernels and the inference scratch arena.
pub mod infer;
/// Seeded RNG construction and weight initializers.
pub mod init;
#[cfg(feature = "kernel-timing")]
mod ktime;
/// Deterministic, vectorizable transcendental kernels (exp/sigmoid/tanh).
pub mod mathfn;
/// Differentiable tensor operations recorded on the tape.
pub mod ops;
/// Optimizers (SGD, Adam) and gradient clipping.
pub mod optim;
/// Trainable parameters and the tape binder.
pub mod param;
/// The reverse-mode autodiff tape.
pub mod tape;

pub use analyze::{
    analyze, AnalyzerConfig, Diagnostic, GraphSpec, LintKind, Severity, SpecBuilder,
};
pub use array::Array;
pub use block::BlockedParam;
pub use dispatch::simd_active;
pub use infer::{ScratchArena, TapeFreeScope};
pub use param::{Binder, Param};
pub use tape::{Gradients, OpMeta, Tape, Var};
