//! Trainable parameters and their binding onto tapes.
//!
//! Parameters persist across training steps, while a [`Tape`] lives for one
//! step. A [`Binder`] bridges the two: during the forward pass it copies each
//! parameter's current value onto the tape as a leaf, and after backward it
//! routes the leaf gradients back into the parameters' `grad` accumulators.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::array::Array;
use crate::tape::{Gradients, Tape, Var};

/// A named trainable parameter with a persistent gradient accumulator.
///
/// Values and gradients sit behind `RwLock`s so a model can be shared
/// (`&DeepSt`-style) across data-parallel worker threads: workers take
/// read locks to copy values onto their tapes, and only the coordinating
/// thread ever takes write locks (gradient reduction, optimizer step), so
/// the locks are uncontended in practice.
#[derive(Debug)]
pub struct Param {
    name: String,
    value: RwLock<Array>,
    grad: RwLock<Array>,
}

impl Param {
    /// Create a parameter with an initial value and an *unallocated*
    /// gradient.
    ///
    /// The gradient buffer is lazy: it stays an empty (`[0]`-shaped)
    /// sentinel — meaning "all zero, no storage" — until the first
    /// [`Param::accumulate_grad`] touches it. A parameter that never
    /// receives a gradient (a cold embedding shard) therefore costs zero
    /// gradient bytes. Every consumer treats the empty sentinel as an
    /// all-zero gradient, which is exact: a zero gradient contributes
    /// `+0.0` to norms and `-0.0` to updates, both bitwise no-ops.
    pub fn new(name: impl Into<String>, value: Array) -> Self {
        Self {
            name: name.into(),
            value: RwLock::new(value),
            grad: RwLock::new(Array::zeros(&[0])),
        }
    }

    /// The parameter's name (used in diagnostics and serialization).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Borrow the current value.
    ///
    /// Lock poisoning (a worker panicking while holding the guard) is
    /// recovered from rather than propagated: the guarded `Array` is plain
    /// `f32` data with no invariants a partial write could break, and the
    /// fault-tolerant trainer re-validates values after contained panics.
    pub fn value(&self) -> RwLockReadGuard<'_, Array> {
        self.value.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrow the current value (poison-recovering, see [`Param::value`]).
    pub fn value_mut(&self) -> RwLockWriteGuard<'_, Array> {
        self.value.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Borrow the accumulated gradient (poison-recovering, see [`Param::value`]).
    pub fn grad(&self) -> RwLockReadGuard<'_, Array> {
        self.grad.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value().len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the gradient buffer has been materialized (the parameter has
    /// received at least one gradient since construction). Cold parameters
    /// report `false` and hold no gradient storage.
    pub fn grad_allocated(&self) -> bool {
        !self.grad().is_empty()
    }

    /// Add `g` into the gradient accumulator, materializing it on first
    /// touch. An empty `g` (another parameter's unallocated gradient, e.g.
    /// from [`clip_grad_norm`](crate::optim::clip_grad_norm) re-scaling) is
    /// a no-op and does *not* materialize the buffer.
    pub fn accumulate_grad(&self, g: &Array) {
        if g.is_empty() {
            return;
        }
        self.ensure_grad();
        self.grad_mut().add_assign(g);
    }

    /// Add `scale * g` into the gradient accumulator — used when reducing
    /// per-shard gradients (each shard's mean loss is re-weighted by its
    /// share of the minibatch). Lazily materializes like
    /// [`Param::accumulate_grad`].
    pub fn accumulate_grad_scaled(&self, scale: f32, g: &Array) {
        if g.is_empty() {
            return;
        }
        self.ensure_grad();
        self.grad_mut().axpy(scale, g);
    }

    /// Reset the gradient accumulator to zero. Keeps the buffer allocated
    /// once materialized (a shard that has been hot stays resident); a
    /// still-unallocated gradient stays unallocated.
    pub fn zero_grad(&self) {
        self.grad_mut().fill_zero();
    }

    /// Apply `value += scale * grad_like` — used by optimizers.
    pub fn apply_update(&self, scale: f32, update: &Array) {
        self.value_mut().axpy(scale, update);
    }

    fn grad_mut(&self) -> RwLockWriteGuard<'_, Array> {
        self.grad.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Materialize the gradient buffer (zeroed, value-shaped) if it is
    /// still the empty sentinel. The replacement array is built *before*
    /// taking the grad write lock so value/grad locks never nest.
    fn ensure_grad(&self) {
        if self.grad_allocated() {
            return;
        }
        let zeros = Array::zeros_like(&self.value());
        let mut g = self.grad_mut();
        if g.is_empty() {
            *g = zeros;
        }
    }
}

/// Binds parameters to leaves of a specific tape for one forward/backward
/// pass.
pub struct Binder<'t, 'p> {
    tape: &'t Tape,
    bound: RefCell<Vec<(&'p Param, usize)>>,
    cache: RefCell<HashMap<*const Param, Var<'t>>>,
}

impl<'t, 'p> Binder<'t, 'p> {
    /// A binder for `tape`.
    pub fn new(tape: &'t Tape) -> Self {
        Self {
            tape,
            bound: RefCell::new(Vec::new()),
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The underlying tape.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Record `p`'s current value as a tape leaf and remember the binding.
    ///
    /// Bindings are memoized: binding the same parameter again (weight
    /// sharing across GRU time steps, the embedding table looked up once
    /// per step) returns the leaf recorded the first time, so the value is
    /// copied onto the tape once per pass and every use accumulates into
    /// one gradient buffer. Backward handles a leaf feeding several ops —
    /// including both operands of one op — so this is safe.
    pub fn var(&self, p: &'p Param) -> Var<'t> {
        let key = p as *const Param;
        if let Some(&v) = self.cache.borrow().get(&key) {
            return v;
        }
        let v = self.tape.leaf(p.value().clone());
        self.bound.borrow_mut().push((p, v.id()));
        self.cache.borrow_mut().insert(key, v);
        v
    }

    /// Record a non-trainable input on the tape.
    pub fn input(&self, value: Array) -> Var<'t> {
        self.tape.leaf(value)
    }

    /// The `(name, leaf id)` pairs of every parameter bound so far, in
    /// binding order — the graph analyzer uses this to check that each
    /// bound parameter has a gradient path from the loss.
    pub fn bound_params(&self) -> Vec<(String, usize)> {
        self.bound
            .borrow()
            .iter()
            .map(|(p, id)| (p.name().to_string(), *id))
            .collect()
    }

    /// After `tape.backward`, push every bound leaf's gradient into its
    /// parameter's accumulator. Returns the number of parameters that
    /// actually received a gradient.
    pub fn accumulate_grads(&self, grads: &Gradients) -> usize {
        let mut touched = 0;
        for (p, id) in self.bound.borrow().iter() {
            if let Some(g) = grads.by_id(*id) {
                p.accumulate_grad(g);
                touched += 1;
            }
        }
        touched
    }

    /// Collect the bound parameters' gradients as owned arrays, merging
    /// multiple bindings of the same parameter (e.g. weight sharing across
    /// GRU time steps) in binding order.
    ///
    /// Data-parallel workers use this instead of [`Binder::accumulate_grads`]
    /// so the coordinating thread can fold shard gradients into the shared
    /// parameters in a fixed order, keeping training deterministic.
    pub fn collect_grads(&self, grads: &Gradients) -> Vec<(&'p Param, Array)> {
        let mut out: Vec<(&'p Param, Array)> = Vec::new();
        let mut slot: HashMap<*const Param, usize> = HashMap::new();
        for (p, id) in self.bound.borrow().iter() {
            if let Some(g) = grads.by_id(*id) {
                match slot.get(&(*p as *const Param)) {
                    Some(&i) => out[i].1.add_assign(g),
                    None => {
                        slot.insert(*p as *const Param, out.len());
                        out.push((p, g.clone()));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn param_roundtrip() {
        let p = Param::new("w", Array::vector(vec![1.0, 2.0]));
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 2);
        p.accumulate_grad(&Array::vector(vec![0.5, 0.5]));
        p.accumulate_grad(&Array::vector(vec![0.5, 0.5]));
        assert_eq!(p.grad().data(), &[1.0, 1.0]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_is_lazy_until_first_accumulation() {
        let p = Param::new("w", Array::vector(vec![1.0, 2.0]));
        assert!(!p.grad_allocated());
        p.zero_grad(); // no-op on the sentinel
        assert!(!p.grad_allocated());
        p.accumulate_grad(&Array::zeros(&[0])); // empty input: still cold
        assert!(!p.grad_allocated());
        p.accumulate_grad_scaled(0.5, &Array::vector(vec![2.0, 4.0]));
        assert!(p.grad_allocated());
        assert_eq!(p.grad().data(), &[1.0, 2.0]);
        p.zero_grad(); // once hot, the buffer stays resident
        assert!(p.grad_allocated());
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn binder_routes_gradients() {
        let w = Param::new("w", Array::vector(vec![3.0]));
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let wv = b.var(&w);
        // loss = w²  →  dloss/dw = 6
        let loss = ops::sum_all(ops::square(wv));
        let grads = tape.backward(loss);
        let touched = b.accumulate_grads(&grads);
        assert_eq!(touched, 1);
        assert!((w.grad().data()[0] - 6.0).abs() < 1e-5);
    }

    #[test]
    fn double_binding_accumulates_both_paths() {
        let w = Param::new("w", Array::vector(vec![2.0]));
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let w1 = b.var(&w);
        let w2 = b.var(&w);
        // loss = w · w via two separate leaves → total grad = 2w = 4
        let loss = ops::sum_all(ops::mul(w1, w2));
        let grads = tape.backward(loss);
        b.accumulate_grads(&grads);
        assert!((w.grad().data()[0] - 4.0).abs() < 1e-5);
    }
}
