//! Convolutional ops for the traffic encoder (§IV-D of the paper).
//!
//! Layout convention: 4-D activations are `[N, C, H, W]` (batch, channels,
//! height, width), kernels are `[O, C, KH, KW]`. The paper's traffic CNN is
//! three `Conv2d → BatchNorm2d → LeakyReLU` blocks followed by average
//! pooling; batch-norm is composed from the per-channel primitives below so
//! its backward pass comes for free from the tape.

use std::rc::Rc;

use crate::array::Array;
use crate::tape::{OpMeta, Var};

fn dims4(a: &Array) -> (usize, usize, usize, usize) {
    assert_eq!(a.ndim(), 4, "expected NCHW, got {:?}", a.shape());
    let s = a.shape();
    (s[0], s[1], s[2], s[3])
}

#[inline]
fn idx4(
    c_stride: usize,
    h_stride: usize,
    w_stride: usize,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> usize {
    n * c_stride + c * h_stride + h * w_stride + w
}

/// 2-D convolution with stride and zero padding.
///
/// `input [N, C, H, W]`, `kernel [O, C, KH, KW]`, `bias [O]` →
/// `[N, O, OH, OW]` with `OH = (H + 2·pad − KH)/stride + 1`.
pub fn conv2d<'t>(
    input: Var<'t>,
    kernel: Var<'t>,
    bias: Var<'t>,
    stride: usize,
    pad: usize,
) -> Var<'t> {
    #[cfg(feature = "kernel-timing")]
    let _kt = crate::ktime::timer(crate::ktime::Kernel::Conv2d);
    assert!(stride >= 1, "stride must be >= 1");
    let xv = input.value();
    let kv = kernel.value();
    let bv = bias.value();
    let (n, c, h, w) = dims4(&xv);
    let (o, ck, kh, kw) = dims4(&kv);
    assert_eq!(c, ck, "conv2d channel mismatch: input {c}, kernel {ck}");
    assert_eq!(bv.len(), o, "conv2d bias length");
    assert!(
        h + 2 * pad >= kh && w + 2 * pad >= kw,
        "conv2d kernel larger than padded input"
    );
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;

    let mut out = Array::zeros(&[n, o, oh, ow]);
    let (xc, xh, xw) = (c * h * w, h * w, w);
    let (koc, kcc, khh) = (c * kh * kw, kh * kw, kw);
    let (yc, yh, yw) = (o * oh * ow, oh * ow, ow);
    {
        let xd = xv.data();
        let kd = kv.data();
        let bd = bv.data();
        let yd = out.data_mut();
        for ni in 0..n {
            for oi in 0..o {
                for yi in 0..oh {
                    for xi_ in 0..ow {
                        let mut acc = bd[oi];
                        let h0 = yi * stride;
                        let w0 = xi_ * stride;
                        for ci in 0..c {
                            for ki in 0..kh {
                                let ih = h0 + ki;
                                if ih < pad || ih - pad >= h {
                                    continue;
                                }
                                for kj in 0..kw {
                                    let iw = w0 + kj;
                                    if iw < pad || iw - pad >= w {
                                        continue;
                                    }
                                    acc += xd[idx4(xc, xh, xw, ni, ci, ih - pad, iw - pad)]
                                        * kd[idx4(koc, kcc, khh, oi, ci, ki, kj)];
                                }
                            }
                        }
                        yd[idx4(yc, yh, yw, ni, oi, yi, xi_)] = acc;
                    }
                }
            }
        }
    }

    let (xid, kid, bid) = (input.id(), kernel.id(), bias.id());
    input.tape().push(
        out,
        OpMeta::new("conv2d", vec![xid, kid, bid]).with_iattrs(vec![stride, pad]),
        Some(Box::new(move |g, sink| {
            let gd = g.data();
            let xd = xv.data();
            let kd = kv.data();
            let (gx, gk, gb) = sink.accum3(xid, kid, bid);
            {
                let gxd = gx.data_mut();
                let gkd = gk.data_mut();
                let gbd = gb.data_mut();
                for ni in 0..n {
                    for oi in 0..o {
                        for yi in 0..oh {
                            for xi_ in 0..ow {
                                let gout = gd[idx4(yc, yh, yw, ni, oi, yi, xi_)];
                                // st-lint: allow(float-eq) — exact-zero sparsity skip
                                if gout == 0.0 {
                                    continue;
                                }
                                gbd[oi] += gout;
                                let h0 = yi * stride;
                                let w0 = xi_ * stride;
                                for ci in 0..c {
                                    for ki in 0..kh {
                                        let ih = h0 + ki;
                                        if ih < pad || ih - pad >= h {
                                            continue;
                                        }
                                        for kj in 0..kw {
                                            let iw = w0 + kj;
                                            if iw < pad || iw - pad >= w {
                                                continue;
                                            }
                                            let xix = idx4(xc, xh, xw, ni, ci, ih - pad, iw - pad);
                                            let kix = idx4(koc, kcc, khh, oi, ci, ki, kj);
                                            gxd[xix] += gout * kd[kix];
                                            gkd[kix] += gout * xd[xix];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        })),
    )
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
pub fn avg_pool_global(input: Var<'_>) -> Var<'_> {
    let xv = input.value();
    let (n, c, h, w) = dims4(&xv);
    let area = (h * w) as f32;
    let mut out = Array::zeros(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = ni * c * h * w + ci * h * w;
            let s: f32 = xv.data()[base..base + h * w].iter().sum();
            out.data_mut()[ni * c + ci] = s / area;
        }
    }
    let xid = input.id();
    input.tape().push(
        out,
        OpMeta::new("avg_pool_global", vec![xid]),
        Some(Box::new(move |g, sink| {
            let gx = sink.accum(xid);
            for ni in 0..n {
                for ci in 0..c {
                    let gv = g.data()[ni * c + ci] / area;
                    let base = ni * c * h * w + ci * h * w;
                    for o in &mut gx.data_mut()[base..base + h * w] {
                        *o += gv;
                    }
                }
            }
        })),
    )
}

/// Per-channel mean over `(N, H, W)`: `[N, C, H, W] → [C]`.
pub fn channel_mean(input: Var<'_>) -> Var<'_> {
    let xv = input.value();
    let (n, c, h, w) = dims4(&xv);
    let count = (n * h * w) as f32;
    let mut out = Array::zeros(&[c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = ni * c * h * w + ci * h * w;
            out.data_mut()[ci] += xv.data()[base..base + h * w].iter().sum::<f32>();
        }
    }
    out.scale_mut(1.0 / count);
    let xid = input.id();
    input.tape().push(
        out,
        OpMeta::new("channel_mean", vec![xid]),
        Some(Box::new(move |g, sink| {
            let gx = sink.accum(xid);
            for ni in 0..n {
                for ci in 0..c {
                    let gv = g.data()[ci] / count;
                    let base = ni * c * h * w + ci * h * w;
                    for o in &mut gx.data_mut()[base..base + h * w] {
                        *o += gv;
                    }
                }
            }
        })),
    )
}

/// Per-channel affine: `out[n,c,h,w] = input[n,c,h,w] * scale[c] + shift[c]`.
pub fn channel_affine<'t>(input: Var<'t>, scale: Var<'t>, shift: Var<'t>) -> Var<'t> {
    let xv = input.value();
    let sv = scale.value();
    let bv = shift.value();
    let (n, c, h, w) = dims4(&xv);
    assert_eq!(sv.len(), c, "channel_affine scale length");
    assert_eq!(bv.len(), c, "channel_affine shift length");
    let mut out = Array::zeros(&[n, c, h, w]);
    for ni in 0..n {
        for ci in 0..c {
            let (s, b) = (sv.data()[ci], bv.data()[ci]);
            let base = ni * c * h * w + ci * h * w;
            for (o, &x) in out.data_mut()[base..base + h * w]
                .iter_mut()
                .zip(&xv.data()[base..base + h * w])
            {
                *o = x * s + b;
            }
        }
    }
    let (xid, sid, bid) = (input.id(), scale.id(), shift.id());
    let sv2 = Rc::clone(&sv);
    input.tape().push(
        out,
        OpMeta::new("channel_affine", vec![xid, sid, bid]),
        Some(Box::new(move |g, sink| {
            let (gx, gs, gb) = sink.accum3(xid, sid, bid);
            for ni in 0..n {
                for ci in 0..c {
                    let s = sv2.data()[ci];
                    let base = ni * c * h * w + ci * h * w;
                    let gslice = &g.data()[base..base + h * w];
                    let xslice = &xv.data()[base..base + h * w];
                    let gxs = &mut gx.data_mut()[base..base + h * w];
                    let mut acc_s = 0.0;
                    let mut acc_b = 0.0;
                    for i in 0..h * w {
                        gxs[i] += gslice[i] * s;
                        acc_s += gslice[i] * xslice[i];
                        acc_b += gslice[i];
                    }
                    gs.data_mut()[ci] += acc_s;
                    gb.data_mut()[ci] += acc_b;
                }
            }
        })),
    )
}

/// Subtract a per-channel vector: `out[n,c,·] = input[n,c,·] − v[c]`.
pub fn sub_channel<'t>(input: Var<'t>, v: Var<'t>) -> Var<'t> {
    let xv = input.value();
    let vv = v.value();
    let (n, c, h, w) = dims4(&xv);
    assert_eq!(vv.len(), c);
    let mut out = (*xv).clone();
    for ni in 0..n {
        for ci in 0..c {
            let m = vv.data()[ci];
            let base = ni * c * h * w + ci * h * w;
            for o in &mut out.data_mut()[base..base + h * w] {
                *o -= m;
            }
        }
    }
    let (xid, vid) = (input.id(), v.id());
    input.tape().push(
        out,
        OpMeta::new("sub_channel", vec![xid, vid]),
        Some(Box::new(move |g, sink| {
            sink.add(xid, g);
            let gv = sink.accum(vid);
            for ni in 0..n {
                for ci in 0..c {
                    let base = ni * c * h * w + ci * h * w;
                    gv.data_mut()[ci] -= g.data()[base..base + h * w].iter().sum::<f32>();
                }
            }
        })),
    )
}

/// Multiply each channel by a per-channel vector: `out[n,c,·] = input[n,c,·] · v[c]`.
pub fn mul_channel<'t>(input: Var<'t>, v: Var<'t>) -> Var<'t> {
    let xv = input.value();
    let vv = v.value();
    let (n, c, h, w) = dims4(&xv);
    assert_eq!(vv.len(), c);
    let mut out = (*xv).clone();
    for ni in 0..n {
        for ci in 0..c {
            let m = vv.data()[ci];
            let base = ni * c * h * w + ci * h * w;
            for o in &mut out.data_mut()[base..base + h * w] {
                *o *= m;
            }
        }
    }
    let (xid, vid) = (input.id(), v.id());
    input.tape().push(
        out,
        OpMeta::new("mul_channel", vec![xid, vid]),
        Some(Box::new(move |g, sink| {
            let (gx, gv) = sink.accum2(xid, vid);
            for ni in 0..n {
                for ci in 0..c {
                    let m = vv.data()[ci];
                    let base = ni * c * h * w + ci * h * w;
                    let gslice = &g.data()[base..base + h * w];
                    let xslice = &xv.data()[base..base + h * w];
                    let gxs = &mut gx.data_mut()[base..base + h * w];
                    let mut acc = 0.0;
                    for i in 0..h * w {
                        gxs[i] += gslice[i] * m;
                        acc += gslice[i] * xslice[i];
                    }
                    gv.data_mut()[ci] += acc;
                }
            }
        })),
    )
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)] // explicit clones read clearer in grad checks
mod tests {
    use super::*;
    use crate::check::grad_check;
    use crate::ops::{square, sum_all};
    use crate::tape::Tape;

    fn seq(shape: &[usize]) -> Array {
        let n: usize = shape.iter().product();
        Array::from_vec(shape, (0..n).map(|i| (i as f32) * 0.1 - 0.4).collect())
    }

    #[test]
    fn conv2d_identity_kernel() {
        let t = Tape::new();
        let x = t.leaf(seq(&[1, 1, 3, 3]));
        // 1x1 kernel with weight 1 and zero bias reproduces the input.
        let k = t.leaf(Array::ones(&[1, 1, 1, 1]));
        let b = t.leaf(Array::zeros(&[1]));
        let y = conv2d(x, k, b, 1, 0);
        assert_eq!(y.value().shape(), &[1, 1, 3, 3]);
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn conv2d_known_sum() {
        let t = Tape::new();
        // 2x2 all-ones kernel over a 2x2 input of ones, no padding → sum 4.
        let x = t.leaf(Array::ones(&[1, 1, 2, 2]));
        let k = t.leaf(Array::ones(&[1, 1, 2, 2]));
        let b = t.leaf(Array::full(&[1], 0.5));
        let y = conv2d(x, k, b, 1, 0);
        assert_eq!(y.value().shape(), &[1, 1, 1, 1]);
        assert!((y.value().data()[0] - 4.5).abs() < 1e-6);
    }

    #[test]
    fn conv2d_padding_shape() {
        let t = Tape::new();
        let x = t.leaf(seq(&[2, 3, 5, 4]));
        let k = t.leaf(seq(&[4, 3, 3, 3]));
        let b = t.leaf(Array::zeros(&[4]));
        let y = conv2d(x, k, b, 1, 1); // same-padding for 3x3
        assert_eq!(y.value().shape(), &[2, 4, 5, 4]);
        let y2 = conv2d(x, k, b, 2, 1);
        assert_eq!(y2.value().shape(), &[2, 4, 3, 2]);
    }

    #[test]
    fn grad_conv2d() {
        let x = seq(&[1, 2, 4, 3]);
        let k = seq(&[2, 2, 2, 2]);
        let b = Array::vector(vec![0.1, -0.2]);
        grad_check(&[x, k, b], |_, v| {
            sum_all(square(conv2d(v[0], v[1], v[2], 1, 1)))
        });
    }

    #[test]
    fn grad_conv2d_strided() {
        let x = seq(&[2, 1, 5, 5]);
        let k = seq(&[1, 1, 3, 3]);
        let b = Array::vector(vec![0.3]);
        grad_check(&[x, k, b], |_, v| {
            sum_all(square(conv2d(v[0], v[1], v[2], 2, 0)))
        });
    }

    #[test]
    fn grad_pool_and_channel_ops() {
        let x = seq(&[2, 3, 2, 2]);
        let v = Array::vector(vec![0.5, -1.0, 2.0]);
        let s = Array::vector(vec![1.5, 0.5, -0.7]);
        grad_check(&[x.clone()], |_, vars| {
            sum_all(square(avg_pool_global(vars[0])))
        });
        grad_check(&[x.clone()], |_, vars| {
            sum_all(square(channel_mean(vars[0])))
        });
        grad_check(&[x.clone(), v.clone()], |_, vars| {
            sum_all(square(sub_channel(vars[0], vars[1])))
        });
        grad_check(&[x.clone(), v.clone()], |_, vars| {
            sum_all(square(mul_channel(vars[0], vars[1])))
        });
        grad_check(&[x, s, v], |_, vars| {
            sum_all(square(channel_affine(vars[0], vars[1], vars[2])))
        });
    }

    #[test]
    fn channel_mean_matches_manual() {
        let t = Tape::new();
        let x = t.leaf(Array::from_vec(&[1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]));
        let m = channel_mean(x);
        assert_eq!(m.value().data(), &[2.0, 15.0]);
    }

    #[test]
    fn avg_pool_matches_manual() {
        let t = Tape::new();
        let x = t.leaf(Array::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]));
        let p = avg_pool_global(x);
        assert_eq!(p.value().data(), &[3.0]);
    }
}
