//! Per-kernel timing hooks, compiled in only under the `kernel-timing`
//! cargo feature.
//!
//! Each hot kernel entry point (`gemm`, `gemm_bt`, `gemm_at`, `conv2d`,
//! `Tape::backward`) opens a [`KernelTimer`] whose drop adds the elapsed
//! nanoseconds and one call to a pair of `st-obs` counters
//! (`kernel.<name>.ns` / `kernel.<name>.calls`). Handles are resolved once
//! per process and cached, so the steady-state cost is two relaxed atomic
//! adds plus a clock read per kernel call. Without the feature this module
//! does not exist and the call sites compile to nothing — the "0% when
//! off" half of the PR-4 acceptance bar.

use std::sync::OnceLock;
use std::time::Instant;

use st_obs::Counter;

/// Which kernel a timer attributes to.
#[derive(Clone, Copy)]
pub(crate) enum Kernel {
    /// Plain row-major GEMM (`gemm`).
    Gemm,
    /// Fused `A·Bᵀ` (`gemm_bt`).
    GemmBt,
    /// Fused `Aᵀ·B` (`gemm_at`).
    GemmAt,
    /// Direct convolution forward (`conv2d`).
    Conv2d,
    /// Reverse sweep over the tape (`Tape::backward`).
    Backward,
}

struct Handles {
    ns: Counter,
    calls: Counter,
}

fn handles(which: Kernel) -> &'static Handles {
    static CELLS: OnceLock<[Handles; 5]> = OnceLock::new();
    let all = CELLS.get_or_init(|| {
        let mk = |name: &str| Handles {
            ns: st_obs::counter(&format!("kernel.{name}.ns")),
            calls: st_obs::counter(&format!("kernel.{name}.calls")),
        };
        [
            mk("gemm"),
            mk("gemm_bt"),
            mk("gemm_at"),
            mk("conv2d"),
            mk("backward"),
        ]
    });
    &all[which as usize]
}

/// RAII timer: created at kernel entry, attributes elapsed time on drop.
pub(crate) struct KernelTimer {
    which: Kernel,
    started: Instant,
}

pub(crate) fn timer(which: Kernel) -> KernelTimer {
    KernelTimer {
        which,
        started: Instant::now(),
    }
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        let h = handles(self.which);
        h.ns.add(self.started.elapsed().as_nanos() as u64);
        h.calls.inc();
    }
}
