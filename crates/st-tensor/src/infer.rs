//! Tape-free inference runtime: pure-`Array` forward kernels for decoding.
//!
//! Training needs the autodiff [`Tape`](crate::tape::Tape); serving does
//! not. Route decoding runs the model forward thousands of times per query,
//! and recording an autodiff graph for each step costs tape nodes, backward
//! closures and `Rc` traffic that are thrown away immediately. This module
//! is the forward path split out of autodiff: every kernel here computes
//! **exactly** the same f32 arithmetic, in the same order, as its taped
//! counterpart in [`crate::ops`] / [`crate::conv`] — decoders built on it
//! produce bit-identical routes — but records nothing and, in steady state,
//! allocates nothing.
//!
//! # Scratch arena
//!
//! Output arrays are drawn from a [`ScratchArena`]: a free-list of `f32`
//! buffers owned by the caller. A decoder allocates from the arena inside
//! its step, recycles dead intermediates back into it, and after the first
//! step every `alloc` is a pop from the free-list. The arena is plain data
//! (`Send`), so one can be kept per serving thread.
//!
//! # Zero-tape contract
//!
//! Nothing in the inference hot path may construct a `Tape` (or a `Binder`,
//! which borrows one). The contract is enforced three ways:
//!
//! * [`TapeFreeScope`] asserts, in debug builds, that no tape was created
//!   on the thread while the scope was alive.
//! * `Tape::live_count` / `Tape::created_count` expose the thread-local
//!   counters for ad-hoc checks and gauges.
//! * The `st-lint` `tape-in-infer` rule flags `Tape::new` / `Binder::new`
//!   textually reachable from `infer`-path functions at CI time.

use crate::array::Array;
use crate::tape::Tape;

/// A free-list of `f32` buffers backing inference outputs.
///
/// [`ScratchArena::alloc`] pops a buffer with sufficient capacity (or
/// allocates one the first time a size is seen) and returns it as a zeroed
/// [`Array`]; [`ScratchArena::recycle`] returns a dead array's buffer to
/// the list. Once a decoding loop has warmed up, its per-step allocation
/// count is zero.
#[derive(Default)]
pub struct ScratchArena {
    pool: Vec<Vec<f32>>,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed array of `shape`, backed by a recycled buffer when one with
    /// enough capacity is pooled.
    pub fn alloc(&mut self, shape: &[usize]) -> Array {
        let len: usize = shape.iter().product();
        // Most recently recycled buffers are checked first: a decode step
        // recycles and re-allocs the same handful of shapes, so the match
        // is usually at the tail.
        let hit = match self.pool.last() {
            Some(b) if b.capacity() >= len => Some(self.pool.len() - 1),
            _ => self.pool.iter().rposition(|b| b.capacity() >= len),
        };
        let mut buf = match hit {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        buf.clear();
        buf.resize(len, 0.0);
        Array::from_buffer(shape, buf)
    }

    /// Return `a`'s backing buffer to the free-list.
    pub fn recycle(&mut self, a: Array) {
        self.pool.push(a.into_vec());
    }

    /// Number of buffers currently pooled (for steady-state assertions).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Debug-mode guard asserting no [`Tape`] is created while it is alive.
///
/// Constructed at the entry of an inference hot path; on drop (in builds
/// with debug assertions) it panics if the thread's monotonic tape-creation
/// counter moved. The *created* counter is checked rather than the live
/// count so a tape that was created and dropped inside the scope is still
/// caught. Release builds carry the two `usize` reads and nothing else.
pub struct TapeFreeScope {
    created_at_entry: usize,
}

impl TapeFreeScope {
    /// Open a scope at the current tape-creation count.
    pub fn enter() -> Self {
        Self {
            created_at_entry: Tape::created_count(),
        }
    }
}

impl Drop for TapeFreeScope {
    fn drop(&mut self) {
        if cfg!(debug_assertions) && !std::thread::panicking() {
            let created = Tape::created_count();
            assert_eq!(
                created,
                self.created_at_entry,
                "tape-free contract violated: {} tape(s) created inside an \
                 inference scope — the hot path must use st_tensor::infer \
                 kernels, not taped ops",
                created - self.created_at_entry
            );
        }
    }
}

fn dims2(a: &Array) -> (usize, usize) {
    assert_eq!(a.ndim(), 2, "expected 2-D, got {:?}", a.shape());
    (a.shape()[0], a.shape()[1])
}

fn dims4(a: &Array) -> (usize, usize, usize, usize) {
    assert_eq!(a.ndim(), 4, "expected NCHW, got {:?}", a.shape());
    let s = a.shape();
    (s[0], s[1], s[2], s[3])
}

/// `a(m×k) · b(k×n)` through the packed GEMM path — the same kernel the
/// taped [`crate::ops::matmul`] runs, so a row of a batched product is
/// bit-identical to the batch-1 product of that row.
pub fn matmul(arena: &mut ScratchArena, a: &Array, b: &Array) -> Array {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul: {:?} · {:?}", a.shape(), b.shape());
    let mut out = arena.alloc(&[m, n]);
    crate::gemm::gemm(m, k, n, a.data(), b.data(), out.data_mut(), false);
    out
}

/// Fused affine map `x(n×k) · w(k×d) + bias[d]`, mirroring
/// [`crate::ops::affine`] (GEMM, then bias added row-wise).
pub fn affine(arena: &mut ScratchArena, x: &Array, w: &Array, bias: &Array) -> Array {
    let mut y = matmul(arena, x, w);
    assert_eq!(
        y.cols(),
        bias.len(),
        "affine: {:?} + bias {:?}",
        y.shape(),
        bias.shape()
    );
    for r in 0..y.rows() {
        for (o, &b) in y.row_mut(r).iter_mut().zip(bias.data()) {
            *o += b;
        }
    }
    y
}

/// In-place logistic sigmoid (`1 / (1 + e^{-x})`, as taped).
pub fn sigmoid_mut(a: &mut Array) {
    for x in a.data_mut() {
        *x = 1.0 / (1.0 + (-*x).exp());
    }
}

/// In-place hyperbolic tangent.
pub fn tanh_mut(a: &mut Array) {
    for x in a.data_mut() {
        *x = x.tanh();
    }
}

/// In-place rectified linear unit (`x.max(0.0)`, as taped).
pub fn relu_mut(a: &mut Array) {
    for x in a.data_mut() {
        *x = x.max(0.0);
    }
}

/// In-place leaky ReLU with the given negative-side slope.
pub fn leaky_relu_mut(a: &mut Array, slope: f32) {
    for x in a.data_mut() {
        if *x <= 0.0 {
            *x *= slope;
        }
    }
}

/// In-place numerically stable softplus `ln(1 + e^x)` (linear above 20,
/// as taped).
pub fn softplus_mut(a: &mut Array) {
    for x in a.data_mut() {
        if *x <= 20.0 {
            *x = (1.0 + x.exp()).ln();
        }
    }
}

/// In-place row-wise softmax, mirroring [`crate::ops::softmax_into`]:
/// per row, exponentials of `x − max` are summed then divided through.
pub fn softmax_rows_mut(a: &mut Array) {
    let (n, _) = dims2(a);
    for r in 0..n {
        let row = a.row_mut(r);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for o in row.iter_mut() {
            let e = (*o - m).exp();
            *o = e;
            z += e;
        }
        for o in row.iter_mut() {
            *o /= z;
        }
    }
}

/// In-place row-wise log-softmax, mirroring [`crate::ops::log_softmax_rows`]:
/// `out[j] = x[j] − (max + ln Σ e^{x−max})`.
pub fn log_softmax_rows_mut(a: &mut Array) {
    let (n, _) = dims2(a);
    for r in 0..n {
        let row = a.row_mut(r);
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        for o in row.iter_mut() {
            *o -= lse;
        }
    }
}

/// Embedding lookup: rows of `table [v, d]` at `indices` →
/// `[indices.len(), d]` (row copies, as taped).
pub fn gather_rows(arena: &mut ScratchArena, table: &Array, indices: &[usize]) -> Array {
    let (v, d) = dims2(table);
    let mut y = arena.alloc(&[indices.len(), d]);
    for (r, &ix) in indices.iter().enumerate() {
        assert!(ix < v, "gather index {ix} out of range {v}");
        y.row_mut(r).copy_from_slice(table.row(ix));
    }
    y
}

/// Concatenate 2-D arrays along columns (all must share a row count).
pub fn concat_cols(arena: &mut ScratchArena, parts: &[&Array]) -> Array {
    assert!(!parts.is_empty());
    let n = parts[0].rows();
    for p in parts {
        assert_eq!(p.rows(), n, "concat_cols: row mismatch");
    }
    let total: usize = parts.iter().map(|p| p.cols()).sum();
    let mut y = arena.alloc(&[n, total]);
    for r in 0..n {
        let out = y.row_mut(r);
        let mut off = 0;
        for p in parts {
            let w = p.cols();
            out[off..off + w].copy_from_slice(p.row(r));
            off += w;
        }
    }
    y
}

#[inline]
fn idx4(
    c_stride: usize,
    h_stride: usize,
    w_stride: usize,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> usize {
    n * c_stride + c * h_stride + h * w_stride + w
}

/// 2-D convolution with stride and zero padding, mirroring
/// [`crate::conv::conv2d`]'s direct loop (bias-seeded accumulator, same
/// accumulation order).
pub fn conv2d(
    arena: &mut ScratchArena,
    input: &Array,
    kernel: &Array,
    bias: &Array,
    stride: usize,
    pad: usize,
) -> Array {
    assert!(stride >= 1, "stride must be >= 1");
    let (n, c, h, w) = dims4(input);
    let (o, ck, kh, kw) = dims4(kernel);
    assert_eq!(c, ck, "conv2d channel mismatch: input {c}, kernel {ck}");
    assert_eq!(bias.len(), o, "conv2d bias length");
    assert!(
        h + 2 * pad >= kh && w + 2 * pad >= kw,
        "conv2d kernel larger than padded input"
    );
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;

    let mut out = arena.alloc(&[n, o, oh, ow]);
    let (xc, xh, xw) = (c * h * w, h * w, w);
    let (koc, kcc, khh) = (c * kh * kw, kh * kw, kw);
    let (yc, yh, yw) = (o * oh * ow, oh * ow, ow);
    let xd = input.data();
    let kd = kernel.data();
    let bd = bias.data();
    let yd = out.data_mut();
    for ni in 0..n {
        for oi in 0..o {
            for yi in 0..oh {
                for xi_ in 0..ow {
                    let mut acc = bd[oi];
                    let h0 = yi * stride;
                    let w0 = xi_ * stride;
                    for ci in 0..c {
                        for ki in 0..kh {
                            let ih = h0 + ki;
                            if ih < pad || ih - pad >= h {
                                continue;
                            }
                            for kj in 0..kw {
                                let iw = w0 + kj;
                                if iw < pad || iw - pad >= w {
                                    continue;
                                }
                                acc += xd[idx4(xc, xh, xw, ni, ci, ih - pad, iw - pad)]
                                    * kd[idx4(koc, kcc, khh, oi, ci, ki, kj)];
                            }
                        }
                    }
                    yd[idx4(yc, yh, yw, ni, oi, yi, xi_)] = acc;
                }
            }
        }
    }
    out
}

/// Global average pooling `[N, C, H, W] → [N, C]`, mirroring
/// [`crate::conv::avg_pool_global`].
pub fn avg_pool_global(arena: &mut ScratchArena, input: &Array) -> Array {
    let (n, c, h, w) = dims4(input);
    let area = (h * w) as f32;
    let mut out = arena.alloc(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = ni * c * h * w + ci * h * w;
            let s: f32 = input.data()[base..base + h * w].iter().sum();
            out.data_mut()[ni * c + ci] = s / area;
        }
    }
    out
}

/// In-place per-channel subtraction `x[n,c,·] −= v[c]`, mirroring
/// [`crate::conv::sub_channel`].
pub fn sub_channel_mut(x: &mut Array, v: &Array) {
    let (n, c, h, w) = dims4(x);
    assert_eq!(v.len(), c);
    for ni in 0..n {
        for ci in 0..c {
            let m = v.data()[ci];
            let base = ni * c * h * w + ci * h * w;
            for o in &mut x.data_mut()[base..base + h * w] {
                *o -= m;
            }
        }
    }
}

/// In-place per-channel scaling `x[n,c,·] *= v[c]`, mirroring
/// [`crate::conv::mul_channel`].
pub fn mul_channel_mut(x: &mut Array, v: &Array) {
    let (n, c, h, w) = dims4(x);
    assert_eq!(v.len(), c);
    for ni in 0..n {
        for ci in 0..c {
            let m = v.data()[ci];
            let base = ni * c * h * w + ci * h * w;
            for o in &mut x.data_mut()[base..base + h * w] {
                *o *= m;
            }
        }
    }
}

/// In-place per-channel affine `x[n,c,·] = x[n,c,·] · scale[c] + shift[c]`,
/// mirroring [`crate::conv::channel_affine`].
pub fn channel_affine_mut(x: &mut Array, scale: &Array, shift: &Array) {
    let (n, c, h, w) = dims4(x);
    assert_eq!(scale.len(), c, "channel_affine scale length");
    assert_eq!(shift.len(), c, "channel_affine shift length");
    for ni in 0..n {
        for ci in 0..c {
            let (s, b) = (scale.data()[ci], shift.data()[ci]);
            let base = ni * c * h * w + ci * h * w;
            for o in &mut x.data_mut()[base..base + h * w] {
                *o = *o * s + b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use proptest::prelude::*;

    fn seq(shape: &[usize]) -> Array {
        let n: usize = shape.iter().product();
        Array::from_vec(shape, (0..n).map(|i| (i as f32) * 0.1 - 0.4).collect())
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena = ScratchArena::new();
        let a = arena.alloc(&[4, 4]);
        arena.recycle(a);
        assert_eq!(arena.pooled(), 1);
        let b = arena.alloc(&[2, 8]); // same element count, reuses the buffer
        assert_eq!(arena.pooled(), 0);
        assert!(
            b.data().iter().all(|&x| x == 0.0),
            "recycled must be zeroed"
        );
        arena.recycle(b);
        // Steady state: alternating alloc/recycle never grows the pool.
        for _ in 0..10 {
            let t = arena.alloc(&[4, 4]);
            arena.recycle(t);
        }
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn tape_free_scope_passes_without_tapes() {
        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let a = seq(&[2, 3]);
        let b = seq(&[3, 4]);
        let _ = matmul(&mut arena, &a, &b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "tape-free contract violated")]
    fn tape_free_scope_catches_tape_creation() {
        let _scope = TapeFreeScope::enter();
        let t = Tape::new();
        // Even a tape dropped before the scope ends is a violation.
        drop(t);
    }

    #[test]
    fn matmul_matches_taped() {
        let mut arena = ScratchArena::new();
        let a = seq(&[5, 7]);
        let b = seq(&[7, 3]);
        let y = matmul(&mut arena, &a, &b);
        let t = Tape::new();
        let yt = ops::matmul(t.leaf(a), t.leaf(b));
        assert_eq!(y.data(), yt.value().data());
    }

    #[test]
    fn affine_matches_taped() {
        let mut arena = ScratchArena::new();
        let x = seq(&[4, 6]);
        let w = seq(&[6, 5]);
        let b = seq(&[5]);
        let y = affine(&mut arena, &x, &w, &b);
        let t = Tape::new();
        let yt = ops::affine(t.leaf(x), t.leaf(w), t.leaf(b));
        assert_eq!(y.data(), yt.value().data());
    }

    #[test]
    fn activations_match_taped() {
        let x = Array::vector(vec![-25.0, -2.0, -0.5, 0.0, 0.5, 2.0, 25.0]);
        let t = Tape::new();
        let xv = t.leaf(x.clone());
        let pairs: Vec<(Array, Vec<f32>)> = vec![
            (
                {
                    let mut a = x.clone();
                    sigmoid_mut(&mut a);
                    a
                },
                ops::sigmoid(xv).value().data().to_vec(),
            ),
            (
                {
                    let mut a = x.clone();
                    tanh_mut(&mut a);
                    a
                },
                ops::tanh(xv).value().data().to_vec(),
            ),
            (
                {
                    let mut a = x.clone();
                    relu_mut(&mut a);
                    a
                },
                ops::relu(xv).value().data().to_vec(),
            ),
            (
                {
                    let mut a = x.clone();
                    leaky_relu_mut(&mut a, 0.1);
                    a
                },
                ops::leaky_relu(xv, 0.1).value().data().to_vec(),
            ),
            (
                {
                    let mut a = x.clone();
                    softplus_mut(&mut a);
                    a
                },
                ops::softplus(xv).value().data().to_vec(),
            ),
        ];
        for (got, want) in pairs {
            assert_eq!(got.data(), &want[..]);
        }
    }

    #[test]
    fn softmax_families_match_taped() {
        let x = seq(&[3, 5]);
        let t = Tape::new();
        let xv = t.leaf(x.clone());
        let mut sm = x.clone();
        softmax_rows_mut(&mut sm);
        assert_eq!(sm.data(), ops::softmax_rows(xv).value().data());
        let mut lsm = x.clone();
        log_softmax_rows_mut(&mut lsm);
        assert_eq!(lsm.data(), ops::log_softmax_rows(xv).value().data());
    }

    #[test]
    fn gather_and_concat_match_taped() {
        let mut arena = ScratchArena::new();
        let table = seq(&[6, 4]);
        let idx = [3usize, 0, 5, 3];
        let y = gather_rows(&mut arena, &table, &idx);
        let t = Tape::new();
        let yt = ops::gather_rows(t.leaf(table.clone()), &idx);
        assert_eq!(y.data(), yt.value().data());

        let a = seq(&[2, 3]);
        let b = seq(&[2, 2]);
        let cat = concat_cols(&mut arena, &[&a, &b]);
        let catt = ops::concat_cols(&[t.leaf(a), t.leaf(b)]);
        assert_eq!(cat.data(), catt.value().data());
    }

    #[test]
    fn conv_kernels_match_taped() {
        let mut arena = ScratchArena::new();
        let x = seq(&[2, 3, 5, 4]);
        let k = seq(&[4, 3, 3, 3]);
        let b = Array::vector(vec![0.1, -0.2, 0.3, 0.0]);
        for (stride, pad) in [(1, 1), (2, 1), (1, 0)] {
            let y = conv2d(&mut arena, &x, &k, &b, stride, pad);
            let t = Tape::new();
            let yt = crate::conv::conv2d(
                t.leaf(x.clone()),
                t.leaf(k.clone()),
                t.leaf(b.clone()),
                stride,
                pad,
            );
            assert_eq!(y.data(), yt.value().data(), "stride {stride} pad {pad}");
            arena.recycle(y);
        }

        let p = avg_pool_global(&mut arena, &x);
        let t = Tape::new();
        let pt = crate::conv::avg_pool_global(t.leaf(x.clone()));
        assert_eq!(p.data(), pt.value().data());
    }

    #[test]
    fn channel_ops_match_taped() {
        let x = seq(&[2, 3, 2, 2]);
        let v = Array::vector(vec![0.5, -1.0, 2.0]);
        let s = Array::vector(vec![1.5, 0.5, -0.7]);
        let t = Tape::new();
        let want = crate::conv::channel_affine(
            crate::conv::mul_channel(
                crate::conv::sub_channel(t.leaf(x.clone()), t.leaf(v.clone())),
                t.leaf(s.clone()),
            ),
            t.leaf(s.clone()),
            t.leaf(v.clone()),
        );
        let mut got = x.clone();
        sub_channel_mut(&mut got, &v);
        mul_channel_mut(&mut got, &s);
        channel_affine_mut(&mut got, &s, &v);
        assert_eq!(got.data(), want.value().data());
    }

    proptest! {
        /// A row of a batched GEMM is bit-identical to the batch-1 product
        /// of that row — the property batched beam decoding rests on.
        #[test]
        fn batched_rows_equal_single_rows(
            m in 1usize..=8,
            k in 1usize..=16,
            n in 1usize..=32,
            data in proptest::collection::vec(-3.0f32..3.0, 8 * 16 + 16 * 32),
        ) {
            let a = Array::from_vec(&[m, k], data[..m * k].to_vec());
            let b = Array::from_vec(&[k, n], data[8 * 16..8 * 16 + k * n].to_vec());
            let mut arena = ScratchArena::new();
            let batched = matmul(&mut arena, &a, &b);
            for r in 0..m {
                let row = Array::from_vec(&[1, k], a.row(r).to_vec());
                let single = matmul(&mut arena, &row, &b);
                prop_assert_eq!(single.data(), batched.row(r));
                arena.recycle(single);
            }
        }
    }
}
