//! Tape-free inference runtime: pure-`Array` forward kernels for decoding.
//!
//! Training needs the autodiff [`Tape`](crate::tape::Tape); serving does
//! not. Route decoding runs the model forward thousands of times per query,
//! and recording an autodiff graph for each step costs tape nodes, backward
//! closures and `Rc` traffic that are thrown away immediately. This module
//! is the forward path split out of autodiff: every kernel here computes
//! **exactly** the same f32 arithmetic, in the same order, as its taped
//! counterpart in [`crate::ops`] / [`crate::conv`] — decoders built on it
//! produce bit-identical routes — but records nothing and, in steady state,
//! allocates nothing.
//!
//! # Scratch arena
//!
//! Output arrays are drawn from a [`ScratchArena`]: a free-list of `f32`
//! buffers owned by the caller. A decoder allocates from the arena inside
//! its step, recycles dead intermediates back into it, and after the first
//! step every `alloc` is a pop from the free-list. The arena is plain data
//! (`Send`), so one can be kept per serving thread.
//!
//! # Zero-tape contract
//!
//! Nothing in the inference hot path may construct a `Tape` (or a `Binder`,
//! which borrows one). The contract is enforced three ways:
//!
//! * [`TapeFreeScope`] asserts, in debug builds, that no tape was created
//!   on the thread while the scope was alive.
//! * `Tape::live_count` / `Tape::created_count` expose the thread-local
//!   counters for ad-hoc checks and gauges.
//! * The `st-lint` `tape-in-infer` rule flags `Tape::new` / `Binder::new`
//!   textually reachable from `infer`-path functions at CI time.

use crate::array::Array;
use crate::tape::Tape;

/// A free-list of `f32` buffers backing inference outputs.
///
/// [`ScratchArena::alloc`] pops a buffer with sufficient capacity (or
/// allocates one the first time a size is seen) and returns it as a zeroed
/// [`Array`]; [`ScratchArena::recycle`] returns a dead array's buffer to
/// the list. Once a decoding loop has warmed up, its per-step allocation
/// count is zero.
#[derive(Default)]
pub struct ScratchArena {
    pool: Vec<Vec<f32>>,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed array of `shape`, backed by a recycled buffer when one with
    /// enough capacity is pooled.
    pub fn alloc(&mut self, shape: &[usize]) -> Array {
        let len: usize = shape.iter().product();
        // Most recently recycled buffers are checked first: a decode step
        // recycles and re-allocs the same handful of shapes, so the match
        // is usually at the tail.
        let hit = match self.pool.last() {
            Some(b) if b.capacity() >= len => Some(self.pool.len() - 1),
            _ => self.pool.iter().rposition(|b| b.capacity() >= len),
        };
        let mut buf = match hit {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        buf.clear();
        buf.resize(len, 0.0);
        Array::from_buffer(shape, buf)
    }

    /// Like [`ScratchArena::alloc`] but without zeroing: a recycled buffer
    /// keeps whatever values it held. Only for outputs whose every element
    /// is overwritten before being read (GEMM outputs with `acc = false`,
    /// gather targets, …) — the zero-fill is pure overhead there, and on
    /// the decode hot path it is measurable.
    pub fn alloc_uninit(&mut self, shape: &[usize]) -> Array {
        let len: usize = shape.iter().product();
        let hit = match self.pool.last() {
            Some(b) if b.capacity() >= len => Some(self.pool.len() - 1),
            _ => self.pool.iter().rposition(|b| b.capacity() >= len),
        };
        let mut buf = match hit {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        // Contents stay whatever the recycled buffer held (valid f32s —
        // never uninitialized memory); only growth past the previous length
        // zero-fills.
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        Array::from_buffer(shape, buf)
    }

    /// Return `a`'s backing buffer to the free-list.
    pub fn recycle(&mut self, a: Array) {
        self.pool.push(a.into_vec());
    }

    /// Number of buffers currently pooled (for steady-state assertions).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Debug-mode guard asserting no [`Tape`] is created while it is alive.
///
/// Constructed at the entry of an inference hot path; on drop (in builds
/// with debug assertions) it panics if the thread's monotonic tape-creation
/// counter moved. The *created* counter is checked rather than the live
/// count so a tape that was created and dropped inside the scope is still
/// caught. Release builds carry the two `usize` reads and nothing else.
pub struct TapeFreeScope {
    created_at_entry: usize,
}

impl TapeFreeScope {
    /// Open a scope at the current tape-creation count.
    pub fn enter() -> Self {
        Self {
            created_at_entry: Tape::created_count(),
        }
    }
}

impl Drop for TapeFreeScope {
    fn drop(&mut self) {
        if cfg!(debug_assertions) && !std::thread::panicking() {
            let created = Tape::created_count();
            assert_eq!(
                created,
                self.created_at_entry,
                "tape-free contract violated: {} tape(s) created inside an \
                 inference scope — the hot path must use st_tensor::infer \
                 kernels, not taped ops",
                created - self.created_at_entry
            );
        }
    }
}

fn dims2(a: &Array) -> (usize, usize) {
    assert_eq!(a.ndim(), 2, "expected 2-D, got {:?}", a.shape());
    (a.shape()[0], a.shape()[1])
}

fn dims4(a: &Array) -> (usize, usize, usize, usize) {
    assert_eq!(a.ndim(), 4, "expected NCHW, got {:?}", a.shape());
    let s = a.shape();
    (s[0], s[1], s[2], s[3])
}

/// `a(m×k) · b(k×n)` through the packed GEMM path — the same kernel the
/// taped [`crate::ops::matmul`] runs, so a row of a batched product is
/// bit-identical to the batch-1 product of that row.
pub fn matmul(arena: &mut ScratchArena, a: &Array, b: &Array) -> Array {
    let (m, k) = dims2(a);
    let (k2, n) = dims2(b);
    assert_eq!(k, k2, "matmul: {:?} · {:?}", a.shape(), b.shape());
    let mut out = arena.alloc_uninit(&[m, n]);
    crate::gemm::gemm(m, k, n, a.data(), b.data(), out.data_mut(), false);
    out
}

/// Fused affine map `x(n×k) · w(k×d) + bias[d]`, mirroring
/// [`crate::ops::affine`] (GEMM, then bias added row-wise).
pub fn affine(arena: &mut ScratchArena, x: &Array, w: &Array, bias: &Array) -> Array {
    let mut y = matmul(arena, x, w);
    add_bias_rows(&mut y, bias.data());
    y
}

/// Row-broadcast bias add `y[r, ·] += bias`, dispatched to the AVX2+FMA
/// build when available (the scalar and SIMD builds run identical
/// arithmetic, so results match bit-for-bit either way).
pub fn add_bias_rows(y: &mut Array, bias: &[f32]) {
    let (m, n) = dims2(y);
    assert_eq!(
        n,
        bias.len(),
        "add_bias_rows: {:?} + bias[{}]",
        y.shape(),
        bias.len()
    );
    let _ = m;
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        return unsafe { add_bias_rows_avx2(y.data_mut(), bias) };
    }
    add_bias_rows_impl(y.data_mut(), bias);
}

/// SAFETY: `#[target_feature]`-only unsafety — the body is the safe
/// `add_bias_rows_impl` recompiled with AVX2+FMA codegen; no raw pointers
/// or intrinsics. Callers must have verified [`crate::dispatch::avx2_fma()`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn add_bias_rows_avx2(data: &mut [f32], bias: &[f32]) {
    add_bias_rows_impl(data, bias)
}

#[inline(always)]
fn add_bias_rows_impl(data: &mut [f32], bias: &[f32]) {
    for row in data.chunks_exact_mut(bias.len()) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o += b;
        }
    }
}

/// In-place logistic sigmoid, via the crate's deterministic polynomial
/// kernel ([`crate::mathfn::sigmoid`] — the same function the taped op
/// computes), vectorized under the runtime AVX2 dispatch.
pub fn sigmoid_mut(a: &mut Array) {
    crate::mathfn::sigmoid_slice_mut(a.data_mut());
}

/// In-place hyperbolic tangent, via [`crate::mathfn::tanh`] (see
/// [`sigmoid_mut`]).
pub fn tanh_mut(a: &mut Array) {
    crate::mathfn::tanh_slice_mut(a.data_mut());
}

/// In-place rectified linear unit (`x.max(0.0)`, as taped).
pub fn relu_mut(a: &mut Array) {
    for x in a.data_mut() {
        *x = x.max(0.0);
    }
}

/// In-place leaky ReLU with the given negative-side slope.
pub fn leaky_relu_mut(a: &mut Array, slope: f32) {
    for x in a.data_mut() {
        if *x <= 0.0 {
            *x *= slope;
        }
    }
}

/// In-place numerically stable softplus `ln(1 + e^x)` (linear above 20,
/// as taped).
pub fn softplus_mut(a: &mut Array) {
    for x in a.data_mut() {
        if *x <= 20.0 {
            *x = (1.0 + x.exp()).ln();
        }
    }
}

/// In-place row-wise softmax, mirroring [`crate::ops::softmax_into`]:
/// per row, exponentials of `x − max` are summed then divided through.
///
/// Dispatched to the AVX2+FMA build; the max scan uses 8-lane partial
/// maxima (exact — `max` is order-independent) and the divide pass
/// vectorizes, while the exp/sum stays in the taped sequential order so the
/// result is bit-identical to the taped op.
pub fn softmax_rows_mut(a: &mut Array) {
    let (_, w) = dims2(a);
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        return unsafe { softmax_rows_avx2(a.data_mut(), w) };
    }
    softmax_rows_impl(a.data_mut(), w);
}

/// SAFETY: `#[target_feature]`-only unsafety — the body is the safe
/// `softmax_rows_impl` with AVX2+FMA codegen. Callers must have verified
/// [`crate::dispatch::avx2_fma()`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn softmax_rows_avx2(data: &mut [f32], w: usize) {
    softmax_rows_impl(data, w)
}

#[inline(always)]
fn softmax_rows_impl(data: &mut [f32], w: usize) {
    if w == 0 {
        return;
    }
    for row in data.chunks_exact_mut(w) {
        let m = row_max(row);
        let mut z = 0.0;
        for o in row.iter_mut() {
            let e = (*o - m).exp();
            *o = e;
            z += e;
        }
        for o in row.iter_mut() {
            *o /= z;
        }
    }
}

/// In-place row-wise log-softmax, mirroring [`crate::ops::log_softmax_rows`]:
/// `out[j] = x[j] − (max + ln Σ e^{x−max})`. Dispatched like
/// [`softmax_rows_mut`], with the same bit-identity argument.
pub fn log_softmax_rows_mut(a: &mut Array) {
    let (_, w) = dims2(a);
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        return unsafe { log_softmax_rows_avx2(a.data_mut(), w) };
    }
    log_softmax_rows_impl(a.data_mut(), w);
}

/// SAFETY: `#[target_feature]`-only unsafety — the body is the safe
/// `log_softmax_rows_impl` with AVX2+FMA codegen. Callers must have
/// verified [`crate::dispatch::avx2_fma()`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn log_softmax_rows_avx2(data: &mut [f32], w: usize) {
    log_softmax_rows_impl(data, w)
}

#[inline(always)]
fn log_softmax_rows_impl(data: &mut [f32], w: usize) {
    if w == 0 {
        return;
    }
    for row in data.chunks_exact_mut(w) {
        let m = row_max(row);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        for o in row.iter_mut() {
            *o -= lse;
        }
    }
}

/// Row maximum via 8 independent lane maxima plus a tail — vectorizable,
/// and exact versus the sequential fold because `max` over a fixed set of
/// values is order-independent.
#[inline(always)]
fn row_max(row: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; 8];
    let chunks = row.chunks_exact(8);
    let tail = chunks.remainder();
    for c in chunks {
        for (l, &v) in lanes.iter_mut().zip(c) {
            *l = l.max(v);
        }
    }
    let mut m = f32::NEG_INFINITY;
    for &v in tail {
        m = m.max(v);
    }
    for &l in &lanes {
        m = m.max(l);
    }
    m
}

/// Embedding lookup: rows of `table [v, d]` at `indices` →
/// `[indices.len(), d]` (row copies, as taped).
pub fn gather_rows(arena: &mut ScratchArena, table: &Array, indices: &[usize]) -> Array {
    let (v, d) = dims2(table);
    let mut y = arena.alloc_uninit(&[indices.len(), d]);
    for (r, &ix) in indices.iter().enumerate() {
        assert!(ix < v, "gather index {ix} out of range {v}");
        y.row_mut(r).copy_from_slice(table.row(ix));
    }
    y
}

/// Embedding lookup across a row-blocked table
/// ([`BlockedParam`](crate::block::BlockedParam)): row `r` of the output is
/// row `picks[r].1` of block value `blocks[picks[r].0]`. Row copies, so the
/// result is bit-identical to [`gather_rows`] over the dense concatenation.
pub fn gather_rows_blocked(
    arena: &mut ScratchArena,
    blocks: &[&Array],
    picks: &[(usize, usize)],
) -> Array {
    assert!(!blocks.is_empty(), "gather_rows_blocked needs >= 1 block");
    let d = dims2(blocks[0]).1;
    let mut y = arena.alloc_uninit(&[picks.len(), d]);
    for (r, &(slot, row)) in picks.iter().enumerate() {
        let b = blocks[slot];
        let (rows_b, db) = dims2(b);
        assert_eq!(db, d, "block column mismatch");
        assert!(row < rows_b, "row {row} out of range {rows_b}");
        y.row_mut(r).copy_from_slice(b.row(row));
    }
    y
}

/// Concatenate 2-D arrays along columns (all must share a row count).
pub fn concat_cols(arena: &mut ScratchArena, parts: &[&Array]) -> Array {
    assert!(!parts.is_empty());
    let n = parts[0].rows();
    for p in parts {
        assert_eq!(p.rows(), n, "concat_cols: row mismatch");
    }
    let total: usize = parts.iter().map(|p| p.cols()).sum();
    let mut y = arena.alloc_uninit(&[n, total]);
    for r in 0..n {
        let out = y.row_mut(r);
        let mut off = 0;
        for p in parts {
            let w = p.cols();
            out[off..off + w].copy_from_slice(p.row(r));
            off += w;
        }
    }
    y
}

#[inline]
fn idx4(
    c_stride: usize,
    h_stride: usize,
    w_stride: usize,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> usize {
    n * c_stride + c * h_stride + h * w_stride + w
}

/// 2-D convolution with stride and zero padding, mirroring
/// [`crate::conv::conv2d`]'s direct loop (bias-seeded accumulator, same
/// accumulation order).
pub fn conv2d(
    arena: &mut ScratchArena,
    input: &Array,
    kernel: &Array,
    bias: &Array,
    stride: usize,
    pad: usize,
) -> Array {
    assert!(stride >= 1, "stride must be >= 1");
    let (n, c, h, w) = dims4(input);
    let (o, ck, kh, kw) = dims4(kernel);
    assert_eq!(c, ck, "conv2d channel mismatch: input {c}, kernel {ck}");
    assert_eq!(bias.len(), o, "conv2d bias length");
    assert!(
        h + 2 * pad >= kh && w + 2 * pad >= kw,
        "conv2d kernel larger than padded input"
    );
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;

    let mut out = arena.alloc(&[n, o, oh, ow]);
    let (xc, xh, xw) = (c * h * w, h * w, w);
    let (koc, kcc, khh) = (c * kh * kw, kh * kw, kw);
    let (yc, yh, yw) = (o * oh * ow, oh * ow, ow);
    let xd = input.data();
    let kd = kernel.data();
    let bd = bias.data();
    let yd = out.data_mut();
    for ni in 0..n {
        for oi in 0..o {
            for yi in 0..oh {
                for xi_ in 0..ow {
                    let mut acc = bd[oi];
                    let h0 = yi * stride;
                    let w0 = xi_ * stride;
                    for ci in 0..c {
                        for ki in 0..kh {
                            let ih = h0 + ki;
                            if ih < pad || ih - pad >= h {
                                continue;
                            }
                            for kj in 0..kw {
                                let iw = w0 + kj;
                                if iw < pad || iw - pad >= w {
                                    continue;
                                }
                                acc += xd[idx4(xc, xh, xw, ni, ci, ih - pad, iw - pad)]
                                    * kd[idx4(koc, kcc, khh, oi, ci, ki, kj)];
                            }
                        }
                    }
                    yd[idx4(yc, yh, yw, ni, oi, yi, xi_)] = acc;
                }
            }
        }
    }
    out
}

/// Global average pooling `[N, C, H, W] → [N, C]`, mirroring
/// [`crate::conv::avg_pool_global`].
pub fn avg_pool_global(arena: &mut ScratchArena, input: &Array) -> Array {
    let (n, c, h, w) = dims4(input);
    let area = (h * w) as f32;
    let mut out = arena.alloc(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = ni * c * h * w + ci * h * w;
            let s: f32 = input.data()[base..base + h * w].iter().sum();
            out.data_mut()[ni * c + ci] = s / area;
        }
    }
    out
}

/// In-place per-channel subtraction `x[n,c,·] −= v[c]`, mirroring
/// [`crate::conv::sub_channel`].
pub fn sub_channel_mut(x: &mut Array, v: &Array) {
    let (n, c, h, w) = dims4(x);
    assert_eq!(v.len(), c);
    for ni in 0..n {
        for ci in 0..c {
            let m = v.data()[ci];
            let base = ni * c * h * w + ci * h * w;
            for o in &mut x.data_mut()[base..base + h * w] {
                *o -= m;
            }
        }
    }
}

/// In-place per-channel scaling `x[n,c,·] *= v[c]`, mirroring
/// [`crate::conv::mul_channel`].
pub fn mul_channel_mut(x: &mut Array, v: &Array) {
    let (n, c, h, w) = dims4(x);
    assert_eq!(v.len(), c);
    for ni in 0..n {
        for ci in 0..c {
            let m = v.data()[ci];
            let base = ni * c * h * w + ci * h * w;
            for o in &mut x.data_mut()[base..base + h * w] {
                *o *= m;
            }
        }
    }
}

/// In-place per-channel affine `x[n,c,·] = x[n,c,·] · scale[c] + shift[c]`,
/// mirroring [`crate::conv::channel_affine`].
pub fn channel_affine_mut(x: &mut Array, scale: &Array, shift: &Array) {
    let (n, c, h, w) = dims4(x);
    assert_eq!(scale.len(), c, "channel_affine scale length");
    assert_eq!(shift.len(), c, "channel_affine shift length");
    for ni in 0..n {
        for ci in 0..c {
            let (s, b) = (scale.data()[ci], shift.data()[ci]);
            let base = ni * c * h * w + ci * h * w;
            for o in &mut x.data_mut()[base..base + h * w] {
                *o = *o * s + b;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Packed weight caches
// ---------------------------------------------------------------------------

/// A weight matrix packed once into GEMM micro-kernel tile order.
///
/// [`matmul`] re-packs its B operand on every call because training weights
/// change every step; decode weights are constant across all beam steps, so
/// an inference session packs each weight once through this type and every
/// subsequent product skips the pack entirely. Products through a
/// `PackedWeights` are bit-identical to [`matmul`] on the same operands.
pub struct PackedWeights {
    packed: crate::gemm::PackedB,
}

impl PackedWeights {
    /// Pack a `[k, n]` weight matrix.
    pub fn pack(w: &Array) -> Self {
        let (k, n) = dims2(w);
        Self {
            packed: crate::gemm::PackedB::pack(k, n, w.data()),
        }
    }

    /// Input width `k` of the packed `[k, n]` matrix.
    pub fn in_dim(&self) -> usize {
        self.packed.k()
    }

    /// Output width `n` of the packed `[k, n]` matrix.
    pub fn out_dim(&self) -> usize {
        self.packed.n()
    }
}

/// `a(m×k) · W` with `W` packed ahead of time — the per-step fast path of
/// the decode loop. Bit-identical to [`matmul`] on the same operands.
pub fn matmul_packed(arena: &mut ScratchArena, a: &Array, w: &PackedWeights) -> Array {
    let (m, k) = dims2(a);
    assert_eq!(
        k,
        w.in_dim(),
        "matmul_packed: {:?} · packed [{}, {}]",
        a.shape(),
        w.in_dim(),
        w.out_dim()
    );
    let mut out = arena.alloc_uninit(&[m, w.out_dim()]);
    crate::gemm::gemm_prepacked(m, a.data(), &w.packed, out.data_mut(), false);
    out
}

/// A linear layer (weights + bias) packed once per session.
pub struct PackedLinear {
    w: PackedWeights,
    bias: Vec<f32>,
}

impl PackedLinear {
    /// Pack a `[k, n]` weight matrix and its `[n]` bias.
    pub fn pack(w: &Array, bias: &Array) -> Self {
        let p = PackedWeights::pack(w);
        assert_eq!(bias.len(), p.out_dim(), "PackedLinear: bias/width mismatch");
        Self {
            w: p,
            bias: bias.data().to_vec(),
        }
    }

    /// Output width of the layer.
    pub fn out_dim(&self) -> usize {
        self.w.out_dim()
    }

    /// Input width of the layer.
    pub fn in_dim(&self) -> usize {
        self.w.in_dim()
    }
}

/// Affine map through a pre-packed layer: `x · W + bias`, bit-identical to
/// [`affine`] on the same operands.
pub fn affine_packed(arena: &mut ScratchArena, x: &Array, l: &PackedLinear) -> Array {
    let mut y = matmul_packed(arena, x, &l.w);
    add_bias_rows(&mut y, &l.bias);
    y
}

// ---------------------------------------------------------------------------
// Fused GRU gate epilogue
// ---------------------------------------------------------------------------

/// Fused GRU gate epilogue: consumes the two per-step GEMM outputs and
/// rewrites the hidden state in place, with no intermediate gate buffers.
///
/// Inputs per batch row: `gx = x·Wx` (bias **not** yet added, `[m, 3h]`
/// laid out `[r | z | n]`), `gh = h·Wh` (`[m, 3h]`), the `[3h]` gate bias,
/// and `state` (`[m, h]`, holding hₜ₋₁ on entry and hₜ on return). The
/// gate pre-activations are computed into `gx` in place, activated with
/// the [`crate::mathfn`] kernels, and combined:
///
/// ```text
/// r = σ((gx_r + b_r) + gh_r)
/// z = σ((gx_z + b_z) + gh_z)
/// n = tanh((gx_n + b_n) + r ⊙ gh_n)
/// h' = (n − z ⊙ n) + z ⊙ h
/// ```
///
/// The association matches the unfused path (`affine` adds the bias before
/// `gh` is added) exactly, so the fused step is bit-identical to
/// `GruCell::infer_step` and to the taped `GruCell::step`.
pub fn gru_gates_fused(hidden: usize, gx: &mut Array, gh: &Array, bias: &[f32], state: &mut Array) {
    let (m, g) = dims2(gx);
    assert_eq!(g, 3 * hidden, "gru_gates_fused: gx is not [m, 3h]");
    assert_eq!(gh.shape(), gx.shape(), "gru_gates_fused: gh/gx mismatch");
    assert_eq!(bias.len(), 3 * hidden, "gru_gates_fused: bias is not [3h]");
    assert_eq!(
        state.shape(),
        &[m, hidden],
        "gru_gates_fused: state is not [m, h]"
    );
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        return unsafe {
            gru_gates_fused_avx2(hidden, gx.data_mut(), gh.data(), bias, state.data_mut())
        };
    }
    gru_gates_fused_impl(hidden, gx.data_mut(), gh.data(), bias, state.data_mut());
}

/// SAFETY: `#[target_feature]`-only unsafety — the body is the safe
/// `gru_gates_fused_impl` with AVX2+FMA codegen; no raw pointers or
/// intrinsics. Callers must have verified [`crate::dispatch::avx2_fma()`];
/// shape preconditions are asserted by the safe [`gru_gates_fused`] entry.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gru_gates_fused_avx2(h: usize, gx: &mut [f32], gh: &[f32], b: &[f32], st: &mut [f32]) {
    gru_gates_fused_impl(h, gx, gh, b, st)
}

#[inline(always)]
fn gru_gates_fused_impl(h: usize, gx: &mut [f32], gh: &[f32], b: &[f32], st: &mut [f32]) {
    // r and z take the same sigmoid and sit adjacent in the `[r | z | n]`
    // layout, so they share one 2h-wide pass; the tanh of n and the state
    // combine are element-independent and fuse into a single h-wide pass.
    // Per-element arithmetic and order are exactly the four-loop unfused
    // form, so the fusion is bitwise-invisible.
    let (brz, bn) = b.split_at(2 * h);
    for (gx_row, (gh_row, h_row)) in gx
        .chunks_exact_mut(3 * h)
        .zip(gh.chunks_exact(3 * h).zip(st.chunks_exact_mut(h)))
    {
        let (rz, n) = gx_row.split_at_mut(2 * h);
        let (gh_rz, gh_n) = gh_row.split_at(2 * h);
        for j in 0..2 * h {
            rz[j] = crate::mathfn::sigmoid((rz[j] + brz[j]) + gh_rz[j]);
        }
        let (r, z) = rz.split_at(h);
        for j in 0..h {
            let nj = crate::mathfn::tanh((n[j] + bn[j]) + r[j] * gh_n[j]);
            h_row[j] = (nj - z[j] * nj) + (z[j] * h_row[j]);
        }
    }
}

// ---------------------------------------------------------------------------
// Quantized (int8) inference kernels
// ---------------------------------------------------------------------------

/// An int8-quantized weight matrix with per-output-channel (column) scales.
///
/// `w[p, j] ≈ q[p, j] · scale[j]` with `q ∈ [−levels, levels]` and
/// `scale[j] = max_p |w[p, j]| / levels`. Products accumulate in f32
/// ([`matmul_quantized`]). Quantized inference is **not** bit-identical to
/// f32 — it is validated statistically by the route-identity harness.
pub struct QuantizedMatrix {
    k: usize,
    n: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantize a `[k, n]` weight matrix to full int8 range (±127).
    pub fn quantize(w: &Array) -> Self {
        Self::quantize_with_levels(w, 127)
    }

    /// Quantize with a reduced level count (e.g. 7 ≈ 3-bit) — used by the
    /// planted-regression harness to prove the route-match threshold
    /// actually rejects a precision regression.
    pub fn quantize_with_levels(w: &Array, levels: i32) -> Self {
        assert!((1..=127).contains(&levels), "levels must be in 1..=127");
        let (k, n) = dims2(w);
        let d = w.data();
        let mut scales = vec![0.0f32; n];
        for row in d.chunks_exact(n) {
            for (s, &v) in scales.iter_mut().zip(row) {
                *s = s.max(v.abs());
            }
        }
        for s in &mut scales {
            // Zero columns get scale 1.0 so dequantization stays exact 0.
            *s = if *s > 0.0 { *s / levels as f32 } else { 1.0 };
        }
        let q = d
            .chunks_exact(n)
            .flat_map(|row| {
                row.iter()
                    .zip(&scales)
                    .map(|(&v, &s)| (v / s).round().clamp(-(levels as f32), levels as f32) as i8)
            })
            .collect();
        Self { k, n, q, scales }
    }

    /// Input width `k`.
    pub fn in_dim(&self) -> usize {
        self.k
    }

    /// Output width `n`.
    pub fn out_dim(&self) -> usize {
        self.n
    }
}

/// `a(m×k) · Q` for an int8 matrix: f32 accumulation over dequantized-on-
/// the-fly columns, then one per-column scale multiply.
pub fn matmul_quantized(arena: &mut ScratchArena, a: &Array, q: &QuantizedMatrix) -> Array {
    let (m, k) = dims2(a);
    assert_eq!(
        k,
        q.k,
        "matmul_quantized: {:?} · quantized [{}, {}]",
        a.shape(),
        q.k,
        q.n
    );
    let mut out = arena.alloc(&[m, q.n]);
    #[cfg(target_arch = "x86_64")]
    if crate::dispatch::avx2_fma() {
        // SAFETY: feature presence checked at runtime.
        unsafe { matmul_quantized_avx2(m, k, q.n, a.data(), &q.q, &q.scales, out.data_mut()) };
        return out;
    }
    matmul_quantized_impl(m, k, q.n, a.data(), &q.q, &q.scales, out.data_mut());
    out
}

/// SAFETY: `#[target_feature]`-only unsafety — the body is the safe
/// `matmul_quantized_impl` with AVX2+FMA codegen (the i8→f32 widening
/// vectorizes). Callers must have verified [`crate::dispatch::avx2_fma()`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn matmul_quantized_avx2(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    q: &[i8],
    scales: &[f32],
    out: &mut [f32],
) {
    matmul_quantized_impl(m, k, n, a, q, scales, out)
}

#[inline(always)]
fn matmul_quantized_impl(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    q: &[i8],
    scales: &[f32],
    out: &mut [f32],
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let q_row = &q[p * n..(p + 1) * n];
            for (o, &qv) in o_row.iter_mut().zip(q_row) {
                *o += av * qv as f32;
            }
        }
        for (o, &s) in o_row.iter_mut().zip(scales) {
            *o *= s;
        }
    }
}

/// An int8-quantized embedding table with per-row scales (each row is one
/// embedding vector, so the natural quantization axis is the row).
pub struct QuantizedTable {
    rows: usize,
    dim: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedTable {
    /// Quantize a `[rows, dim]` table to int8 with one scale per row.
    pub fn quantize(table: &Array) -> Self {
        let (rows, dim) = dims2(table);
        let d = table.data();
        let mut scales = Vec::with_capacity(rows);
        let mut q = Vec::with_capacity(rows * dim);
        for row in d.chunks_exact(dim.max(1)).take(rows) {
            let amax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let s = if amax > 0.0 { amax / 127.0 } else { 1.0 };
            scales.push(s);
            q.extend(
                row.iter()
                    .map(|&v| (v / s).round().clamp(-127.0, 127.0) as i8),
            );
        }
        Self {
            rows,
            dim,
            q,
            scales,
        }
    }

    /// Number of table rows (the vocabulary size).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Dequantizing embedding lookup: `y[r, ·] = q[ix, ·] · scale[ix]`.
pub fn gather_rows_quantized(
    arena: &mut ScratchArena,
    table: &QuantizedTable,
    indices: &[usize],
) -> Array {
    let mut y = arena.alloc_uninit(&[indices.len(), table.dim]);
    for (r, &ix) in indices.iter().enumerate() {
        assert!(
            ix < table.rows,
            "gather index {ix} out of range {}",
            table.rows
        );
        let s = table.scales[ix];
        let src = &table.q[ix * table.dim..(ix + 1) * table.dim];
        for (o, &qv) in y.row_mut(r).iter_mut().zip(src) {
            *o = qv as f32 * s;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use proptest::prelude::*;

    fn seq(shape: &[usize]) -> Array {
        let n: usize = shape.iter().product();
        Array::from_vec(shape, (0..n).map(|i| (i as f32) * 0.1 - 0.4).collect())
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena = ScratchArena::new();
        let a = arena.alloc(&[4, 4]);
        arena.recycle(a);
        assert_eq!(arena.pooled(), 1);
        let b = arena.alloc(&[2, 8]); // same element count, reuses the buffer
        assert_eq!(arena.pooled(), 0);
        assert!(
            b.data().iter().all(|&x| x == 0.0),
            "recycled must be zeroed"
        );
        arena.recycle(b);
        // Steady state: alternating alloc/recycle never grows the pool.
        for _ in 0..10 {
            let t = arena.alloc(&[4, 4]);
            arena.recycle(t);
        }
        assert_eq!(arena.pooled(), 1);
    }

    #[test]
    fn tape_free_scope_passes_without_tapes() {
        let _scope = TapeFreeScope::enter();
        let mut arena = ScratchArena::new();
        let a = seq(&[2, 3]);
        let b = seq(&[3, 4]);
        let _ = matmul(&mut arena, &a, &b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "tape-free contract violated")]
    fn tape_free_scope_catches_tape_creation() {
        let _scope = TapeFreeScope::enter();
        let t = Tape::new();
        // Even a tape dropped before the scope ends is a violation.
        drop(t);
    }

    #[test]
    fn matmul_matches_taped() {
        let mut arena = ScratchArena::new();
        let a = seq(&[5, 7]);
        let b = seq(&[7, 3]);
        let y = matmul(&mut arena, &a, &b);
        let t = Tape::new();
        let yt = ops::matmul(t.leaf(a), t.leaf(b));
        assert_eq!(y.data(), yt.value().data());
    }

    #[test]
    fn affine_matches_taped() {
        let mut arena = ScratchArena::new();
        let x = seq(&[4, 6]);
        let w = seq(&[6, 5]);
        let b = seq(&[5]);
        let y = affine(&mut arena, &x, &w, &b);
        let t = Tape::new();
        let yt = ops::affine(t.leaf(x), t.leaf(w), t.leaf(b));
        assert_eq!(y.data(), yt.value().data());
    }

    #[test]
    fn activations_match_taped() {
        let x = Array::vector(vec![-25.0, -2.0, -0.5, 0.0, 0.5, 2.0, 25.0]);
        let t = Tape::new();
        let xv = t.leaf(x.clone());
        let pairs: Vec<(Array, Vec<f32>)> = vec![
            (
                {
                    let mut a = x.clone();
                    sigmoid_mut(&mut a);
                    a
                },
                ops::sigmoid(xv).value().data().to_vec(),
            ),
            (
                {
                    let mut a = x.clone();
                    tanh_mut(&mut a);
                    a
                },
                ops::tanh(xv).value().data().to_vec(),
            ),
            (
                {
                    let mut a = x.clone();
                    relu_mut(&mut a);
                    a
                },
                ops::relu(xv).value().data().to_vec(),
            ),
            (
                {
                    let mut a = x.clone();
                    leaky_relu_mut(&mut a, 0.1);
                    a
                },
                ops::leaky_relu(xv, 0.1).value().data().to_vec(),
            ),
            (
                {
                    let mut a = x.clone();
                    softplus_mut(&mut a);
                    a
                },
                ops::softplus(xv).value().data().to_vec(),
            ),
        ];
        for (got, want) in pairs {
            assert_eq!(got.data(), &want[..]);
        }
    }

    #[test]
    fn softmax_families_match_taped() {
        let x = seq(&[3, 5]);
        let t = Tape::new();
        let xv = t.leaf(x.clone());
        let mut sm = x.clone();
        softmax_rows_mut(&mut sm);
        assert_eq!(sm.data(), ops::softmax_rows(xv).value().data());
        let mut lsm = x.clone();
        log_softmax_rows_mut(&mut lsm);
        assert_eq!(lsm.data(), ops::log_softmax_rows(xv).value().data());
    }

    #[test]
    fn gather_and_concat_match_taped() {
        let mut arena = ScratchArena::new();
        let table = seq(&[6, 4]);
        let idx = [3usize, 0, 5, 3];
        let y = gather_rows(&mut arena, &table, &idx);
        let t = Tape::new();
        let yt = ops::gather_rows(t.leaf(table.clone()), &idx);
        assert_eq!(y.data(), yt.value().data());

        let a = seq(&[2, 3]);
        let b = seq(&[2, 2]);
        let cat = concat_cols(&mut arena, &[&a, &b]);
        let catt = ops::concat_cols(&[t.leaf(a), t.leaf(b)]);
        assert_eq!(cat.data(), catt.value().data());
    }

    #[test]
    fn conv_kernels_match_taped() {
        let mut arena = ScratchArena::new();
        let x = seq(&[2, 3, 5, 4]);
        let k = seq(&[4, 3, 3, 3]);
        let b = Array::vector(vec![0.1, -0.2, 0.3, 0.0]);
        for (stride, pad) in [(1, 1), (2, 1), (1, 0)] {
            let y = conv2d(&mut arena, &x, &k, &b, stride, pad);
            let t = Tape::new();
            let yt = crate::conv::conv2d(
                t.leaf(x.clone()),
                t.leaf(k.clone()),
                t.leaf(b.clone()),
                stride,
                pad,
            );
            assert_eq!(y.data(), yt.value().data(), "stride {stride} pad {pad}");
            arena.recycle(y);
        }

        let p = avg_pool_global(&mut arena, &x);
        let t = Tape::new();
        let pt = crate::conv::avg_pool_global(t.leaf(x.clone()));
        assert_eq!(p.data(), pt.value().data());
    }

    #[test]
    fn channel_ops_match_taped() {
        let x = seq(&[2, 3, 2, 2]);
        let v = Array::vector(vec![0.5, -1.0, 2.0]);
        let s = Array::vector(vec![1.5, 0.5, -0.7]);
        let t = Tape::new();
        let want = crate::conv::channel_affine(
            crate::conv::mul_channel(
                crate::conv::sub_channel(t.leaf(x.clone()), t.leaf(v.clone())),
                t.leaf(s.clone()),
            ),
            t.leaf(s.clone()),
            t.leaf(v.clone()),
        );
        let mut got = x.clone();
        sub_channel_mut(&mut got, &v);
        mul_channel_mut(&mut got, &s);
        channel_affine_mut(&mut got, &s, &v);
        assert_eq!(got.data(), want.value().data());
    }

    #[test]
    fn alloc_uninit_reuses_without_zeroing_guarantee() {
        let mut arena = ScratchArena::new();
        let mut a = arena.alloc(&[2, 3]);
        a.data_mut().fill(7.0);
        arena.recycle(a);
        // Same-size reuse: contents are unspecified but must be valid f32s
        // and the shape/len must be right.
        let b = arena.alloc_uninit(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data().len(), 6);
        arena.recycle(b);
        // Shrinking reuse truncates; growing reuse extends.
        let c = arena.alloc_uninit(&[1, 2]);
        assert_eq!(c.data().len(), 2);
        arena.recycle(c);
        let d = arena.alloc_uninit(&[4, 4]);
        assert_eq!(d.data().len(), 16);
    }

    #[test]
    fn packed_matmul_is_bit_identical_to_matmul() {
        let mut arena = ScratchArena::new();
        for m in [1usize, 2, 3, 5, 8] {
            let a = seq(&[m, 7]);
            let w = seq(&[7, 12]);
            let want = matmul(&mut arena, &a, &w);
            let packed = PackedWeights::pack(&w);
            assert_eq!((packed.in_dim(), packed.out_dim()), (7, 12));
            let got = matmul_packed(&mut arena, &a, &packed);
            assert_eq!(got.data(), want.data(), "m={m}");
            arena.recycle(want);
            arena.recycle(got);
        }
    }

    #[test]
    fn packed_affine_is_bit_identical_to_affine() {
        let mut arena = ScratchArena::new();
        let x = seq(&[4, 6]);
        let w = seq(&[6, 5]);
        let b = seq(&[5]);
        let want = affine(&mut arena, &x, &w, &b);
        let packed = PackedLinear::pack(&w, &b);
        assert_eq!((packed.in_dim(), packed.out_dim()), (6, 5));
        let got = affine_packed(&mut arena, &x, &packed);
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn gru_gates_fused_matches_unfused_reference_bitwise() {
        let mut arena = ScratchArena::new();
        let (m, h) = (5usize, 9usize);
        let x = seq(&[m, 4]);
        let wx = seq(&[4, 3 * h]);
        let wh = seq(&[h, 3 * h]);
        let bias = seq(&[3 * h]);
        let h_prev = seq(&[m, h]);

        // Unfused reference: affine + matmul + the scalar gate loop, exactly
        // as GruCell::infer_step computes it.
        let gx_ref = affine(&mut arena, &x, &wx, &bias);
        let gh_ref = matmul(&mut arena, &h_prev, &wh);
        let mut want = vec![0.0f32; m * h];
        for r in 0..m {
            let gxr = gx_ref.row(r);
            let ghr = gh_ref.row(r);
            let hr = h_prev.row(r);
            for j in 0..h {
                let rg = crate::mathfn::sigmoid(gxr[j] + ghr[j]);
                let z = crate::mathfn::sigmoid(gxr[h + j] + ghr[h + j]);
                let n = crate::mathfn::tanh(gxr[2 * h + j] + rg * ghr[2 * h + j]);
                want[r * h + j] = (n - z * n) + (z * hr[j]);
            }
        }

        // Fused path: bias-free GEMMs + in-place epilogue.
        let mut gx = matmul(&mut arena, &x, &wx);
        let gh = matmul(&mut arena, &h_prev, &wh);
        let mut state = h_prev.clone();
        gru_gates_fused(h, &mut gx, &gh, bias.data(), &mut state);
        assert_eq!(state.data(), &want[..]);
    }

    #[test]
    fn quantized_matmul_approximates_f32() {
        let mut arena = ScratchArena::new();
        let a = seq(&[3, 10]);
        let w = seq(&[10, 6]);
        let want = matmul(&mut arena, &a, &w);
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!((q.in_dim(), q.out_dim()), (10, 6));
        let got = matmul_quantized(&mut arena, &a, &q);
        for (g, wv) in got.data().iter().zip(want.data()) {
            // ±127 levels → relative error well under 1% for these ranges.
            assert!((g - wv).abs() <= 0.01 * wv.abs().max(1.0), "{g} vs {wv}");
        }
    }

    #[test]
    fn coarse_quantization_is_measurably_worse() {
        let mut arena = ScratchArena::new();
        let a = seq(&[3, 10]);
        let w = seq(&[10, 6]);
        let want = matmul(&mut arena, &a, &w);
        let err = |got: &Array| -> f32 {
            got.data()
                .iter()
                .zip(want.data())
                .map(|(g, w)| (g - w).abs())
                .sum()
        };
        let fine = matmul_quantized(&mut arena, &a, &QuantizedMatrix::quantize(&w));
        let coarse = matmul_quantized(
            &mut arena,
            &a,
            &QuantizedMatrix::quantize_with_levels(&w, 3),
        );
        assert!(
            err(&coarse) > 4.0 * err(&fine),
            "coarse {} fine {}",
            err(&coarse),
            err(&fine)
        );
    }

    #[test]
    fn quantized_gather_approximates_rows() {
        let mut arena = ScratchArena::new();
        let table = seq(&[6, 4]);
        let qt = QuantizedTable::quantize(&table);
        assert_eq!((qt.rows(), qt.dim()), (6, 4));
        let idx = [5usize, 0, 2];
        let got = gather_rows_quantized(&mut arena, &qt, &idx);
        for (r, &ix) in idx.iter().enumerate() {
            for (g, w) in got.row(r).iter().zip(table.row(ix)) {
                assert!((g - w).abs() <= w.abs() / 100.0 + 1e-6);
            }
        }
    }

    proptest! {
        /// A row of a batched GEMM is bit-identical to the batch-1 product
        /// of that row — the property batched beam decoding rests on.
        #[test]
        fn batched_rows_equal_single_rows(
            m in 1usize..=8,
            k in 1usize..=16,
            n in 1usize..=32,
            data in proptest::collection::vec(-3.0f32..3.0, 8 * 16 + 16 * 32),
        ) {
            let a = Array::from_vec(&[m, k], data[..m * k].to_vec());
            let b = Array::from_vec(&[k, n], data[8 * 16..8 * 16 + k * n].to_vec());
            let mut arena = ScratchArena::new();
            let batched = matmul(&mut arena, &a, &b);
            for r in 0..m {
                let row = Array::from_vec(&[1, k], a.row(r).to_vec());
                let single = matmul(&mut arena, &row, &b);
                prop_assert_eq!(single.data(), batched.row(r));
                arena.recycle(single);
            }
        }
    }
}
