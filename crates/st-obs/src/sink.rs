//! Recording control, ad-hoc events, one-time warnings, and the JSONL
//! trace file.
//!
//! # JSONL schema (version 1)
//!
//! One JSON object per line, discriminated by `"type"`:
//!
//! | type        | fields                                                        |
//! |-------------|---------------------------------------------------------------|
//! | `meta`      | `version`, `schema` plus caller-supplied run metadata         |
//! | `span`      | `id`, `parent` (null for roots), `name`, `thread`, `start_us`, `dur_us` |
//! | `counter`   | `name`, `value`                                               |
//! | `gauge`     | `name`, `value`                                               |
//! | `histogram` | `name`, `count`, `sum`, `min`, `max`                          |
//! | `event`     | `name`, `t_us`, plus caller-supplied fields                   |
//! | `summary`   | `spans_opened`, `spans_closed`, `spans_dropped`, `spans_written` |
//!
//! The first line is always `meta`, the last always `summary`. The balance
//! invariant `spans_opened == spans_closed` (and
//! `spans_written + spans_dropped == spans_closed` for a single-drain
//! trace) is enforced by [`validate_jsonl`], which the CI smoke job runs
//! over the trace `run_all` emits.

use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Mutex, OnceLock};

use serde_json::{json, Map, Value};

use crate::metrics::{snapshot, MetricSnapshot};
use crate::span::{self, SpanRecord};

fn events() -> &'static Mutex<Vec<Value>> {
    static EVENTS: OnceLock<Mutex<Vec<Value>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn warned() -> &'static Mutex<std::collections::BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<std::collections::BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(std::collections::BTreeSet::new()))
}

/// Turn span collection and event capture on. Idempotent; also pins the
/// process trace epoch so span timestamps share an origin.
pub fn start_recording() {
    let _ = span::epoch();
    span::ENABLED.store(true, Ordering::Relaxed);
}

/// Turn span collection and event capture off. Already-open spans still
/// close and record, keeping the opened/closed balance intact.
pub fn stop_recording() {
    span::ENABLED.store(false, Ordering::Relaxed);
}

/// Whether recording is currently enabled. Instrumented code can use this
/// to skip *computing* expensive labels; plain metric updates should not
/// bother (they are cheaper than the check).
pub fn recording() -> bool {
    span::ENABLED.load(Ordering::Relaxed)
}

/// Record a structured event (a point-in-time fact, e.g. a `TrainEvent`).
/// `fields` should be a JSON object; dropped unless recording.
pub fn event(name: &str, fields: Value) {
    if !recording() {
        return;
    }
    let t_us = std::time::Instant::now()
        .saturating_duration_since(span::epoch())
        .as_micros() as u64;
    let mut obj = Map::new();
    obj.insert("type".into(), Value::Str("event".into()));
    obj.insert("name".into(), Value::Str(name.into()));
    obj.insert("t_us".into(), Value::Num(t_us as f64));
    if let Value::Obj(extra) = fields {
        for (k, v) in extra.iter() {
            obj.insert(k.clone(), v.clone());
        }
    }
    events()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Value::Obj(obj));
}

/// Emit `message` to stderr exactly once per `key` for the process
/// lifetime, and (when recording) capture it as a `warning` event. Returns
/// `true` the first time, `false` on repeats. This is the surface for
/// "your config silently truncates" style diagnostics on hot paths.
pub fn warn_once(key: &str, message: &str) -> bool {
    let fresh = warned()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key.to_string());
    if !fresh {
        return false;
    }
    eprintln!("[st-obs] warning [{key}]: {message}");
    event("warning", json!({"key": key, "message": message}));
    true
}

/// Everything [`drain`] hands back: finished spans, metric snapshots,
/// captured events, and the span-balance counters.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Finished spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Snapshot of every registered metric with data.
    pub metrics: Vec<MetricSnapshot>,
    /// Captured events, in emission order.
    pub events: Vec<Value>,
    /// Cumulative spans opened process-wide.
    pub spans_opened: u64,
    /// Cumulative spans closed process-wide.
    pub spans_closed: u64,
    /// Spans lost to the buffer cap.
    pub spans_dropped: u64,
}

/// Move buffered spans and events out and snapshot the metrics. Metrics
/// are cumulative (not cleared); spans/events buffers are emptied.
pub fn drain() -> Trace {
    let spans = span::take_finished();
    let events = std::mem::take(&mut *events().lock().unwrap_or_else(|e| e.into_inner()));
    Trace {
        spans,
        metrics: snapshot(),
        events,
        spans_opened: span::OPENED.load(Ordering::Relaxed),
        spans_closed: span::CLOSED.load(Ordering::Relaxed),
        spans_dropped: span::DROPPED.load(Ordering::Relaxed),
    }
}

fn span_line(s: &SpanRecord) -> Value {
    json!({
        "type": "span",
        "id": s.id as f64,
        "parent": match s.parent { Some(p) => Value::Num(p as f64), None => Value::Null },
        "name": s.name.as_ref(),
        "thread": s.thread as f64,
        "start_us": s.start_us as f64,
        "dur_us": s.dur_us as f64,
    })
}

/// JSON has no non-finite numbers (the writer would emit `null`, which the
/// validator rejects); clamp the rare NaN/inf histogram stat to 0.
fn fin(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn metric_line(m: &MetricSnapshot) -> Value {
    match m {
        MetricSnapshot::Counter { name, value } => {
            json!({"type": "counter", "name": name.as_str(), "value": *value as f64})
        }
        MetricSnapshot::Gauge { name, value } => {
            json!({"type": "gauge", "name": name.as_str(), "value": *value})
        }
        MetricSnapshot::Histogram {
            name,
            count,
            sum,
            min,
            max,
        } => json!({
            "type": "histogram",
            "name": name.as_str(),
            "count": *count as f64,
            "sum": fin(*sum),
            "min": fin(*min),
            "max": fin(*max),
        }),
    }
}

/// Serialize a trace to `path` as schema-v1 JSONL. Atomic like the
/// checkpoint writer: write a `.tmp` sibling, flush, then rename into
/// place, so a crash never leaves a half-written trace.
pub fn write_jsonl(path: &Path, run_meta: &Value, trace: &Trace) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut out = String::new();
    let mut meta = Map::new();
    meta.insert("type".into(), Value::Str("meta".into()));
    meta.insert("schema".into(), Value::Str("st-obs-trace".into()));
    meta.insert("version".into(), Value::Num(1.0));
    if let Value::Obj(extra) = run_meta {
        for (k, v) in extra.iter() {
            meta.insert(k.clone(), v.clone());
        }
    }
    push_line(&mut out, &Value::Obj(meta))?;
    for s in &trace.spans {
        push_line(&mut out, &span_line(s))?;
    }
    for m in &trace.metrics {
        push_line(&mut out, &metric_line(m))?;
    }
    for e in &trace.events {
        push_line(&mut out, e)?;
    }
    push_line(
        &mut out,
        &json!({
            "type": "summary",
            "spans_opened": trace.spans_opened as f64,
            "spans_closed": trace.spans_closed as f64,
            "spans_dropped": trace.spans_dropped as f64,
            "spans_written": trace.spans.len() as f64,
        }),
    )?;

    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(out.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

fn push_line(out: &mut String, v: &Value) -> std::io::Result<()> {
    let line = serde_json::to_string(v)?;
    out.push_str(&line);
    out.push('\n');
    Ok(())
}

/// Counts extracted by [`validate_jsonl`] from a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// `span` lines present.
    pub spans: usize,
    /// `counter` lines present.
    pub counters: usize,
    /// `gauge` lines present.
    pub gauges: usize,
    /// `histogram` lines present.
    pub histograms: usize,
    /// `event` lines present.
    pub events: usize,
    /// `spans_opened` from the summary line.
    pub opened: u64,
    /// `spans_closed` from the summary line.
    pub closed: u64,
}

fn req_num(obj: &Value, key: &str, line_no: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("line {line_no}: missing numeric field `{key}`"))
}

fn req_str<'v>(obj: &'v Value, key: &str, line_no: usize) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing string field `{key}`"))
}

/// Validate `text` against the schema-v1 JSONL contract: every line parses
/// as a typed object, the first is `meta`, exactly one trailing `summary`
/// exists, span lines are well-formed (positive id, non-self parent,
/// non-empty name), and the span balance holds (`opened == closed`,
/// `written + dropped == closed`). Returns the tally or a message naming
/// the first offending line.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut tally = TraceSummary::default();
    let mut summary: Option<Value> = None;
    let mut seen_ids = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            return Err(format!("line {line_no}: blank line"));
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {line_no}: not valid JSON: {e}"))?;
        let ty = req_str(&v, "type", line_no)?.to_string();
        if i == 0 {
            if ty != "meta" {
                return Err(format!("line 1: first line must be `meta`, got `{ty}`"));
            }
            let version = req_num(&v, "version", line_no)?;
            if (version - 1.0).abs() > f64::EPSILON {
                return Err(format!("line 1: unsupported schema version {version}"));
            }
            continue;
        }
        if summary.is_some() {
            return Err(format!("line {line_no}: content after `summary` line"));
        }
        match ty.as_str() {
            "meta" => return Err(format!("line {line_no}: duplicate `meta` line")),
            "span" => {
                let id = req_num(&v, "id", line_no)?;
                if id < 1.0 {
                    return Err(format!("line {line_no}: span id must be >= 1"));
                }
                if !seen_ids.insert(id.to_bits()) {
                    return Err(format!("line {line_no}: duplicate span id {id}"));
                }
                if let Some(p) = v.get("parent").and_then(Value::as_f64) {
                    if (p - id).abs() < 0.5 {
                        return Err(format!("line {line_no}: span is its own parent"));
                    }
                }
                if req_str(&v, "name", line_no)?.is_empty() {
                    return Err(format!("line {line_no}: empty span name"));
                }
                req_num(&v, "thread", line_no)?;
                req_num(&v, "start_us", line_no)?;
                req_num(&v, "dur_us", line_no)?;
                tally.spans += 1;
            }
            "counter" => {
                req_str(&v, "name", line_no)?;
                req_num(&v, "value", line_no)?;
                tally.counters += 1;
            }
            "gauge" => {
                req_str(&v, "name", line_no)?;
                req_num(&v, "value", line_no)?;
                tally.gauges += 1;
            }
            "histogram" => {
                req_str(&v, "name", line_no)?;
                req_num(&v, "count", line_no)?;
                req_num(&v, "sum", line_no)?;
                tally.histograms += 1;
            }
            "event" => {
                req_str(&v, "name", line_no)?;
                req_num(&v, "t_us", line_no)?;
                tally.events += 1;
            }
            "summary" => summary = Some(v),
            other => return Err(format!("line {line_no}: unknown line type `{other}`")),
        }
    }
    let Some(summary) = summary else {
        return Err("missing `summary` line".to_string());
    };
    let opened = req_num(&summary, "spans_opened", 0)? as u64;
    let closed = req_num(&summary, "spans_closed", 0)? as u64;
    let dropped = req_num(&summary, "spans_dropped", 0)? as u64;
    let written = req_num(&summary, "spans_written", 0)? as u64;
    if opened != closed {
        return Err(format!(
            "span imbalance: {opened} opened vs {closed} closed"
        ));
    }
    if written != tally.spans as u64 {
        return Err(format!(
            "summary claims {written} spans written but file has {}",
            tally.spans
        ));
    }
    if written + dropped > closed {
        return Err(format!(
            "span accounting: {written} written + {dropped} dropped > {closed} closed"
        ));
    }
    tally.opened = opened;
    tally.closed = closed;
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::span;

    #[test]
    fn roundtrip_write_validate() {
        start_recording();
        {
            let _a = span("test/outer");
            let _b = span("test/inner");
            crate::metrics::counter("test.sink.roundtrip").inc();
            crate::metrics::gauge("test.sink.gauge").set(3.5);
            crate::metrics::histogram("test.sink.hist").record(0.125);
            event("unit-event", json!({"k": 7}));
        }
        let trace = drain();
        assert!(trace.spans.len() >= 2);
        let dir = std::env::temp_dir().join("st-obs-test");
        let path = dir.join("roundtrip.jsonl");
        write_jsonl(&path, &json!({"bin": "unit-test"}), &trace).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let tally = validate_jsonl(&text).unwrap();
        assert!(tally.spans >= 2);
        assert!(tally.counters >= 1);
        assert!(tally.gauges >= 1);
        assert!(tally.histograms >= 1);
        assert!(tally.events >= 1);
        assert_eq!(tally.opened, tally.closed);
    }

    #[test]
    fn validator_rejects_imbalance() {
        let text = concat!(
            "{\"type\":\"meta\",\"schema\":\"st-obs-trace\",\"version\":1}\n",
            "{\"type\":\"summary\",\"spans_opened\":3,\"spans_closed\":2,",
            "\"spans_dropped\":0,\"spans_written\":0}\n",
        );
        let err = validate_jsonl(text).unwrap_err();
        assert!(err.contains("imbalance"), "{err}");
    }

    #[test]
    fn validator_rejects_garbage_and_missing_summary() {
        assert!(validate_jsonl("not json\n").unwrap_err().contains("line 1"));
        let text = "{\"type\":\"meta\",\"schema\":\"st-obs-trace\",\"version\":1}\n";
        assert!(validate_jsonl(text).unwrap_err().contains("summary"));
    }

    #[test]
    fn validator_rejects_undeclared_span_count() {
        let text = concat!(
            "{\"type\":\"meta\",\"schema\":\"st-obs-trace\",\"version\":1}\n",
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"x\",",
            "\"thread\":1,\"start_us\":0,\"dur_us\":5}\n",
            "{\"type\":\"summary\",\"spans_opened\":1,\"spans_closed\":1,",
            "\"spans_dropped\":0,\"spans_written\":0}\n",
        );
        let err = validate_jsonl(text).unwrap_err();
        assert!(err.contains("claims"), "{err}");
    }

    #[test]
    fn warn_once_fires_once_per_key() {
        assert!(warn_once("test.sink.warn", "first"));
        assert!(!warn_once("test.sink.warn", "second"));
    }
}
