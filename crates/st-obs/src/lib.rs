//! `st-obs`: lightweight observability for the DeepST reproduction.
//!
//! Three pieces, designed so instrumented code pays close to nothing when
//! nobody is looking:
//!
//! - [`span`] — scoped wall-clock timers with parent/child nesting. Guards
//!   are `!Send`; each thread keeps its own span stack, so spans opened on
//!   data-parallel shard workers attribute to the right thread. When
//!   recording is off, [`span::span`] is a single relaxed atomic load.
//! - [`metrics`] — a process-global registry of named counters, gauges and
//!   histograms. Handles are `Arc`-backed atomics: registration takes a
//!   lock once per name, updates are lock-free and always on (an atomic add
//!   is cheaper than asking whether anyone cares).
//! - [`sink`] — recording control, ad-hoc events, one-time warnings, and an
//!   atomically written JSONL trace file (tmp + rename, like checkpoints)
//!   plus the schema validator the CI smoke job runs.
//!
//! # Example
//!
//! ```
//! st_obs::start_recording();
//! {
//!     let _outer = st_obs::span("work");
//!     let _inner = st_obs::span("work/step");
//!     st_obs::counter("work.items").inc();
//! }
//! let trace = st_obs::drain();
//! assert_eq!(trace.spans.len(), 2);
//! st_obs::stop_recording();
//! ```
//!
//! The JSONL schema (one object per line, discriminated by `"type"`) is
//! documented in DESIGN.md §10 and enforced by [`sink::validate_jsonl`].

pub mod metrics;
pub mod sink;
pub mod span;

pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram, MetricSnapshot};
pub use sink::{
    drain, event, recording, start_recording, stop_recording, validate_jsonl, warn_once,
    write_jsonl, Trace, TraceSummary,
};
pub use span::{span, timed, SpanGuard, SpanRecord};
