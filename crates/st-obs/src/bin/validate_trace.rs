//! CLI wrapper around the JSONL trace validator, for the CI smoke job:
//! `validate_trace <trace.jsonl> [...]` exits nonzero on the first file
//! that violates the schema or the span-balance invariant.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace <trace.jsonl> [...]");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        match st_obs::validate_jsonl(&text) {
            Ok(tally) => println!(
                "{path}: ok — {} spans ({} opened / {} closed), {} counters, {} gauges, {} histograms, {} events",
                tally.spans, tally.opened, tally.closed, tally.counters, tally.gauges,
                tally.histograms, tally.events
            ),
            Err(e) => {
                eprintln!("{path}: invalid trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
