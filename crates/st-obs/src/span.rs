//! Scoped wall-clock spans with parent/child nesting.
//!
//! A span is opened with [`span`] and closed when the returned guard drops.
//! Guards are `!Send`, so a span opens and closes on one thread and each
//! thread maintains its own parent stack: a span's parent is whatever span
//! was innermost on the *same* thread when it opened. Worker threads (the
//! data-parallel shard pool) therefore produce their own root spans rather
//! than corrupting the coordinator's stack.
//!
//! When recording is disabled (the default), [`span`] does one relaxed
//! atomic load and returns an inert guard — no clock read, no allocation.

use std::borrow::Cow;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global recording switch; flipped by `sink::start_recording`.
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);

/// Spans opened / closed since process start (cumulative, never reset).
/// `opened == closed` at quiescence is the balance invariant the CI smoke
/// job checks.
pub(crate) static OPENED: AtomicU64 = AtomicU64::new(0);
pub(crate) static CLOSED: AtomicU64 = AtomicU64::new(0);
/// Spans discarded because the in-memory buffer hit [`MAX_BUFFERED`].
pub(crate) static DROPPED: AtomicU64 = AtomicU64::new(0);

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Backstop against unbounded memory if a run records forever without
/// draining: beyond this many buffered spans, new ones are counted in
/// `DROPPED` instead of stored.
const MAX_BUFFERED: usize = 4_000_000;

thread_local! {
    /// Small sequential id for trace readability (std's `ThreadId` has no
    /// stable integer accessor).
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// Stack of currently open span ids on this thread.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Single monotonic clock origin so every span in a process shares a
/// timebase. Initialised on first use (i.e. by `start_recording`).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn finished() -> &'static Mutex<Vec<SpanRecord>> {
    static FINISHED: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    FINISHED.get_or_init(|| Mutex::new(Vec::new()))
}

/// A completed span, as buffered in memory and emitted to the JSONL sink.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique id (1-based).
    pub id: u64,
    /// Id of the innermost span open on the same thread at open time.
    pub parent: Option<u64>,
    /// Label, conventionally `area/operation` (e.g. `train/epoch`).
    pub name: Cow<'static, str>,
    /// Small sequential per-thread id (1 = first thread to open a span).
    pub thread: u64,
    /// Microseconds since the process trace epoch at open.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: Cow<'static, str>,
    thread: u64,
    started: Instant,
}

/// RAII guard returned by [`span`]; closes the span when dropped. `!Send`
/// by construction so open/close happen on one thread.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

/// Open a span. Nesting and timing are recorded only while recording is
/// enabled; otherwise this is one atomic load.
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            active: None,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let thread = THREAD_ID.with(|t| *t);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    OPENED.fetch_add(1, Ordering::Relaxed);
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name: name.into(),
            thread,
            started: Instant::now(),
        }),
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_us = active.started.elapsed().as_micros() as u64;
        let start_us = active
            .started
            .saturating_duration_since(epoch())
            .as_micros() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order within a thread, so the top of the
            // stack is this span; pop defensively by id in case a guard was
            // leaked via mem::forget.
            if let Some(pos) = s.iter().rposition(|&id| id == active.id) {
                s.truncate(pos);
            }
        });
        CLOSED.fetch_add(1, Ordering::Relaxed);
        let mut buf = finished().lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() >= MAX_BUFFERED {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.push(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            thread: active.thread,
            start_us,
            dur_us,
        });
    }
}

/// Run `f` under a span named `name`, returning its result and the elapsed
/// wall-clock seconds. The elapsed time is measured even when recording is
/// off, so callers can replace hand-rolled `Instant` timing with this.
pub fn timed<R>(name: impl Into<Cow<'static, str>>, f: impl FnOnce() -> R) -> (R, f64) {
    let started = Instant::now();
    let guard = span(name);
    let out = f();
    drop(guard);
    (out, started.elapsed().as_secs_f64())
}

/// Move all buffered finished spans out (used by `sink::drain`).
pub(crate) fn take_finished() -> Vec<SpanRecord> {
    std::mem::take(&mut *finished().lock().unwrap_or_else(|e| e.into_inner()))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state with sink tests; they only make
    // assertions that hold under concurrent recording (relative counts and
    // per-thread structure), not absolute global counters.

    #[test]
    fn disabled_spans_are_inert() {
        let before = OPENED.load(Ordering::Relaxed);
        if ENABLED.load(Ordering::Relaxed) {
            return; // another test is recording; skip
        }
        let g = span("should-not-record");
        drop(g);
        assert_eq!(OPENED.load(Ordering::Relaxed), before);
    }

    #[test]
    fn nesting_links_parents_within_thread() {
        crate::sink::start_recording();
        let (outer_id, inner) = {
            let outer = span("outer");
            let outer_id = outer.active.as_ref().map(|a| a.id);
            let inner = span("inner");
            let inner_parent = inner.active.as_ref().and_then(|a| a.parent);
            drop(inner);
            drop(outer);
            (outer_id, inner_parent)
        };
        assert!(outer_id.is_some());
        assert_eq!(inner, outer_id);
    }

    #[test]
    fn sibling_threads_get_independent_stacks() {
        crate::sink::start_recording();
        let _root = span("root");
        let child_parent = std::thread::scope(|s| {
            s.spawn(|| {
                let g = span("worker");
                let p = g.active.as_ref().and_then(|a| a.parent);
                drop(g);
                p
            })
            .join()
            .unwrap()
        });
        // The worker thread has no open spans of its own, so its span must
        // be a root — not a child of this thread's `root`.
        assert_eq!(child_parent, None);
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (value, secs) = timed("timed-block", || 21 * 2);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }
}
