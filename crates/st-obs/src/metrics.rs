//! Process-global metric registry: named counters, gauges and histograms.
//!
//! Registration ([`counter`] / [`gauge`] / [`histogram`]) takes a mutex
//! once per lookup; hot paths should resolve a handle once and reuse it.
//! Updates through a handle are lock-free atomics and are always live —
//! unlike spans, metrics do not check the recording flag, because an atomic
//! add costs less than the branch would save and keeping them hot means a
//! late `drain()` still sees everything.
//!
//! Gauge floats are stored as `f64` bit patterns in an `AtomicU64`; the
//! `max` update is a CAS loop over those bits (no float `==` anywhere).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of power-of-two histogram buckets. Bucket `i` holds values `v`
/// with `floor(log2(v)) + BUCKET_BIAS == i`, clamped into range.
const BUCKETS: usize = 64;
/// Shift so sub-1.0 values (e.g. seconds-denominated latencies) land in
/// distinct buckets: bucket 21 is `[1, 2)`, bucket 20 is `[0.5, 1)`, …
const BUCKET_BIAS: i32 = 21;

/// Monotonically increasing event count.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins float, with an atomic running-max variant.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (CAS loop on the f64 bits).
    pub fn max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= v {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistoInner {
    count: AtomicU64,
    /// Running sum as f64 bits (CAS-add; fine for the trace-level precision
    /// we need, and never contended in practice).
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Log₂-bucketed distribution with count/sum/min/max.
#[derive(Clone)]
pub struct Histogram(Arc<HistoInner>);

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    (v.log2().floor() as i32 + BUCKET_BIAS).clamp(0, BUCKETS as i32 - 1) as usize
}

fn cas_float(slot: &AtomicU64, v: f64, keep: impl Fn(f64, f64) -> f64) {
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let next = keep(f64::from_bits(cur), v);
        match slot.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: f64) {
        let h = &self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        cas_float(&h.sum_bits, v, |cur, v| cur + v);
        cas_float(&h.min_bits, v, f64::min);
        cas_float(&h.max_bits, v, f64::max);
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest observation (`NaN` before any `record`).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.0.min_bits.load(Ordering::Relaxed))
    }

    /// Largest observation (`NaN` before any `record`).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.0.max_bits.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn fresh_counter() -> Counter {
    Counter(Arc::new(AtomicU64::new(0)))
}

fn fresh_gauge() -> Gauge {
    Gauge(Arc::new(AtomicU64::new(f64::NEG_INFINITY.to_bits())))
}

fn fresh_histogram() -> Histogram {
    Histogram(Arc::new(HistoInner {
        count: AtomicU64::new(0),
        sum_bits: AtomicU64::new(0f64.to_bits()),
        min_bits: AtomicU64::new(f64::NAN.to_bits()),
        max_bits: AtomicU64::new(f64::NAN.to_bits()),
        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
    }))
}

/// Get or register the counter named `name`. If `name` is already
/// registered as a different metric kind, a detached (unexported) counter
/// is returned rather than panicking — the mismatch is a caller bug, but
/// observability must never take the process down.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(fresh_counter()))
    {
        Metric::Counter(c) => c.clone(),
        _ => fresh_counter(),
    }
}

/// Get or register the gauge named `name` (same mismatch policy as
/// [`counter`]). A gauge reads `-inf` until first set, and `snapshot`
/// skips never-set gauges.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(fresh_gauge()))
    {
        Metric::Gauge(g) => g.clone(),
        _ => fresh_gauge(),
    }
}

/// Get or register the histogram named `name` (same mismatch policy as
/// [`counter`]).
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(fresh_histogram()))
    {
        Metric::Histogram(h) => h.clone(),
        _ => fresh_histogram(),
    }
}

/// Point-in-time copy of one metric's state, as exported to JSONL.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// A counter and its value.
    Counter {
        /// Registered name.
        name: String,
        /// Value at snapshot time.
        value: u64,
    },
    /// A gauge and its value (set at least once).
    Gauge {
        /// Registered name.
        name: String,
        /// Value at snapshot time.
        value: f64,
    },
    /// A histogram summary (at least one observation).
    Histogram {
        /// Registered name.
        name: String,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
        /// Smallest observation.
        min: f64,
        /// Largest observation.
        max: f64,
    },
}

/// Snapshot every registered metric that has observed data. Counters are
/// included even at zero (their registration implies intent); never-set
/// gauges and empty histograms are skipped.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::with_capacity(reg.len());
    for (name, m) in reg.iter() {
        match m {
            Metric::Counter(c) => out.push(MetricSnapshot::Counter {
                name: name.clone(),
                value: c.get(),
            }),
            Metric::Gauge(g) => {
                // -inf bits are the never-set sentinel, and JSON cannot
                // represent non-finite numbers, so only finite gauges
                // export (a NaN grad-norm still shows up as an event from
                // the divergence detector, not here).
                let v = g.get();
                if v.is_finite() {
                    out.push(MetricSnapshot::Gauge {
                        name: name.clone(),
                        value: v,
                    });
                }
            }
            Metric::Histogram(h) => {
                if h.count() > 0 {
                    out.push(MetricSnapshot::Histogram {
                        name: name.clone(),
                        count: h.count(),
                        sum: h.sum(),
                        min: h.min(),
                        max: h.max(),
                    });
                }
            }
        }
    }
    out
}

/// Zero every registered metric in place (handles stay valid). Benchmarks
/// use this to isolate per-phase numbers.
pub fn reset() {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for m in reg.values() {
        match m {
            Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.0.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed),
            Metric::Histogram(h) => {
                h.0.count.store(0, Ordering::Relaxed);
                h.0.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
                h.0.min_bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
                h.0.max_bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
                for b in &h.0.buckets {
                    b.store(0, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let c = counter("test.metrics.counter_roundtrip");
        let base = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), base + 5);
        // Same name resolves to the same cell.
        assert_eq!(counter("test.metrics.counter_roundtrip").get(), base + 5);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = gauge("test.metrics.gauge_set_and_max");
        g.set(2.0);
        g.max(1.0);
        assert!((g.get() - 2.0).abs() < 1e-12);
        g.max(7.5);
        assert!((g.get() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_summary_fields() {
        let h = histogram("test.metrics.histogram_summary");
        h.record(1.0);
        h.record(4.0);
        h.record(0.25);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 5.25).abs() < 1e-12);
        assert!((h.min() - 0.25).abs() < 1e-12);
        assert!((h.max() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        counter("test.metrics.mismatch");
        let g = gauge("test.metrics.mismatch");
        g.set(1.0); // must not clobber or panic
        assert!(snapshot().iter().any(
            |m| matches!(m, MetricSnapshot::Counter { name, .. } if name == "test.metrics.mismatch")
        ));
    }

    #[test]
    fn bucket_index_monotone() {
        assert_eq!(bucket_index(-1.0), 0);
        assert!(bucket_index(0.5) < bucket_index(1.0));
        assert!(bucket_index(1.0) < bucket_index(2.5));
        assert_eq!(bucket_index(f64::INFINITY), 0); // non-finite clamps low
    }
}
