//! Statistical route-identity harness for the int8 inference path.
//!
//! Bitwise parity is out of scope for quantized kernels, so the int8 decode
//! is validated *statistically*: on a pinned Rivertown query set, the top-1
//! route match rate against the f32 oracle must reach the same gate the
//! decode benchmark enforces (0.98), with Jaccard overlap as a secondary
//! signal. To prove the harness has teeth, a planted regression — the slot
//! head quantized to 2 magnitude levels instead of 127 via the
//! `infer_session_int8_coarse` test hook — must *fail* the gate on the same
//! queries.

use st_baselines::{beam_decode, DeepStDecoder};
use st_bench::{accuracy, make_dataset, City, Scale};
use st_core::{DeepSt, InferPrecision, TripContext};
use st_eval::deepst_config;
use st_roadnet::{Point, Route, SegmentId};

const MATCH_GATE: f64 = 0.98;
const BEAM_WIDTH: usize = 8;

/// The coarse quantization level count of the planted regression.
const PLANTED_LEVELS: i32 = 2;

struct World {
    ds: st_sim::Dataset,
    model: DeepSt,
    queries: Vec<(SegmentId, Point, TripContext)>,
}

fn world() -> World {
    let scale = Scale::quick();
    let ds = make_dataset(City::Rivertown, &scale);
    let model = DeepSt::new(deepst_config(&ds, 24), scale.seed);
    let split = ds.default_split();
    let queries = split
        .test
        .iter()
        .take(16)
        .map(|&i| {
            let trip = &ds.trips[i];
            let slot = ds.slot_of(trip.start_time);
            let c = model.encode_traffic(ds.traffic_tensor(slot));
            let ctx = model.encode_context(ds.unit_coord(&trip.dest_coord), Some(c));
            (trip.origin_segment(), trip.dest_coord, ctx)
        })
        .collect();
    World { ds, model, queries }
}

fn decode_all<'a>(
    w: &'a World,
    mut mk: impl FnMut(&'a TripContext) -> DeepStDecoder<'a>,
) -> Vec<Route> {
    w.queries
        .iter()
        .map(|(start, dest, ctx)| {
            let mut dec = mk(ctx);
            beam_decode(
                &w.ds.net,
                &mut dec,
                *start,
                dest,
                BEAM_WIDTH,
                w.model.cfg.max_route_len,
            )
        })
        .collect()
}

#[test]
fn int8_decode_meets_statistical_gate_and_planted_regression_fails_it() {
    let w = world();
    let oracle = decode_all(&w, |ctx| DeepStDecoder::new(&w.model, ctx));

    // Production int8: must clear the gate.
    let int8 = decode_all(&w, |ctx| {
        DeepStDecoder::with_precision(&w.model, ctx, InferPrecision::Int8)
    });
    let match_rate = accuracy::route_match_rate(&oracle, &int8);
    let jaccard = accuracy::mean_jaccard(&oracle, &int8);
    assert!(
        match_rate >= MATCH_GATE,
        "int8 route match rate {match_rate:.4} below gate {MATCH_GATE} (jaccard {jaccard:.4})"
    );
    assert!(
        jaccard >= MATCH_GATE,
        "int8 mean Jaccard {jaccard:.4} below gate {MATCH_GATE}"
    );

    // Planted regression: a deliberately degraded quantizer must be caught.
    // If this ever passes the gate, the harness has lost its power to
    // detect real quantization regressions — tighten the query set.
    let coarse = decode_all(&w, |ctx| {
        DeepStDecoder::from_session(w.model.infer_session_int8_coarse(ctx, PLANTED_LEVELS))
    });
    let coarse_rate = accuracy::route_match_rate(&oracle, &coarse);
    assert!(
        coarse_rate < MATCH_GATE,
        "planted regression ({PLANTED_LEVELS}-level head quantization) was not detected: \
         match rate {coarse_rate:.4} >= {MATCH_GATE}"
    );
}
