//! Sharded-vs-dense DeepST parity oracles on Rivertown.
//!
//! The blocked embedding layout (DESIGN.md §16) promises to be
//! *unobservable* except through memory accounting. These oracles pin that
//! promise end-to-end on the real model and trainer, not just the isolated
//! layer: a DeepST whose segment table is split into many small row blocks
//! must match the single-block (dense) layout bit for bit on
//!
//! - the training-loss trajectory (including validation losses),
//! - every parameter after training (embedding blocks concatenated),
//! - greedy, beam, and int8-quantized decodes,
//! - and checkpoint save → resume, which must continue a streamed run
//!   bit-identically even when the resuming process seeds its RNG
//!   differently (the checkpoint carries the RNG state).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use st_baselines::{beam_decode, DeepStDecoder};
use st_bench::{make_dataset, City, Scale};
use st_core::{DeepSt, Example, InferPrecision, TrainConfig, Trainer, TripContext};
use st_eval::{build_examples, deepst_config};
use st_nn::Module;
use st_roadnet::{Point, Route, SegmentId};
use st_sim::Dataset;

/// Small blocks so Rivertown's table splits into many shards.
const BLOCK_ROWS: usize = 64;
const SEED: u64 = 7;

fn bits(data: &[f32]) -> Vec<u32> {
    data.iter().map(|v| v.to_bits()).collect()
}

/// Parameter fingerprint keyed by canonical name: embedding blocks
/// (`….b0`, `….b1`, …) concatenate — in block order, which is row order —
/// onto the same key as the dense single-block table, so the two layouts
/// produce directly comparable maps.
fn fingerprint(model: &DeepSt) -> BTreeMap<String, Vec<u32>> {
    let mut out: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for p in model.params() {
        let name = p.name();
        let canon = match name.rfind(".b") {
            Some(pos)
                if pos + 2 < name.len() && name[pos + 2..].chars().all(|c| c.is_ascii_digit()) =>
            {
                &name[..pos]
            }
            _ => name,
        };
        out.entry(canon.to_string())
            .or_default()
            .extend(bits(p.value().data()));
    }
    out
}

struct World {
    ds: Dataset,
    train: Vec<Example>,
    val: Vec<Example>,
    queries: Vec<(SegmentId, Point)>,
}

fn world() -> World {
    let mut scale = Scale::quick();
    scale.trips = 260;
    let ds = make_dataset(City::Rivertown, &scale);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train[..split.train.len().min(160)]);
    let val = build_examples(&ds, &split.val[..split.val.len().min(40)]);
    let queries = split
        .test
        .iter()
        .take(8)
        .map(|&i| {
            let trip = &ds.trips[i];
            (trip.origin_segment(), trip.dest_coord)
        })
        .collect();
    World {
        ds,
        train,
        val,
        queries,
    }
}

fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 32,
        shard_size: 32,
        patience: None,
        ..TrainConfig::default()
    }
}

fn trained(w: &World, block_rows: usize) -> (Trainer, Vec<u32>) {
    let cfg = deepst_config(&w.ds, 8).with_emb_block_rows(block_rows);
    let model = DeepSt::new(cfg, SEED);
    let mut trainer = Trainer::new(model, train_config());
    let mut rng = StdRng::seed_from_u64(33);
    let history = trainer.fit(&w.train, Some(&w.val), &mut rng);
    let mut loss_bits = Vec::new();
    for e in &history {
        loss_bits.push(e.train_loss.to_bits());
        loss_bits.push(e.val_loss.expect("val set supplied").to_bits());
    }
    (trainer, loss_bits)
}

fn decode_all(w: &World, model: &DeepSt, beam_width: usize, prec: InferPrecision) -> Vec<Route> {
    w.queries
        .iter()
        .map(|&(start, dest)| {
            let slot = w.ds.slot_of(0.0);
            let c = model.encode_traffic(w.ds.traffic_tensor(slot));
            let ctx: TripContext = model.encode_context(w.ds.unit_coord(&dest), Some(c));
            let mut dec = DeepStDecoder::with_precision(model, &ctx, prec);
            beam_decode(
                &w.ds.net,
                &mut dec,
                start,
                &dest,
                beam_width,
                model.cfg.max_route_len,
            )
        })
        .collect()
}

/// Tentpole oracle: the sharded table is bit-identical to the dense layout
/// through two full training epochs and every decode surface.
#[test]
fn sharded_deepst_matches_dense_bit_for_bit() {
    let w = world();
    let (dense, dense_losses) = trained(&w, usize::MAX);
    let (sharded, sharded_losses) = trained(&w, BLOCK_ROWS);

    assert!(
        dense.model.params().len() + 1 < sharded.model.params().len(),
        "sharded run did not actually shard the table"
    );
    assert_eq!(dense_losses, sharded_losses, "loss trajectories diverged");
    assert_eq!(
        fingerprint(&dense.model),
        fingerprint(&sharded.model),
        "trained parameters diverged"
    );

    // Greedy (beam=1), beam, and quantized decodes all agree.
    for (bw, prec) in [
        (1, InferPrecision::F32),
        (4, InferPrecision::F32),
        (4, InferPrecision::Int8),
    ] {
        assert_eq!(
            decode_all(&w, &dense.model, bw, prec),
            decode_all(&w, &sharded.model, bw, prec),
            "decode diverged at beam={bw}, {prec:?}"
        );
    }
}

/// Checkpoint oracle: a sharded streamed run interrupted after epoch 0 and
/// resumed in a fresh process (different RNG seed, params restored from the
/// checkpoint) finishes bit-identical to the uninterrupted run.
#[test]
fn sharded_stream_checkpoint_resume_is_bit_identical() {
    let w = world();
    let cfg = deepst_config(&w.ds, 8).with_emb_block_rows(BLOCK_ROWS);
    let dir = std::env::temp_dir().join(format!("st-sharded-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("resume.ckpt");

    let batches = |train: Vec<Example>| {
        move |_epoch: usize, _rng: &mut StdRng| {
            train
                .chunks(32)
                .map(<[Example]>::to_vec)
                .collect::<Vec<_>>()
        }
    };

    // Uninterrupted: two streamed epochs.
    let mut straight = Trainer::new(DeepSt::new(cfg.clone(), SEED), train_config());
    let mut rng = StdRng::seed_from_u64(33);
    let full = straight
        .fit_stream(batches(w.train.clone()), None, &mut rng)
        .unwrap();

    // Interrupted: one epoch, checkpoint, then resume with a *different*
    // RNG seed — the checkpoint must carry the training RNG state.
    let mut tc1 = train_config();
    tc1.epochs = 1;
    tc1.checkpoint_path = Some(ckpt.clone());
    let mut first = Trainer::new(DeepSt::new(cfg.clone(), SEED), tc1);
    let mut rng1 = StdRng::seed_from_u64(33);
    let part = first
        .fit_stream(batches(w.train.clone()), None, &mut rng1)
        .unwrap();
    assert_eq!(part.len(), 1);
    assert_eq!(part[0].train_loss.to_bits(), full[0].train_loss.to_bits());

    let mut tc2 = train_config();
    tc2.resume_from = Some(ckpt.clone());
    let mut resumed = Trainer::new(DeepSt::new(cfg, SEED + 999), tc2);
    let mut rng2 = StdRng::seed_from_u64(4242);
    let rest = resumed
        .fit_stream(batches(w.train.clone()), None, &mut rng2)
        .unwrap();

    assert_eq!(rest.len(), 1, "resume should run exactly the missing epoch");
    assert_eq!(rest[0].epoch, 1);
    assert_eq!(rest[0].train_loss.to_bits(), full[1].train_loss.to_bits());
    assert_eq!(
        fingerprint(&straight.model),
        fingerprint(&resumed.model),
        "resumed run diverged from the uninterrupted run"
    );

    std::fs::remove_dir_all(&dir).ok();
}
