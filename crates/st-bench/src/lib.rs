//! `st-bench`: experiment binaries regenerating every table and figure of
//! the paper's evaluation (§V), plus Criterion micro-benchmarks.
//!
//! Binaries (`cargo run --release -p st-bench --bin <name> [-- --quick|--full]`):
//!
//! | bin      | reproduces |
//! |----------|------------|
//! | `table3` | Table III — dataset statistics |
//! | `table4` | Table IV — overall recall@n / accuracy for all methods |
//! | `table5` | Table V — route recovery accuracy vs sampling rate |
//! | `table6` | Table VI — sensitivity to K (destination proxies) |
//! | `fig5`   | Fig. 5 — spatial distribution of GPS points |
//! | `fig6`   | Fig. 6 — travel distance / segment-count distributions |
//! | `fig7`   | Fig. 7 — accuracy vs travel distance per method |
//! | `fig8`   | Fig. 8 — training time vs training-set size |
//! | `run_all`| everything above, sharing one training run per city |
//!
//! Every bin prints a human-readable table/figure and writes JSON under
//! `results/`.

use st_eval::{
    build_examples, evaluate_methods, quantile_buckets, train_all_methods, MethodResult,
    SuiteConfig,
};
use st_sim::{CityPreset, Dataset, Split};

/// Which synthetic city to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum City {
    /// Chengdu-like compact city.
    Rivertown,
    /// Harbin-like larger city.
    Northport,
}

impl City {
    /// Both cities, in the paper's order.
    pub const ALL: [City; 2] = [City::Rivertown, City::Northport];

    /// The generation preset.
    pub fn preset(self) -> CityPreset {
        match self {
            City::Rivertown => CityPreset::rivertown(),
            City::Northport => CityPreset::northport(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            City::Rivertown => "Rivertown",
            City::Northport => "Northport",
        }
    }
}

/// Experiment scale, selectable on the command line.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Trips to simulate per city.
    pub trips: usize,
    /// DeepST / baseline training epochs.
    pub epochs: usize,
    /// Cap on evaluated test trips.
    pub max_eval: Option<usize>,
    /// Trajectories for the recovery experiment (Table V).
    pub recovery_trajs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Scale from CLI args: `--quick` (seconds), default (minutes),
    /// `--full` (tens of minutes, closest to the paper's protocol).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // A typo'd flag silently running the (much slower) default scale —
        // and overwriting result JSONs with it — is worse than an error.
        if let Some(bad) = args[1..].iter().find(|a| *a != "--quick" && *a != "--full") {
            eprintln!("error: unknown argument `{bad}` (expected --quick or --full)");
            std::process::exit(2);
        }
        if args.iter().any(|a| a == "--quick") {
            Self::quick()
        } else if args.iter().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::default()
        }
    }

    /// Seconds-scale smoke configuration.
    pub fn quick() -> Self {
        Self {
            trips: 700,
            epochs: 3,
            max_eval: Some(150),
            recovery_trajs: 60,
            seed: 7,
        }
    }

    /// The full configuration.
    pub fn full() -> Self {
        Self {
            trips: 10_000,
            epochs: 12,
            max_eval: Some(1500),
            recovery_trajs: 500,
            seed: 7,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            trips: 5000,
            epochs: 10,
            max_eval: Some(500),
            recovery_trajs: 150,
            seed: 7,
        }
    }
}

/// Output of one city's full prediction suite (Table IV + Fig. 7 inputs).
pub struct SuiteOutput {
    /// The simulated city dataset.
    pub dataset: Dataset,
    /// The split used.
    pub split: Split,
    /// Per-method results (overall + per bucket), paper column order.
    pub results: Vec<MethodResult>,
    /// The Fig. 7 distance buckets (km).
    pub buckets: Vec<(f64, f64)>,
    /// Wall-clock seconds spent training all methods.
    pub train_secs: f64,
    /// Test trips evaluated (after the scale's `max_eval` cap).
    pub evaluated: usize,
    /// Evaluated trips outside every distance bucket (scored overall but
    /// absent from the Fig. 7 view) — see [`st_eval::EvalSummary`].
    pub bucket_dropped: usize,
}

/// Generate a city's dataset at the given scale.
pub fn make_dataset(city: City, scale: &Scale) -> Dataset {
    Dataset::generate(&city.preset(), scale.trips, scale.seed)
}

/// Run the full most-likely-route-prediction suite for one city:
/// generate → split → train all six methods → evaluate.
pub fn run_prediction_suite(city: City, scale: &Scale) -> SuiteOutput {
    let dataset = make_dataset(city, scale);
    let split = dataset.default_split();
    let train = build_examples(&dataset, &split.train);
    let val = build_examples(&dataset, &split.val);
    let cfg = SuiteConfig {
        seed: scale.seed,
        deepst_epochs: scale.epochs,
        rnn_epochs: scale.epochs,
        max_eval: scale.max_eval,
        ..SuiteConfig::default()
    };
    let val_opt = (!val.is_empty()).then_some(val.as_slice());
    let (methods, train_secs) = st_obs::timed("bench/train_all_methods", || {
        train_all_methods(&dataset, &train, val_opt, &cfg)
    });
    let buckets = quantile_buckets(&dataset, &split.test, 8);
    let summary = evaluate_methods(&dataset, &methods, &split.test, &buckets, scale.max_eval);
    SuiteOutput {
        dataset,
        split,
        results: summary.results,
        buckets,
        train_secs,
        evaluated: summary.evaluated,
        bucket_dropped: summary.bucket_dropped,
    }
}

/// Host/toolchain metadata embedded in every `BENCH_*.json` report, so a
/// recorded number can never be compared against a run from a different
/// machine class without noticing: logical core count, whether the AVX2+FMA
/// kernel builds are active (false on non-x86 hosts and under
/// `ST_TENSOR_FORCE_SCALAR=1`), and the rustc that built the benchmark.
pub fn host_meta() -> serde_json::Value {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(0);
    let rustc =
        std::process::Command::new(std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into()))
            .arg("--version")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown".into());
    serde_json::json!({
        "logical_cores": cores,
        "simd_avx2_fma": st_tensor::simd_active(),
        "arch": std::env::consts::ARCH,
        "os": std::env::consts::OS,
        "rustc": rustc,
    })
}

/// Route-level accuracy metrics for validating reduced-precision decoding
/// against the full-precision oracle. Quantized kernels are *not* expected
/// to be bitwise-faithful, so the gate is statistical: the fraction of
/// queries whose decoded route matches the oracle exactly, plus the mean
/// Jaccard overlap of route segments for a softer view of near-misses.
pub mod accuracy {
    use st_roadnet::Route;

    /// Fraction of query pairs whose routes match exactly (top-1 route
    /// match rate). Panics if the slices differ in length.
    pub fn route_match_rate(oracle: &[Route], candidate: &[Route]) -> f64 {
        assert_eq!(oracle.len(), candidate.len(), "route sets must pair up");
        assert!(!oracle.is_empty(), "need at least one route");
        let hits = oracle.iter().zip(candidate).filter(|(a, b)| a == b).count();
        hits as f64 / oracle.len() as f64
    }

    /// Mean Jaccard overlap `|A ∩ B| / |A ∪ B|` of the segment *sets* of
    /// each route pair — 1.0 iff every pair covers exactly the same
    /// segments. Less brittle than exact match when a near-tie reorders an
    /// otherwise-identical detour.
    pub fn mean_jaccard(oracle: &[Route], candidate: &[Route]) -> f64 {
        assert_eq!(oracle.len(), candidate.len(), "route sets must pair up");
        assert!(!oracle.is_empty(), "need at least one route");
        let total: f64 = oracle
            .iter()
            .zip(candidate)
            .map(|(a, b)| {
                let sa: std::collections::BTreeSet<_> = a.iter().collect();
                let sb: std::collections::BTreeSet<_> = b.iter().collect();
                let inter = sa.intersection(&sb).count();
                let union = sa.union(&sb).count();
                if union == 0 {
                    1.0
                } else {
                    inter as f64 / union as f64
                }
            })
            .sum();
        total / oracle.len() as f64
    }
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). The kernel's high-water mark is monotonic for the
/// process lifetime, so a benchmark sweeping scales must run them in
/// ascending order for per-scale readings to be meaningful. Returns `None`
/// off Linux or if the field is missing.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// The `results/` output directory (created on demand).
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(
        std::env::var("DEEPST_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
    );
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::quick().trips < Scale::default().trips);
        assert!(Scale::default().trips < Scale::full().trips);
    }

    #[test]
    fn host_meta_reports_required_fields() {
        let m = host_meta();
        assert!(m
            .get("logical_cores")
            .and_then(|v| v.as_f64())
            .is_some_and(|n| n >= 1.0));
        assert!(matches!(
            m.get("simd_avx2_fma"),
            Some(serde_json::Value::Bool(_))
        ));
        assert!(m.get("rustc").and_then(|v| v.as_str()).is_some());
        assert!(m.get("arch").and_then(|v| v.as_str()).is_some());
        assert!(m.get("os").and_then(|v| v.as_str()).is_some());
    }

    #[test]
    fn accuracy_metrics_behave() {
        let a: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3, 4]];
        let same = a.clone();
        assert_eq!(accuracy::route_match_rate(&a, &same), 1.0);
        assert_eq!(accuracy::mean_jaccard(&a, &same), 1.0);
        let b: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3, 5]];
        assert_eq!(accuracy::route_match_rate(&a, &b), 0.5);
        // Second pair overlaps on {3} out of {3,4,5}: jaccard 1/3.
        let j = accuracy::mean_jaccard(&a, &b);
        assert!((j - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn city_presets_differ() {
        assert_ne!(City::Rivertown.name(), City::Northport.name());
        let r = City::Rivertown.preset();
        let n = City::Northport.preset();
        assert!(n.grid.nx * n.grid.ny > r.grid.nx * r.grid.ny);
    }
}
