//! `st-bench`: experiment binaries regenerating every table and figure of
//! the paper's evaluation (§V), plus Criterion micro-benchmarks.
//!
//! Binaries (`cargo run --release -p st-bench --bin <name> [-- --quick|--full]`):
//!
//! | bin      | reproduces |
//! |----------|------------|
//! | `table3` | Table III — dataset statistics |
//! | `table4` | Table IV — overall recall@n / accuracy for all methods |
//! | `table5` | Table V — route recovery accuracy vs sampling rate |
//! | `table6` | Table VI — sensitivity to K (destination proxies) |
//! | `fig5`   | Fig. 5 — spatial distribution of GPS points |
//! | `fig6`   | Fig. 6 — travel distance / segment-count distributions |
//! | `fig7`   | Fig. 7 — accuracy vs travel distance per method |
//! | `fig8`   | Fig. 8 — training time vs training-set size |
//! | `run_all`| everything above, sharing one training run per city |
//!
//! Every bin prints a human-readable table/figure and writes JSON under
//! `results/`.

use st_eval::{
    build_examples, evaluate_methods, quantile_buckets, train_all_methods, MethodResult,
    SuiteConfig,
};
use st_sim::{CityPreset, Dataset, Split};

/// Which synthetic city to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum City {
    /// Chengdu-like compact city.
    Rivertown,
    /// Harbin-like larger city.
    Northport,
}

impl City {
    /// Both cities, in the paper's order.
    pub const ALL: [City; 2] = [City::Rivertown, City::Northport];

    /// The generation preset.
    pub fn preset(self) -> CityPreset {
        match self {
            City::Rivertown => CityPreset::rivertown(),
            City::Northport => CityPreset::northport(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            City::Rivertown => "Rivertown",
            City::Northport => "Northport",
        }
    }
}

/// Experiment scale, selectable on the command line.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Trips to simulate per city.
    pub trips: usize,
    /// DeepST / baseline training epochs.
    pub epochs: usize,
    /// Cap on evaluated test trips.
    pub max_eval: Option<usize>,
    /// Trajectories for the recovery experiment (Table V).
    pub recovery_trajs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Scale from CLI args: `--quick` (seconds), default (minutes),
    /// `--full` (tens of minutes, closest to the paper's protocol).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // A typo'd flag silently running the (much slower) default scale —
        // and overwriting result JSONs with it — is worse than an error.
        if let Some(bad) = args[1..].iter().find(|a| *a != "--quick" && *a != "--full") {
            eprintln!("error: unknown argument `{bad}` (expected --quick or --full)");
            std::process::exit(2);
        }
        if args.iter().any(|a| a == "--quick") {
            Self::quick()
        } else if args.iter().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::default()
        }
    }

    /// Seconds-scale smoke configuration.
    pub fn quick() -> Self {
        Self {
            trips: 700,
            epochs: 3,
            max_eval: Some(150),
            recovery_trajs: 60,
            seed: 7,
        }
    }

    /// The full configuration.
    pub fn full() -> Self {
        Self {
            trips: 10_000,
            epochs: 12,
            max_eval: Some(1500),
            recovery_trajs: 500,
            seed: 7,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            trips: 5000,
            epochs: 10,
            max_eval: Some(500),
            recovery_trajs: 150,
            seed: 7,
        }
    }
}

/// Output of one city's full prediction suite (Table IV + Fig. 7 inputs).
pub struct SuiteOutput {
    /// The simulated city dataset.
    pub dataset: Dataset,
    /// The split used.
    pub split: Split,
    /// Per-method results (overall + per bucket), paper column order.
    pub results: Vec<MethodResult>,
    /// The Fig. 7 distance buckets (km).
    pub buckets: Vec<(f64, f64)>,
    /// Wall-clock seconds spent training all methods.
    pub train_secs: f64,
    /// Test trips evaluated (after the scale's `max_eval` cap).
    pub evaluated: usize,
    /// Evaluated trips outside every distance bucket (scored overall but
    /// absent from the Fig. 7 view) — see [`st_eval::EvalSummary`].
    pub bucket_dropped: usize,
}

/// Generate a city's dataset at the given scale.
pub fn make_dataset(city: City, scale: &Scale) -> Dataset {
    Dataset::generate(&city.preset(), scale.trips, scale.seed)
}

/// Run the full most-likely-route-prediction suite for one city:
/// generate → split → train all six methods → evaluate.
pub fn run_prediction_suite(city: City, scale: &Scale) -> SuiteOutput {
    let dataset = make_dataset(city, scale);
    let split = dataset.default_split();
    let train = build_examples(&dataset, &split.train);
    let val = build_examples(&dataset, &split.val);
    let cfg = SuiteConfig {
        seed: scale.seed,
        deepst_epochs: scale.epochs,
        rnn_epochs: scale.epochs,
        max_eval: scale.max_eval,
        ..SuiteConfig::default()
    };
    let val_opt = (!val.is_empty()).then_some(val.as_slice());
    let (methods, train_secs) = st_obs::timed("bench/train_all_methods", || {
        train_all_methods(&dataset, &train, val_opt, &cfg)
    });
    let buckets = quantile_buckets(&dataset, &split.test, 8);
    let summary = evaluate_methods(&dataset, &methods, &split.test, &buckets, scale.max_eval);
    SuiteOutput {
        dataset,
        split,
        results: summary.results,
        buckets,
        train_secs,
        evaluated: summary.evaluated,
        bucket_dropped: summary.bucket_dropped,
    }
}

/// The `results/` output directory (created on demand).
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(
        std::env::var("DEEPST_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
    );
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::quick().trips < Scale::default().trips);
        assert!(Scale::default().trips < Scale::full().trips);
    }

    #[test]
    fn city_presets_differ() {
        assert_ne!(City::Rivertown.name(), City::Northport.name());
        let r = City::Rivertown.preset();
        let n = City::Northport.preset();
        assert!(n.grid.nx * n.grid.ny > r.grid.nx * r.grid.ny);
    }
}
