//! Ablation studies of the reproduction's own design choices (beyond the
//! paper's Table VI):
//!
//! 1. **Beam width** of the most-likely-route decoder (1 = greedy … 16).
//! 2. **Gumbel-Softmax temperature** of the π relaxation (§IV-D).
//! 3. **Termination scale** of `f_s` (§IV-A; the paper leaves units open).
//!
//! ```bash
//! cargo run --release -p st-bench --bin ablate [-- --quick|--full]
//! ```

use std::process::ExitCode;

use st_baselines::{beam_decode, DeepStDecoder, DeepStPredictor, PredictQuery, Predictor};
use st_bench::{make_dataset, results_dir, City, Scale};
use st_core::DeepSt;
use st_eval::metrics::MetricSums;
use st_eval::report::{format_table, write_json};
use st_eval::{build_examples, deepst_config, train_deepst, SuiteConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("[ablate] error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let scale = Scale::from_args();
    let city = City::Rivertown;
    eprintln!(
        "[ablate] generating {} ({} trips)",
        city.name(),
        scale.trips
    );
    let ds = make_dataset(city, &scale);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = SuiteConfig {
        seed: scale.seed,
        deepst_epochs: scale.epochs,
        ..SuiteConfig::default()
    };
    let take = scale.max_eval.unwrap_or(usize::MAX).min(split.test.len());

    // ---- 1. beam width sweep on one trained model ----
    eprintln!("[ablate] training the shared model...");
    let model = train_deepst(&ds, &train, None, &cfg, true);
    let mut rows = Vec::new();
    let mut beam_json = Vec::new();
    for width in [1usize, 2, 4, 8, 16] {
        let mut sums = MetricSums::default();
        let (_, secs) = st_obs::timed("bench/beam_sweep", || {
            for &i in split.test.iter().take(take) {
                let trip = &ds.trips[i];
                let slot = ds.slot_of(trip.start_time);
                let c = model.encode_traffic(ds.traffic_tensor(slot));
                let ctx = model.encode_context(ds.unit_coord(&trip.dest_coord), Some(c));
                let mut dec = DeepStDecoder::new(&model, &ctx);
                let route = beam_decode(
                    &ds.net,
                    &mut dec,
                    trip.origin_segment(),
                    &trip.dest_coord,
                    width,
                    model.cfg.max_route_len,
                );
                sums.add(&trip.route, &route);
            }
        });
        eprintln!(
            "[ablate] beam {width}: acc {:.3} ({secs:.0}s)",
            sums.accuracy()
        );
        rows.push(vec![
            format!("{width}"),
            format!("{:.3}", sums.recall()),
            format!("{:.3}", sums.accuracy()),
            format!("{:.1}", secs),
        ]);
        beam_json.push(serde_json::json!({
            "width": width, "recall": sums.recall(), "accuracy": sums.accuracy(), "secs": secs
        }));
    }
    println!("\nAblation — beam width (DeepST, {}):", city.name());
    println!(
        "{}",
        format_table(&["beam", "recall@n", "accuracy", "secs"], &rows)
    );

    // ---- 2. Gumbel temperature sweep (retrains) ----
    let mut rows = Vec::new();
    let mut temp_json = Vec::new();
    for temp in [0.3f32, 0.7, 1.5] {
        let mut mcfg = deepst_config(&ds, cfg.k_proxies);
        mcfg.gumbel_temp = temp;
        let model = DeepSt::new(mcfg, cfg.seed);
        let tc = st_core::TrainConfig {
            epochs: cfg.deepst_epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            grad_clip: 5.0,
            patience: None,
            ..st_core::TrainConfig::default()
        };
        let mut trainer = st_core::Trainer::new(model, tc);
        let mut rng = st_tensor::init::rng(cfg.seed);
        trainer.fit(&train, None, &mut rng);
        let predictor = DeepStPredictor::new(trainer.model);
        let mut sums = MetricSums::default();
        for &i in split.test.iter().take(take) {
            let trip = &ds.trips[i];
            let slot = ds.slot_of(trip.start_time);
            let q = PredictQuery {
                start: trip.origin_segment(),
                dest_coord: trip.dest_coord,
                dest_norm: ds.unit_coord(&trip.dest_coord),
                dest_segment: trip.dest_segment(),
                traffic: ds.traffic_tensor(slot),
                slot_id: slot,
            };
            sums.add(&trip.route, &predictor.predict(&ds.net, &q));
        }
        eprintln!("[ablate] gumbel τ={temp}: acc {:.3}", sums.accuracy());
        rows.push(vec![
            format!("{temp}"),
            format!("{:.3}", sums.recall()),
            format!("{:.3}", sums.accuracy()),
        ]);
        temp_json.push(
            serde_json::json!({"temp": temp, "recall": sums.recall(), "accuracy": sums.accuracy()}),
        );
    }
    println!("\nAblation — Gumbel-Softmax temperature:");
    println!("{}", format_table(&["τ", "recall@n", "accuracy"], &rows));

    // ---- 3. termination scale sweep (decode-time only) ----
    let mut rows = Vec::new();
    let mut term_json = Vec::new();
    for scale_m in [75.0f64, 150.0, 300.0] {
        // The shared decoder constant is fixed; emulate by scaling the
        // destination distance in a wrapper model-config clone.
        let mut mcfg = model.cfg.clone();
        mcfg.term_scale_m = scale_m;
        // Re-wrap the trained weights: termination scale only affects
        // prediction, so we can reuse the trained parameters via state io.
        let fresh = DeepSt::new(mcfg, cfg.seed);
        use st_nn::Module;
        fresh
            .load_state(&model.state())
            .map_err(|e| format!("transplanting trained weights (term scale {scale_m}m): {e}"))?;
        let mut sums = MetricSums::default();
        for &i in split.test.iter().take(take) {
            let trip = &ds.trips[i];
            let slot = ds.slot_of(trip.start_time);
            let c = fresh.encode_traffic(ds.traffic_tensor(slot));
            let ctx = fresh.encode_context(ds.unit_coord(&trip.dest_coord), Some(c));
            let route =
                fresh.predict_route(&ds.net, trip.origin_segment(), &trip.dest_coord, &ctx, None);
            sums.add(&trip.route, &route);
        }
        eprintln!(
            "[ablate] term scale {scale_m}m (greedy Algorithm 2): acc {:.3}",
            sums.accuracy()
        );
        rows.push(vec![
            format!("{scale_m}"),
            format!("{:.3}", sums.recall()),
            format!("{:.3}", sums.accuracy()),
        ]);
        term_json.push(serde_json::json!({"scale_m": scale_m, "recall": sums.recall(), "accuracy": sums.accuracy()}));
    }
    println!("\nAblation — termination scale (greedy Algorithm 2 decoding):");
    println!(
        "{}",
        format_table(&["scale (m)", "recall@n", "accuracy"], &rows)
    );

    let path = results_dir().join("ablate.json");
    write_json(
        &path,
        &serde_json::json!({"beam": beam_json, "gumbel": temp_json, "term_scale": term_json}),
    )
    .map_err(|e| format!("failed to write {}: {e}", path.display()))?;
    eprintln!("[ablate] wrote {}", path.display());
    Ok(())
}
