//! Megacity scale-out benchmark: memory ceiling vs. segment count.
//!
//! Sweeps district-structured [`Megacity`] worlds in **ascending** size
//! order (`VmHWM` is monotonic, so each reading is "peak so far" and the
//! largest scale's reading is the true process peak). Per scale:
//!
//! - **generate** — build the world, then *stream* trips straight into an
//!   on-disk [`TripStore`]; no `Vec<Trip>` of the whole dataset ever
//!   exists. The observed-traffic tensors are accumulated incrementally by
//!   [`SlotObs`] during the same pass.
//! - **train** — one bounded mini-epoch of DeepST over
//!   [`Trainer::train_epoch_stream`], reading minibatches back from the
//!   store. The embedding table is sharded ([`BLOCK_ROWS`] rows per
//!   block); gradient blocks materialize lazily, so segments no trip
//!   touched cost zero gradient bytes.
//! - **decode** — beam decode a handful of held-back queries end-to-end.
//!
//! The headline gate (ISSUE 10): at the largest scale, total
//! embedding-resident bytes (value table + materialized gradient blocks)
//! must be **strictly less** than what the dense layout pays (value table +
//! full-table gradient the moment any row is touched). The run aborts if
//! the gate fails.
//!
//! Writes `results/BENCH_scale.json` (atomically: tmp + fsync + rename).
//!
//! Usage: `cargo run --release -p st-bench --bin bench_scale [-- --quick|--full]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

use st_baselines::{beam_decode, DeepStDecoder};
use st_bench::{host_meta, peak_rss_bytes, results_dir};
use st_core::{DeepSt, DeepStConfig, TrainConfig, Trainer};
use st_eval::report::write_json_atomic;
use st_sim::{Megacity, MegacityConfig, Trip, TripStore, TripStoreWriter};

const SEED: u64 = 42;
/// Rows per embedding shard at megacity scale: about half a district at
/// 50k segments, so a minibatch's gradient working set is measured in
/// districts touched, not in whole-table bytes.
const BLOCK_ROWS: usize = 256;
/// Trips written to each scale's store.
const TRIPS_FULL: usize = 800;
const TRIPS_QUICK: usize = 300;
/// Mini-epoch bound: minibatches read back from the store.
const BATCH_SIZE: usize = 32;
const MAX_BATCHES: usize = 16;
/// Beam-decoded held-back queries per scale.
const DECODE_QUERIES: usize = 6;
const BEAM_WIDTH: usize = 4;

fn parse_scales() -> (Vec<usize>, usize) {
    let mut quick = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            other => {
                eprintln!("error: unknown argument `{other}` (expected --quick or --full)");
                std::process::exit(2);
            }
        }
    }
    if quick {
        (vec![1_000, 10_000], TRIPS_QUICK)
    } else {
        (vec![1_000, 10_000, 50_000], TRIPS_FULL)
    }
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// One scale of the sweep. Returns the per-scale report plus the
/// `(resident, dense)` byte pair the final gate asserts on.
fn run_scale(
    target_segments: usize,
    n_trips: usize,
    store_root: &std::path::Path,
) -> (serde_json::Value, usize, usize) {
    let t0 = Instant::now();
    let mcfg = MegacityConfig::with_target_segments(target_segments);
    let mega = Megacity::generate(&mcfg, SEED);
    let segments = mega.net.num_segments();
    eprintln!(
        "[scale {target_segments}] generated {} segments, {} districts",
        segments,
        mcfg.num_districts()
    );

    let store_dir = store_root.join(format!("mega-{target_segments}"));
    std::fs::create_dir_all(&store_dir).expect("create store dir");
    let mut writer = TripStoreWriter::create(&store_dir, 256).expect("create trip store");
    let summary = mega
        .stream_trips(n_trips, SEED, &mut writer)
        .expect("stream trips");
    writer.finish().expect("finish trip store");
    let gen_secs = t0.elapsed().as_secs_f64();
    let tensors = summary.slot_obs.tensors(mega.max_speed);
    let store = TripStore::open(&store_dir).expect("open trip store");
    eprintln!(
        "[scale {target_segments}] {} trips in {} shards ({} intra, {} inter) in {gen_secs:.1}s",
        store.len(),
        store.num_shards(),
        summary.intra_district,
        summary.inter_district
    );

    // Train one bounded mini-epoch, streaming minibatches from disk.
    let cfg = DeepStConfig::new(
        segments,
        mega.net.max_out_degree(),
        mega.grid.height,
        mega.grid.width,
    )
    .with_k(8)
    .with_emb_block_rows(BLOCK_ROWS);
    let tc = TrainConfig {
        epochs: 1,
        batch_size: BATCH_SIZE,
        shard_size: BATCH_SIZE,
        patience: None,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(DeepSt::new(cfg, SEED), tc);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut examples = 0usize;
    let t1 = Instant::now();
    let mut batches = store
        .batches(BATCH_SIZE)
        .take(MAX_BATCHES)
        .map(|b| b.expect("trip store read"))
        .map(|trips: Vec<Trip>| {
            let exs: Vec<_> = trips
                .iter()
                .filter_map(|t| mega.example(t, &tensors))
                .collect();
            examples += exs.len();
            exs
        });

    // First optimizer step alone, to snapshot per-step gradient residency:
    // this is the working set a steady-state training step keeps live,
    // before the epoch-long union of touched blocks accumulates.
    let first = batches.next().expect("store yielded no batches");
    let first_n = first.len();
    let loss_first = trainer.train_epoch_stream(std::iter::once(first), &mut rng);
    let mem_step = trainer.model.emb_memory();

    let n_batches = store.len().div_ceil(BATCH_SIZE).min(MAX_BATCHES);
    let loss = if n_batches <= 1 {
        loss_first
    } else {
        let loss_rest = trainer.train_epoch_stream(batches, &mut rng);
        let rest_n = examples - first_n;
        (loss_first * first_n as f32 + loss_rest * rest_n as f32) / examples as f32
    };
    let train_secs = t1.elapsed().as_secs_f64();
    let eps = examples as f64 / train_secs.max(1e-9);
    let mem = trainer.model.emb_memory();
    eprintln!(
        "[scale {target_segments}] loss {loss:.3}, {examples} examples in {train_secs:.1}s \
         ({eps:.0} ex/s); emb grad-resident blocks: {}/{} after step 1, {}/{} after epoch",
        mem_step.resident_blocks, mem_step.num_blocks, mem.resident_blocks, mem.num_blocks
    );

    // Beam decode held-back queries (the tail of the store).
    let t2 = Instant::now();
    let queries: Vec<Trip> = store
        .iter()
        .map(|r| r.expect("trip store read"))
        .skip(store.len().saturating_sub(DECODE_QUERIES))
        .collect();
    let mut decoded = 0usize;
    for trip in &queries {
        let slot = mega.slot_of(trip.start_time, tensors.len());
        let c = trainer.model.encode_traffic(&tensors[slot]);
        let ctx = trainer
            .model
            .encode_context(mega.unit_coord(&trip.dest_coord), Some(c));
        let mut dec = DeepStDecoder::new(&trainer.model, &ctx);
        let route = beam_decode(
            &mega.net,
            &mut dec,
            trip.route[0],
            &trip.dest_coord,
            BEAM_WIDTH,
            trainer.model.cfg.max_route_len,
        );
        assert!(mega.net.is_valid_route(&route), "decoded an invalid route");
        decoded += 1;
    }
    let decode_secs = t2.elapsed().as_secs_f64();

    // Memory accounting: sharded resident vs. what dense would pay. The
    // dense layout materializes the full-table gradient on the first step;
    // the sharded layout holds the value table plus only the gradient
    // blocks the step actually touched.
    let resident_bytes = mem_step.table_bytes + mem_step.resident_grad_bytes;
    let dense_bytes = 2 * mem_step.table_bytes;
    let peak = peak_rss_bytes();
    eprintln!(
        "[scale {target_segments}] emb resident {resident_bytes}B vs dense {dense_bytes}B \
         at step 1, peak RSS {:.1} MiB",
        peak.unwrap_or(0) as f64 / (1024.0 * 1024.0)
    );

    let report = json!({
        "target_segments": target_segments,
        "segments": segments,
        "districts": mcfg.num_districts(),
        "trips": store.len(),
        "store_shards": store.num_shards(),
        "store_bytes": dir_bytes(&store_dir),
        "intra_district_trips": summary.intra_district,
        "inter_district_trips": summary.inter_district,
        "generate_secs": gen_secs,
        "train": {
            "examples": examples,
            "secs": train_secs,
            "examples_per_sec": eps,
            "loss": loss,
        },
        "decode": {
            "queries": decoded,
            "secs": decode_secs,
            "beam_width": BEAM_WIDTH,
        },
        "embedding": {
            "block_rows": BLOCK_ROWS,
            "num_blocks": mem.num_blocks,
            "table_bytes": mem.table_bytes,
            "step1_grad_resident_blocks": mem_step.resident_blocks,
            "step1_grad_resident_bytes": mem_step.resident_grad_bytes,
            "epoch_grad_resident_blocks": mem.resident_blocks,
            "epoch_grad_resident_bytes": mem.resident_grad_bytes,
            "resident_bytes": resident_bytes,
            "dense_bytes": dense_bytes,
            "savings_ratio": resident_bytes as f64 / dense_bytes as f64,
        },
        "peak_rss_bytes": peak,
    });
    (report, resident_bytes, dense_bytes)
}

fn main() {
    let (scales, n_trips) = parse_scales();
    let store_root = std::env::temp_dir().join(format!("st-bench-scale-{}", std::process::id()));
    std::fs::create_dir_all(&store_root).expect("create store root");

    // Ascending order: VmHWM is a process-lifetime high-water mark.
    let mut runs = Vec::new();
    let (mut resident, mut dense) = (0usize, 0usize);
    for &n in &scales {
        let (report, r, d) = run_scale(n, n_trips, &store_root);
        runs.push(report);
        (resident, dense) = (r, d);
    }
    std::fs::remove_dir_all(&store_root).ok();

    // The ISSUE 10 gate, asserted at the 50k scale: the sharded embedding's
    // per-step residency must be strictly cheaper than the dense layout.
    // Smaller cities fit in a handful of blocks, where a single citywide
    // minibatch can legitimately touch everything, so --quick only reports.
    let largest = *scales.last().expect("at least one scale");
    if largest >= 50_000 {
        assert!(
            resident < dense,
            "scale gate failed: resident {resident}B >= dense {dense}B at {largest} segments"
        );
    }

    let report = json!({
        "bench": "scale",
        "seed": SEED,
        "host": host_meta(),
        "scales": runs,
        "gate": {
            "largest_scale": largest,
            "largest_scale_resident_bytes": resident,
            "largest_scale_dense_bytes": dense,
            "resident_lt_dense": resident < dense,
            "asserted": largest >= 50_000,
        },
    });
    let path = results_dir().join("BENCH_scale.json");
    write_json_atomic(&path, &report).expect("write BENCH_scale.json");
    eprintln!("wrote {}", path.display());
}
