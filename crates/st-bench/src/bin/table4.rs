//! Table IV: overall performance — recall@n and accuracy of DeepST,
//! DeepST-C, CSSRNN, RNN, MMI and WSP on both cities.

use st_bench::{results_dir, run_prediction_suite, City, Scale};
use st_eval::report::{format_table, write_json};

fn main() {
    let scale = Scale::from_args();
    let mut json = serde_json::Map::new();
    for city in City::ALL {
        eprintln!(
            "[table4] running {} (trips={}, epochs={})",
            city.name(),
            scale.trips,
            scale.epochs
        );
        let out = run_prediction_suite(city, &scale);
        let mut rows = Vec::new();
        for r in &out.results {
            rows.push(vec![
                r.name.clone(),
                format!("{:.3}", r.overall.recall()),
                format!("{:.3}", r.overall.accuracy()),
            ]);
        }
        println!(
            "\nTable IV — {} ({} test trips evaluated)",
            city.name(),
            out.results[0].overall.count
        );
        println!(
            "{}",
            format_table(&["Method", "recall@n", "accuracy"], &rows)
        );
        json.insert(
            city.name().to_string(),
            serde_json::to_value(&out.results).unwrap(),
        );
    }
    let path = results_dir().join("table4.json");
    write_json(&path, &json).expect("write results");
    eprintln!("[table4] wrote {}", path.display());
}
