//! Table III: dataset statistics — min/max/mean travel distance (km) and
//! number of road segments per trip, for both cities.

use std::process::ExitCode;

use st_bench::{make_dataset, results_dir, City, Scale};
use st_eval::report::{format_table, write_json};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("[table3] error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    let mut json = serde_json::Map::new();
    for city in City::ALL {
        eprintln!(
            "[table3] generating {} ({} trips)",
            city.name(),
            scale.trips
        );
        let ds = make_dataset(city, &scale);
        let st = ds.trip_stats();
        rows.push(vec![
            city.name().to_string(),
            format!("{}", st.n_trips),
            format!("{}", ds.net.num_segments()),
            format!("{:.1}", st.min_km),
            format!("{:.1}", st.max_km),
            format!("{:.1}", st.mean_km),
            format!("{}", st.min_segments),
            format!("{}", st.max_segments),
            format!("{:.0}", st.mean_segments),
        ]);
        json.insert(
            city.name().into(),
            serde_json::to_value(&st)
                .map_err(|e| format!("serializing stats for {}: {e}", city.name()))?,
        );
    }
    println!("\nTable III — dataset statistics");
    println!(
        "{}",
        format_table(
            &[
                "City",
                "#trips",
                "#road segs",
                "min km",
                "max km",
                "mean km",
                "min segs",
                "max segs",
                "mean segs"
            ],
            &rows
        )
    );
    let path = results_dir().join("table3.json");
    write_json(&path, &json).map_err(|e| format!("failed to write {}: {e}", path.display()))?;
    eprintln!("[table3] wrote {}", path.display());
    Ok(())
}
