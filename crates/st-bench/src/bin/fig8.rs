//! Fig. 8: DeepST training time versus training-set size (the paper shows a
//! linear relationship). Trains on 20/40/60/80/100% of the train split and
//! reports wall-clock seconds per epoch.

use st_bench::{make_dataset, results_dir, City, Scale};
use st_eval::report::{format_bars, write_json};
use st_eval::{build_examples, train_deepst, SuiteConfig};

fn main() {
    let scale = Scale::from_args();
    // Fig. 8 uses the Harbin dataset; ours is Northport.
    let city = City::Northport;
    eprintln!("[fig8] generating {}", city.name());
    let ds = make_dataset(city, &scale);
    let split = ds.default_split();
    let all_train = build_examples(&ds, &split.train);
    let mut labels = Vec::new();
    let mut secs = Vec::new();
    for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let n = ((all_train.len() as f64) * frac) as usize;
        let cfg = SuiteConfig {
            seed: scale.seed,
            deepst_epochs: 2, // two epochs are enough to measure time/epoch
            batch_size: 64,
            ..SuiteConfig::default()
        };
        let (_, wall) = st_obs::timed("bench/fig8_train", || {
            train_deepst(&ds, &all_train[..n], None, &cfg, true)
        });
        let elapsed = wall / 2.0;
        eprintln!("[fig8] {n} trips: {elapsed:.1}s/epoch");
        labels.push(format!("{n} trips"));
        secs.push(elapsed);
    }
    println!(
        "\nFig. 8 — training time per epoch vs training-set size ({})",
        city.name()
    );
    println!("{}", format_bars("", &labels, &secs, 40));
    // linearity check: R² of a least-squares fit through the points
    let n = secs.len() as f64;
    let xs: Vec<f64> = (1..=secs.len()).map(|i| i as f64).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = secs.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(&secs).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = secs.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0
    };
    println!("linear fit R² = {r2:.3} (paper: training time grows linearly)");
    let path = results_dir().join("fig8.json");
    write_json(
        &path,
        &serde_json::json!({"labels": labels, "secs_per_epoch": secs, "r2": r2}),
    )
    .expect("write results");
    eprintln!("[fig8] wrote {}", path.display());
}
