//! Streaming-traffic benchmark: feed ingest throughput, targeted cache
//! invalidation, and prediction reaction latency under live updates.
//!
//! Three phases on one simulated city:
//!
//! - **state ingest** — the full [`TrafficFeed`] derived from the dataset
//!   (per-slot observation sweeps + ground-truth incidents/closures) is
//!   replayed into fresh [`VersionedTraffic`] states until enough wall time
//!   accumulates for a stable events/sec figure. With `--chaos` the same
//!   feed is also mangled by a seeded [`FeedFaultPlan`] (duplicates,
//!   adjacent swaps, past-horizon stragglers) and the mangled replay must
//!   converge to the clean state bit-for-bit — the CRDT-ish idempotence
//!   property the unit tests pin, measured here at dataset scale.
//! - **serve ingest** — the clean feed is pushed through
//!   [`Server::ingest_traffic`] on a live server whose encode cache was
//!   pre-warmed at feed version 0, so every sweep exercises the versioned
//!   cache-key path; the `serve.traffic_ingest.*` and
//!   `predict.traffic_cache.*` counter deltas are reported.
//! - **reaction** — street-level incidents are injected one at a time via
//!   [`st_sim::incident_event`] into slots spread across the horizon.
//!   For each: predict, ingest, predict again. The post-ingest response
//!   must decode under the bumped traffic version — a reaction latency of
//!   **zero whole slots** (the ISSUE gate is ≤ 1). Any response still
//!   carrying the pre-ingest version counts as a *stale serve* and fails
//!   the benchmark, as does a reaction phase whose targeted-invalidation
//!   counter stays flat (that would mean stale encodes were served from
//!   cache instead of being evicted).
//!
//! Writes `results/BENCH_stream.json` (atomically: tmp + fsync + rename)
//! and a recorded trace to `results/trace_stream.jsonl`.
//!
//! Usage: `cargo run --release -p st-bench --bin bench_stream [-- --quick|--full] [--chaos]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::json;

use st_bench::{host_meta, make_dataset, results_dir, City, Scale};
use st_core::faultinject::FeedFaultPlan;
use st_core::{DeepSt, TrafficEventKind, VersionedTraffic};
use st_eval::deepst_config;
use st_eval::report::write_json_atomic;
use st_serve::{RouteRequest, ServeConfig, Server};
use st_sim::{incident_event, Dataset, TrafficFeed, Trip, SLOT_SECS};

/// Minimum wall time the state-ingest phase accumulates before trusting
/// its events/sec figure.
const INGEST_MIN_WALL: Duration = Duration::from_millis(200);
/// Upper bound on state-ingest replays (keeps --full runs bounded).
const INGEST_MAX_REPEATS: usize = 200;
/// Incidents injected in the reaction phase.
const REACTION_INCIDENTS: usize = 6;

struct Args {
    scale: Scale,
    chaos: bool,
}

fn parse_args() -> Args {
    let mut quick = false;
    let mut full = false;
    let mut chaos = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            "--chaos" => chaos = true,
            other => {
                eprintln!("error: unknown argument `{other}` (expected --quick, --full, --chaos)");
                std::process::exit(2);
            }
        }
    }
    let scale = if quick {
        Scale::quick()
    } else if full {
        Scale::full()
    } else {
        Scale::default()
    };
    Args { scale, chaos }
}

/// Snapshot of the streaming counters, for per-phase deltas.
#[derive(Clone)]
struct Counters {
    feed_applied: u64,
    feed_duplicate: u64,
    feed_out_of_order: u64,
    feed_past_horizon: u64,
    serve_applied: u64,
    serve_rejected: u64,
    cache_hit: u64,
    cache_miss: u64,
    cache_invalidate: u64,
}

fn counters() -> Counters {
    Counters {
        feed_applied: st_obs::counter("traffic.feed.applied").get(),
        feed_duplicate: st_obs::counter("traffic.feed.duplicate").get(),
        feed_out_of_order: st_obs::counter("traffic.feed.out_of_order").get(),
        feed_past_horizon: st_obs::counter("traffic.feed.past_horizon").get(),
        serve_applied: st_obs::counter("serve.traffic_ingest.applied").get(),
        serve_rejected: st_obs::counter("serve.traffic_ingest.rejected").get(),
        cache_hit: st_obs::counter("predict.traffic_cache.hit").get(),
        cache_miss: st_obs::counter("predict.traffic_cache.miss").get(),
        cache_invalidate: st_obs::counter("predict.traffic_cache.invalidate").get(),
    }
}

impl Counters {
    fn delta(&self, before: &Counters) -> Counters {
        Counters {
            feed_applied: self.feed_applied - before.feed_applied,
            feed_duplicate: self.feed_duplicate - before.feed_duplicate,
            feed_out_of_order: self.feed_out_of_order - before.feed_out_of_order,
            feed_past_horizon: self.feed_past_horizon - before.feed_past_horizon,
            serve_applied: self.serve_applied - before.serve_applied,
            serve_rejected: self.serve_rejected - before.serve_rejected,
            cache_hit: self.cache_hit - before.cache_hit,
            cache_miss: self.cache_miss - before.cache_miss,
            cache_invalidate: self.cache_invalidate - before.cache_invalidate,
        }
    }
}

/// A route query pinned to `slot`, carrying that slot's observed tensor
/// (what a client that has not seen the live feed would send).
fn request_for_slot(ds: &Dataset, trip: &Trip, slot: usize) -> RouteRequest {
    RouteRequest {
        prefix: vec![trip.origin_segment()],
        dest_coord: trip.dest_coord,
        dest_norm: ds.unit_coord(&trip.dest_coord),
        traffic: Some(ds.traffic_tensor(slot).to_vec()),
        slot_id: slot,
        deadline: None,
    }
}

fn main() {
    let args = parse_args();
    let city = City::Rivertown;
    println!(
        "bench_stream: {} ({} trips{})",
        city.name(),
        args.scale.trips,
        if args.chaos { ", chaos on" } else { "" }
    );
    st_obs::start_recording();

    let ds = make_dataset(city, &args.scale);
    let feed = TrafficFeed::from_dataset(&ds);
    let observations = feed
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TrafficEventKind::Observation))
        .count();
    let closures = feed
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TrafficEventKind::Closure { .. }))
        .count();
    println!(
        "  feed: {} events over {} slots ({} sweeps, {} incidents, {} closures)",
        feed.len(),
        feed.horizon_slots(),
        observations,
        feed.len() - observations - closures,
        closures
    );

    // --- phase 1: raw state-machine ingest throughput --------------------
    let before = counters();
    let t0 = Instant::now();
    let mut repeats = 0usize;
    while t0.elapsed() < INGEST_MIN_WALL && repeats < INGEST_MAX_REPEATS {
        let mut state = VersionedTraffic::with_horizon(feed.horizon_slots());
        for ev in feed.events() {
            if !state.apply(ev).is_applied() {
                eprintln!("FAIL: clean feed event rejected: {ev:?}");
                std::process::exit(1);
            }
        }
        repeats += 1;
    }
    let ingest_elapsed = t0.elapsed().as_secs_f64();
    let ingest_applied = counters().delta(&before).feed_applied;
    let events_per_sec = ingest_applied as f64 / ingest_elapsed.max(1e-9);
    println!(
        "  state ingest: {ingest_applied} events in {repeats} replays, {:.0} events/sec",
        events_per_sec
    );

    // --- phase 1b (--chaos): mangled replay must converge ----------------
    let mut chaos_json = serde_json::Value::Null;
    let mut chaos_converged = true;
    if args.chaos {
        let plan = FeedFaultPlan::random(args.scale.seed, feed.len(), 0.10, 0.15, 0.05);
        let mangled = plan.mangle(feed.events(), feed.horizon_slots());
        let mut clean_state = VersionedTraffic::with_horizon(feed.horizon_slots());
        for ev in feed.events() {
            clean_state.apply(ev);
        }
        let before = counters();
        let mut state = VersionedTraffic::with_horizon(feed.horizon_slots());
        for ev in &mangled {
            state.apply(ev);
        }
        let d = counters().delta(&before);
        for slot in 0..feed.horizon_slots() {
            if state.tensor(slot) != clean_state.tensor(slot) {
                eprintln!("FAIL: mangled replay diverged from clean state at slot {slot}");
                chaos_converged = false;
            }
        }
        if state.closed_segments() != clean_state.closed_segments() {
            eprintln!("FAIL: mangled replay lost or invented closures");
            chaos_converged = false;
        }
        if d.feed_duplicate + d.feed_out_of_order + d.feed_past_horizon == 0 {
            eprintln!("FAIL: chaos plan injected no delivery faults");
            chaos_converged = false;
        }
        println!(
            "  chaos ingest: {} mangled events — {} applied, {} dup, {} out-of-order, {} past-horizon, converged: {}",
            mangled.len(),
            d.feed_applied,
            d.feed_duplicate,
            d.feed_out_of_order,
            d.feed_past_horizon,
            chaos_converged
        );
        chaos_json = json!({
            "mangled_events": mangled.len(),
            "applied": d.feed_applied,
            "duplicate": d.feed_duplicate,
            "out_of_order": d.feed_out_of_order,
            "past_horizon": d.feed_past_horizon,
            "converged": chaos_converged,
        });
    }

    // --- phase 2: serve-side ingest with a warm encode cache -------------
    // Untrained weights run the same per-step arithmetic as trained ones;
    // streaming behaviour (versioning, invalidation, reaction) does not
    // depend on what the model learned.
    let model = Arc::new(DeepSt::new(deepst_config(&ds, 24), args.scale.seed));
    let net = Arc::new(ds.net.clone());
    let split = ds.default_split();
    let trip = &ds.trips[*split.test.first().unwrap_or(&0)];

    // Single worker so the warm-cache / eager-invalidation counter deltas
    // below are deterministic (each worker owns its own encode cache).
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 64,
        max_batch_rows: 64,
        default_deadline: Duration::from_secs(30),
        degrade_queue_depth: usize::MAX,
        greedy_queue_depth: usize::MAX,
        degrade_p99_ms: f64::INFINITY,
        greedy_p99_ms: f64::INFINITY,
        traffic_slots: Some(ds.num_slots()),
        ..ServeConfig::default()
    };
    let server = Server::new(Arc::clone(&model), Arc::clone(&net), cfg);

    // Incident slots spread across the horizon (deduped, in order).
    let n_slots = ds.num_slots();
    let mut incident_slots: Vec<usize> = (0..REACTION_INCIDENTS)
        .map(|i| i * n_slots.max(1) / REACTION_INCIDENTS)
        .collect();
    incident_slots.dedup();

    // Warm the encode cache at feed version 0, then replay the clean feed
    // through the server: every sweep must apply, and each warmed slot's
    // version-0 entry must be lazily evicted on the next admit.
    for &slot in &incident_slots {
        let _ = server.predict(request_for_slot(&ds, trip, slot));
    }
    let before = counters();
    let t0 = Instant::now();
    for ev in feed.events() {
        server.ingest_traffic(ev);
    }
    let serve_ingest_elapsed = t0.elapsed().as_secs_f64();
    let serve_d = counters().delta(&before);
    let serve_events_per_sec = serve_d.serve_applied as f64 / serve_ingest_elapsed.max(1e-9);
    println!(
        "  serve ingest: {} applied, {} rejected, {:.0} events/sec",
        serve_d.serve_applied, serve_d.serve_rejected, serve_events_per_sec
    );

    // --- phase 3: injected incidents, reaction measured in slots ---------
    let n_seg = net.num_segments();
    let mut injected = 0usize;
    let mut stale_serves = 0usize;
    let mut routes_changed = 0usize;
    let mut max_reaction_slots = 0usize;
    let reaction_before = counters();
    for (i, &slot) in incident_slots.iter().enumerate() {
        // Fresh seqs above the whole ingested feed keep per-slot ordering
        // happy; an incident center that actually lands on the observation
        // grid is found by walking the segment list until one maps to a cell.
        let next_seq = (feed.len() + i) as u64;
        let ev = (0..n_seg).find_map(|k| {
            let center = net.midpoint((i * 37 + k) % n_seg);
            incident_event(&ds, next_seq, (slot as f64 + 0.5) * SLOT_SECS, &center, 0.9)
        });
        let Some(ev) = ev else {
            eprintln!("FAIL: no segment midpoint maps onto the observation grid");
            std::process::exit(1);
        };

        let req = request_for_slot(&ds, trip, slot);
        let pre = server
            .predict(req.clone())
            .expect("no faults armed on this server");
        if !server.ingest_traffic(&ev).is_applied() {
            eprintln!("FAIL: injected incident for slot {slot} was rejected");
            std::process::exit(1);
        }
        injected += 1;
        let post = server.predict(req).expect("no faults armed on this server");
        // Reaction latency in slots: the incident lands in `slot`; the very
        // next prediction for `slot` must already decode under the bumped
        // version (0 slots). A stale version means the reaction missed the
        // current slot entirely — report it as beyond the 1-slot gate.
        if post.traffic_version <= pre.traffic_version {
            stale_serves += 1;
            max_reaction_slots = max_reaction_slots.max(2);
        }
        if post.route != pre.route {
            routes_changed += 1;
        }
    }
    let reaction_d = counters().delta(&reaction_before);
    server.shutdown();
    println!(
        "  reaction: {injected} incidents, max {max_reaction_slots} slot(s), {stale_serves} stale serves, {routes_changed} routes changed, {} targeted invalidations",
        reaction_d.cache_invalidate
    );

    // --- trace + report --------------------------------------------------
    let trace = st_obs::drain();
    st_obs::stop_recording();
    let dir = results_dir();
    let trace_path = dir.join("trace_stream.jsonl");
    let meta = json!({
        "bench": "bench_stream",
        "city": city.name(),
        "chaos": args.chaos,
    });
    if let Err(e) = st_obs::write_jsonl(&trace_path, &meta, &trace) {
        eprintln!("error: writing trace: {e}");
        std::process::exit(1);
    }

    let out = json!({
        "bench": "bench_stream",
        "city": city.name(),
        "chaos": args.chaos,
        "host": host_meta(),
        "feed": {
            "events": feed.len(),
            "horizon_slots": feed.horizon_slots(),
            "observations": observations,
            "incidents": feed.len() - observations - closures,
            "closures": closures,
        },
        "state_ingest": {
            "replays": repeats,
            "applied": ingest_applied,
            "events_per_sec": events_per_sec,
        },
        "chaos_ingest": chaos_json,
        "serve_ingest": {
            "applied": serve_d.serve_applied,
            "rejected": serve_d.serve_rejected,
            "events_per_sec": serve_events_per_sec,
            "cache_invalidations": serve_d.cache_invalidate,
        },
        "reaction": {
            "incidents": injected,
            "max_reaction_slots": max_reaction_slots,
            "stale_serves": stale_serves,
            "routes_changed": routes_changed,
            "cache_hits": reaction_d.cache_hit,
            "cache_misses": reaction_d.cache_miss,
            "cache_invalidations": reaction_d.cache_invalidate,
        },
    });
    let path = dir.join("BENCH_stream.json");
    if let Err(e) = write_json_atomic(&path, &out) {
        eprintln!("error: writing {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("  wrote {} and {}", path.display(), trace_path.display());

    // --- hard gates ------------------------------------------------------
    let mut failed = false;
    if !chaos_converged {
        failed = true; // details already printed above
    }
    if serve_d.serve_applied != feed.len() as u64 {
        eprintln!(
            "FAIL: clean feed had rejections at the serve layer ({}/{} applied)",
            serve_d.serve_applied,
            feed.len()
        );
        failed = true;
    }
    if stale_serves > 0 || max_reaction_slots > 1 {
        eprintln!(
            "FAIL: {stale_serves} prediction(s) served a stale traffic version — reaction exceeded the 1-slot gate"
        );
        failed = true;
    }
    if reaction_d.cache_invalidate < injected as u64 {
        eprintln!(
            "FAIL: only {} targeted invalidation(s) for {injected} applied incidents — stale encodes were served from cache",
            reaction_d.cache_invalidate
        );
        failed = true;
    }
    if injected == 0 {
        eprintln!("FAIL: reaction phase injected no incidents");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_stream: OK");
}
