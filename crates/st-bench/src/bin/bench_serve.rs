//! Serving benchmark: open-loop load generation against the `st-serve`
//! route-prediction service.
//!
//! Measures the service at two load levels on the same model and city:
//!
//! - **nominal** — a homogeneous Poisson arrival process at roughly half
//!   the measured serial decode capacity, the regime where no shedding or
//!   degradation should occur;
//! - **overload** — an inhomogeneous rush-hour process (the simulator's
//!   diurnal profile compressed into the benchmark window) whose peak
//!   offered rate far exceeds capacity, the regime where the admission
//!   queue must shed, deadlines must expire, and the degradation ladder
//!   must engage — all as *typed* outcomes, never hangs.
//!
//! The generator is open-loop: arrivals come from a fixed seeded process
//! regardless of how fast the server answers, so queueing delay is
//! measured rather than hidden by closed-loop self-throttling. Every
//! in-flight handle is awaited against a generous wall bound; a request
//! that resolves to neither a response nor a typed error within it counts
//! as **hung**, and any hung request fails the benchmark.
//!
//! A sample of completed nominal responses is re-decoded serially
//! (one-at-a-time `beam_decode_from` oracle at the response's effective
//! beam width); any bitwise route mismatch fails the benchmark — the
//! continuous-batching parity guarantee, checked end-to-end through the
//! server.
//!
//! With `--chaos`, a seeded [`ServeFaultPlan`] (slow steps, worker panics,
//! poisoned sessions) is armed on both runs; the same zero-hang and
//! typed-error assertions must then hold through the faults (the CI
//! `serve-smoke` job runs this mode).
//!
//! Writes `results/BENCH_serve.json` (atomically: tmp + fsync + rename)
//! and a recorded trace to `results/trace_serve.jsonl`.
//!
//! Usage: `cargo run --release -p st-bench --bin bench_serve [-- --quick|--full] [--chaos]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::json;

use st_baselines::{beam_decode_from, DeepStDecoder};
use st_bench::{host_meta, make_dataset, results_dir, City, Scale};
use st_core::faultinject::{ServeFaultInjector, ServeFaultPlan};
use st_core::{CancelToken, DeepSt};
use st_eval::deepst_config;
use st_eval::report::write_json_atomic;
use st_roadnet::{RoadNetwork, Route};
use st_serve::{Degradation, RouteRequest, RouteResponse, ServeConfig, ServeError, Server};
use st_sim::{poisson_arrivals, rush_hour_arrivals};

/// Wall bound per pending handle: anything unresolved past this is hung.
const HANG_BOUND: Duration = Duration::from_secs(60);
/// Completed nominal responses re-decoded against the serial oracle.
const PARITY_SAMPLE: usize = 24;

struct Args {
    scale: Scale,
    chaos: bool,
    /// Seconds of load generation per level.
    duration_s: f64,
}

fn parse_args() -> Args {
    let mut quick = false;
    let mut full = false;
    let mut chaos = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            "--chaos" => chaos = true,
            other => {
                eprintln!("error: unknown argument `{other}` (expected --quick, --full, --chaos)");
                std::process::exit(2);
            }
        }
    }
    let (scale, duration_s) = if quick {
        (Scale::quick(), 2.0)
    } else if full {
        (Scale::full(), 10.0)
    } else {
        (Scale::default(), 5.0)
    };
    Args {
        scale,
        chaos,
        duration_s,
    }
}

/// Serial one-at-a-time decode of `req` — the oracle batched serving must
/// match bitwise at the same beam width.
fn serial_oracle(
    net: &RoadNetwork,
    model: &DeepSt,
    req: &RouteRequest,
    beam_width: usize,
) -> Route {
    let c = req.traffic.as_ref().map(|t| model.encode_traffic(t));
    let ctx = model.encode_context(req.dest_norm, c);
    let mut dec = DeepStDecoder::new(model, &ctx);
    match beam_decode_from(
        net,
        &mut dec,
        &req.prefix,
        &req.dest_coord,
        beam_width,
        model.cfg.max_route_len,
        &CancelToken::new(),
    ) {
        Ok(route) => route,
        Err(cancelled) => cancelled.partial,
    }
}

/// Snapshot of the serving counters, for per-run deltas.
#[derive(Clone)]
struct Counters {
    shed: u64,
    deadline: u64,
    degraded: u64,
    retry: u64,
    panic: u64,
    poisoned: u64,
    completed: u64,
}

fn counters() -> Counters {
    Counters {
        shed: st_obs::counter("serve.shed").get(),
        deadline: st_obs::counter("serve.deadline_exceeded").get(),
        degraded: st_obs::counter("serve.degraded").get(),
        retry: st_obs::counter("serve.retry").get(),
        panic: st_obs::counter("serve.worker_panic").get(),
        poisoned: st_obs::counter("serve.poisoned_step").get(),
        completed: st_obs::counter("serve.completed").get(),
    }
}

struct RunResult {
    label: String,
    offered_rate_hz: f64,
    arrivals: usize,
    completed: Vec<(usize, RouteResponse)>,
    shed_sync: usize,
    errors_deadline: usize,
    errors_internal: usize,
    hung: usize,
    elapsed_s: f64,
    delta: Counters,
}

/// Drive one open-loop run: enqueue `requests[i % len]` at each arrival
/// offset, then await every handle against the hang bound.
fn run_load(
    server: &Server,
    requests: &[RouteRequest],
    arrivals: &[f64],
    deadline: Option<Duration>,
    label: &str,
) -> RunResult {
    let before = counters();
    let t0 = Instant::now();
    let mut pending = Vec::new();
    let mut shed_sync = 0usize;
    let mut errors_internal = 0usize;
    for (i, &at) in arrivals.iter().enumerate() {
        let target = t0 + Duration::from_secs_f64(at);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let mut req = requests[i % requests.len()].clone();
        if deadline.is_some() {
            req.deadline = deadline;
        }
        match server.enqueue(req) {
            Ok(p) => pending.push((i, p)),
            Err(ServeError::Overloaded { .. }) => shed_sync += 1,
            Err(_) => errors_internal += 1,
        }
    }
    let bound = Instant::now() + HANG_BOUND;
    let mut completed = Vec::new();
    let mut errors_deadline = 0usize;
    let mut hung = 0usize;
    for (i, p) in pending {
        match p.wait_until(bound) {
            None => hung += 1,
            Some(Ok(resp)) => completed.push((i, resp)),
            Some(Err(ServeError::DeadlineExceeded { .. })) => errors_deadline += 1,
            Some(Err(ServeError::Overloaded { .. })) => shed_sync += 1,
            Some(Err(_)) => errors_internal += 1,
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let after = counters();
    RunResult {
        label: label.to_string(),
        offered_rate_hz: arrivals.len() as f64 / arrivals.last().copied().unwrap_or(1.0).max(1e-9),
        arrivals: arrivals.len(),
        completed,
        shed_sync,
        errors_deadline,
        errors_internal,
        hung,
        elapsed_s,
        delta: Counters {
            shed: after.shed - before.shed,
            deadline: after.deadline - before.deadline,
            degraded: after.degraded - before.degraded,
            retry: after.retry - before.retry,
            panic: after.panic - before.panic,
            poisoned: after.poisoned - before.poisoned,
            completed: after.completed - before.completed,
        },
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64) * q).ceil() as usize;
    sorted_ms[idx.saturating_sub(1).min(sorted_ms.len() - 1)]
}

fn run_json(r: &RunResult) -> serde_json::Value {
    let mut lat_ms: Vec<f64> = r
        .completed
        .iter()
        .map(|(_, resp)| resp.latency.as_secs_f64() * 1e3)
        .collect();
    lat_ms.sort_by(|a, b| a.total_cmp(b));
    let degraded_responses = r
        .completed
        .iter()
        .filter(|(_, resp)| resp.degradation != Degradation::None)
        .count();
    json!({
        "label": r.label,
        "offered_rate_hz": r.offered_rate_hz,
        "arrivals": r.arrivals,
        "completed": r.completed.len(),
        "sustained_qps": r.completed.len() as f64 / r.elapsed_s.max(1e-9),
        "p50_latency_ms": percentile(&lat_ms, 0.50),
        "p99_latency_ms": percentile(&lat_ms, 0.99),
        "shed": r.shed_sync,
        "shed_counter": r.delta.shed,
        "deadline_exceeded": r.errors_deadline,
        "deadline_counter": r.delta.deadline,
        "internal_errors": r.errors_internal,
        "degraded_responses": degraded_responses,
        "degraded_admissions": r.delta.degraded,
        "retries": r.delta.retry,
        "worker_panics": r.delta.panic,
        "poisoned_steps": r.delta.poisoned,
        "hung": r.hung,
        "elapsed_s": r.elapsed_s,
    })
}

fn main() {
    let args = parse_args();
    let city = City::Rivertown;
    println!(
        "bench_serve: {} ({} trips{})",
        city.name(),
        args.scale.trips,
        if args.chaos { ", chaos on" } else { "" }
    );
    st_obs::start_recording();

    let ds = make_dataset(city, &args.scale);
    let split = ds.default_split();
    // Untrained weights run the same per-step arithmetic as trained ones;
    // serving behaviour (latency, shedding, parity) does not depend on
    // what the model learned.
    let model = Arc::new(DeepSt::new(deepst_config(&ds, 24), args.scale.seed));
    let net = Arc::new(ds.net.clone());

    // Request pool from test-split trips: ~70% fresh route queries, ~30%
    // continuations of the first few observed segments.
    let requests: Vec<RouteRequest> = split
        .test
        .iter()
        .take(200)
        .enumerate()
        .map(|(k, &i)| {
            let trip = &ds.trips[i];
            let slot = ds.slot_of(trip.start_time);
            let prefix = if k % 10 < 3 {
                trip.route[..trip.route.len().min(4)].to_vec()
            } else {
                vec![trip.origin_segment()]
            };
            RouteRequest {
                prefix,
                dest_coord: trip.dest_coord,
                dest_norm: ds.unit_coord(&trip.dest_coord),
                traffic: Some(ds.traffic_tensor(slot).to_vec()),
                slot_id: slot,
                deadline: None,
            }
        })
        .collect();
    assert!(!requests.is_empty(), "dataset produced no test trips");

    // Serial capacity: one-at-a-time decodes, the denominator for load
    // levels and the speedup-of-batching reference.
    let sample = requests.len().min(16);
    let t0 = Instant::now();
    for req in &requests[..sample] {
        let _ = serial_oracle(&net, &model, req, 8);
    }
    let serial_qps = sample as f64 / t0.elapsed().as_secs_f64();
    println!("  serial decode capacity ≈ {serial_qps:.1} qps");

    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 32,
        max_batch_rows: 64,
        default_deadline: Duration::from_secs(5),
        beam_width: 8,
        degraded_beam_width: 3,
        degrade_queue_depth: 8,
        greedy_queue_depth: 20,
        degrade_p99_ms: 400.0,
        greedy_p99_ms: 900.0,
        max_retries: 2,
        retry_backoff: Duration::from_millis(2),
        traffic_slots: None,
    };
    let make_server = |seed: u64| {
        if args.chaos {
            let plan = ServeFaultPlan::random(seed, 200_000, 0.01, 0.002, 0.002, 20);
            Server::with_chaos(
                Arc::clone(&model),
                Arc::clone(&net),
                cfg.clone(),
                Arc::new(ServeFaultInjector::new(plan)),
            )
        } else {
            Server::new(Arc::clone(&model), Arc::clone(&net), cfg.clone())
        }
    };

    // --- nominal: Poisson at ~half serial capacity -----------------------
    let nominal_rate = (serial_qps * 0.5).max(2.0);
    let nominal_arrivals = poisson_arrivals(nominal_rate, args.duration_s, args.scale.seed);
    let server = make_server(41);
    // A couple of traced predict() calls so the trace carries the request
    // path spans alongside the load-run metrics.
    for req in requests.iter().take(3) {
        let _ = server.predict(req.clone());
    }
    let nominal = run_load(&server, &requests, &nominal_arrivals, None, "nominal");
    server.shutdown();
    println!(
        "  nominal:  {} arrivals, {} completed, {} shed, {} deadline, {} hung",
        nominal.arrivals,
        nominal.completed.len(),
        nominal.shed_sync,
        nominal.errors_deadline,
        nominal.hung
    );

    // --- overload: rush-hour burst far above capacity --------------------
    let overload_base = (serial_qps * 4.0).max(20.0);
    let overload_arrivals =
        rush_hour_arrivals(overload_base, 4.0, args.duration_s, args.scale.seed + 1);
    let server = make_server(42);
    let overload = run_load(
        &server,
        &requests,
        &overload_arrivals,
        Some(Duration::from_millis(800)),
        "overload",
    );
    server.shutdown();
    println!(
        "  overload: {} arrivals, {} completed, {} shed, {} deadline, {} degraded, {} hung",
        overload.arrivals,
        overload.completed.len(),
        overload.shed_sync,
        overload.errors_deadline,
        overload.delta.degraded,
        overload.hung
    );

    // --- parity: batched serving vs the serial oracle --------------------
    let mut parity_checked = 0usize;
    let mut parity_mismatches = 0usize;
    for (i, resp) in nominal.completed.iter().take(PARITY_SAMPLE) {
        let req = &requests[i % requests.len()];
        let oracle = serial_oracle(&net, &model, req, resp.beam_width);
        parity_checked += 1;
        if resp.route != oracle {
            parity_mismatches += 1;
            eprintln!(
                "  PARITY MISMATCH on request {i} (beam {})",
                resp.beam_width
            );
        }
    }
    println!("  parity: {parity_checked} checked, {parity_mismatches} mismatches");

    // --- trace + report --------------------------------------------------
    let trace = st_obs::drain();
    st_obs::stop_recording();
    let dir = results_dir();
    let trace_path = dir.join("trace_serve.jsonl");
    let meta = json!({
        "bench": "bench_serve",
        "city": city.name(),
        "chaos": args.chaos,
    });
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: creating {}: {e}", dir.display());
        std::process::exit(1);
    }
    if let Err(e) = st_obs::write_jsonl(&trace_path, &meta, &trace) {
        eprintln!("error: writing trace: {e}");
        std::process::exit(1);
    }

    let out = json!({
        "bench": "bench_serve",
        "city": city.name(),
        "chaos": args.chaos,
        "host": host_meta(),
        "config": {
            "workers": cfg.workers,
            "queue_cap": cfg.queue_cap,
            "max_batch_rows": cfg.max_batch_rows,
            "beam_width": cfg.beam_width,
            "degraded_beam_width": cfg.degraded_beam_width,
            "degrade_queue_depth": cfg.degrade_queue_depth,
            "greedy_queue_depth": cfg.greedy_queue_depth,
            "max_retries": cfg.max_retries,
        },
        "serial_qps": serial_qps,
        "nominal": run_json(&nominal),
        "overload": run_json(&overload),
        "parity": {
            "checked": parity_checked,
            "mismatches": parity_mismatches,
        },
    });
    let path = dir.join("BENCH_serve.json");
    if let Err(e) = write_json_atomic(&path, &out) {
        eprintln!("error: writing {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("  wrote {} and {}", path.display(), trace_path.display());

    // --- hard gates ------------------------------------------------------
    let mut failed = false;
    if nominal.hung + overload.hung > 0 {
        eprintln!(
            "FAIL: {} hung request(s) — shed-not-stall violated",
            nominal.hung + overload.hung
        );
        failed = true;
    }
    if parity_mismatches > 0 {
        eprintln!("FAIL: {parity_mismatches} batched route(s) diverged from the serial oracle");
        failed = true;
    }
    let overload_sheds = overload.shed_sync as u64 + overload.delta.deadline;
    if overload_sheds == 0 {
        eprintln!("FAIL: overload run shed nothing — load level is not an overload");
        failed = true;
    }
    if nominal.completed.is_empty() || overload.completed.is_empty() {
        eprintln!("FAIL: a load level completed zero requests");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_serve: OK");
}
