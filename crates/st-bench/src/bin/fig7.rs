//! Fig. 7: route prediction accuracy of every method versus travel
//! distance (quantile buckets over the test trips).

use st_bench::{results_dir, run_prediction_suite, City, Scale};
use st_eval::report::{format_table, write_json};

fn main() {
    let scale = Scale::from_args();
    let mut json = serde_json::Map::new();
    for city in City::ALL {
        eprintln!("[fig7] running {}", city.name());
        let out = run_prediction_suite(city, &scale);
        let mut headers: Vec<String> = vec!["bucket (km)".into()];
        headers.extend(out.results.iter().map(|r| r.name.clone()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for (b, &(lo, hi)) in out.buckets.iter().enumerate() {
            let mut row = vec![if hi.is_finite() {
                format!("[{lo:.1}, {hi:.1})")
            } else {
                format!("[{lo:.1}, ∞)")
            }];
            for r in &out.results {
                row.push(format!("{:.3}", r.per_bucket[b].accuracy()));
            }
            rows.push(row);
        }
        println!("\nFig. 7 — accuracy vs travel distance, {}", city.name());
        println!("{}", format_table(&header_refs, &rows));
        println!(
            "Fig. 7 — {}: {} of {} evaluated trips fall outside every distance bucket (scored overall, absent above)",
            city.name(),
            out.bucket_dropped,
            out.evaluated
        );
        json.insert(
            city.name().into(),
            serde_json::json!({
                "buckets": out.buckets,
                "results": out.results,
                "evaluated": out.evaluated,
                "bucket_dropped": out.bucket_dropped,
            }),
        );
    }
    let path = results_dir().join("fig7.json");
    write_json(&path, &json).expect("write results");
    eprintln!("[fig7] wrote {}", path.display());
}
