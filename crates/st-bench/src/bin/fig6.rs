//! Fig. 6: distributions of travel distance (km) and number of road
//! segments per trip, for both cities.

use st_bench::{make_dataset, results_dir, City, Scale};
use st_eval::report::{format_bars, write_json};

fn histogram(values: &[f64], n_bins: usize) -> (Vec<String>, Vec<f64>) {
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(0.0f64, f64::max) + 1e-9;
    let width = (hi - lo) / n_bins as f64;
    let mut counts = vec![0.0; n_bins];
    for &v in values {
        let b = (((v - lo) / width) as usize).min(n_bins - 1);
        counts[b] += 1.0;
    }
    let labels = (0..n_bins)
        .map(|b| {
            format!(
                "[{:5.1},{:5.1})",
                lo + b as f64 * width,
                lo + (b + 1) as f64 * width
            )
        })
        .collect();
    (labels, counts)
}

fn main() {
    let scale = Scale::from_args();
    let mut json = serde_json::Map::new();
    for city in City::ALL {
        eprintln!("[fig6] generating {}", city.name());
        let ds = make_dataset(city, &scale);
        let dists: Vec<f64> = ds
            .trips
            .iter()
            .map(|t| ds.net.route_length(&t.route) / 1000.0)
            .collect();
        let segs: Vec<f64> = ds.trips.iter().map(|t| t.route.len() as f64).collect();
        let (dl, dc) = histogram(&dists, 10);
        let (sl, sc) = histogram(&segs, 10);
        println!("\nFig. 6 — {}: travel distance (km)", city.name());
        println!("{}", format_bars("", &dl, &dc, 40));
        println!("Fig. 6 — {}: route length (#segments)", city.name());
        println!("{}", format_bars("", &sl, &sc, 40));
        json.insert(
            city.name().into(),
            serde_json::json!({
                "distance_km": {"labels": dl, "counts": dc},
                "segments": {"labels": sl, "counts": sc},
            }),
        );
    }
    let path = results_dir().join("fig6.json");
    write_json(&path, &json).expect("write results");
    eprintln!("[fig6] wrote {}", path.display());
}
