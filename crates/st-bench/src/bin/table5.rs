//! Table V: route recovery accuracy versus sampling rate (1–9 minutes),
//! STRS vs STRS+ (DeepST spatial module), with the δ improvement row.

use st_bench::{make_dataset, results_dir, City, Scale};
use st_eval::metrics::accuracy;
use st_eval::report::{format_table, write_json};
use st_eval::{build_examples, train_deepst, SuiteConfig};
use st_recovery::{DeepStSpatial, MarkovSpatial, Recovery, RecoveryConfig, TravelTimeModel};
use st_sim::downsample;

fn main() {
    let scale = Scale::from_args();
    let rates_min: Vec<f64> = (1..=9).map(|m| m as f64).collect();
    let mut json = serde_json::Map::new();
    for city in City::ALL {
        eprintln!("[table5] running {}", city.name());
        let ds = make_dataset(city, &scale);
        let split = ds.default_split();
        let train = build_examples(&ds, &split.train);
        let cfg = SuiteConfig {
            seed: scale.seed,
            deepst_epochs: scale.epochs,
            ..SuiteConfig::default()
        };
        let model = train_deepst(&ds, &train, None, &cfg, true);
        let ttime = TravelTimeModel::fit(
            &ds.net,
            split
                .train
                .iter()
                .map(|&i| (&ds.trips[i].route, ds.trips[i].duration())),
        );
        let markov = MarkovSpatial::fit(split.train.iter().map(|&i| &ds.trips[i].route));
        let deep_spatial = DeepStSpatial::new(&model);
        let rcfg = RecoveryConfig::default();
        let strs = Recovery::new(&ds.net, &ttime, &markov, rcfg.clone());
        let strsp = Recovery::new(&ds.net, &ttime, &deep_spatial, rcfg);

        let mut acc_strs = vec![0.0f64; rates_min.len()];
        let mut acc_strsp = vec![0.0f64; rates_min.len()];
        let mut counts = vec![0usize; rates_min.len()];
        let test_ids: Vec<usize> = split
            .test
            .iter()
            .copied()
            .take(scale.recovery_trajs)
            .collect();
        for (ri, &rate) in rates_min.iter().enumerate() {
            for &i in &test_ids {
                let trip = &ds.trips[i];
                let sparse = downsample(&trip.gps, rate * 60.0);
                if sparse.len() < 2 {
                    continue;
                }
                let dest = ds.unit_coord(&trip.dest_coord);
                let slot = ds.slot_of(trip.start_time);
                let tensor = ds.traffic_tensor(slot);
                let (Some(r1), Some(r2)) = (
                    strs.recover(&sparse, dest, tensor, slot),
                    strsp.recover(&sparse, dest, tensor, slot),
                ) else {
                    continue;
                };
                acc_strs[ri] += accuracy(&trip.route, &r1);
                acc_strsp[ri] += accuracy(&trip.route, &r2);
                counts[ri] += 1;
            }
            eprintln!(
                "[table5] {} rate {}min: STRS {:.3} STRS+ {:.3} ({} trajs)",
                city.name(),
                rate,
                acc_strs[ri] / counts[ri].max(1) as f64,
                acc_strsp[ri] / counts[ri].max(1) as f64,
                counts[ri]
            );
        }
        let strs_row: Vec<f64> = acc_strs
            .iter()
            .zip(&counts)
            .map(|(a, &c)| a / c.max(1) as f64)
            .collect();
        let strsp_row: Vec<f64> = acc_strsp
            .iter()
            .zip(&counts)
            .map(|(a, &c)| a / c.max(1) as f64)
            .collect();
        let delta: Vec<f64> = strs_row
            .iter()
            .zip(&strsp_row)
            .map(|(a, b)| if *a > 0.0 { (b - a) / a * 100.0 } else { 0.0 })
            .collect();
        let mut headers: Vec<String> = vec!["Rate (mins)".into()];
        headers.extend(rates_min.iter().map(|r| format!("{r:.0}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows = vec![
            std::iter::once("STRS".to_string())
                .chain(strs_row.iter().map(|v| format!("{v:.2}")))
                .collect::<Vec<_>>(),
            std::iter::once("STRS+".to_string())
                .chain(strsp_row.iter().map(|v| format!("{v:.2}")))
                .collect::<Vec<_>>(),
            std::iter::once("δ (%)".to_string())
                .chain(delta.iter().map(|v| format!("{v:.1}")))
                .collect::<Vec<_>>(),
        ];
        println!(
            "\nTable V — route recovery accuracy vs sampling rate, {}",
            city.name()
        );
        println!("{}", format_table(&header_refs, &rows));
        json.insert(
            city.name().into(),
            serde_json::json!({"rates_min": rates_min, "strs": strs_row, "strs_plus": strsp_row, "delta_pct": delta}),
        );
    }
    let path = results_dir().join("table5.json");
    write_json(&path, &json).expect("write results");
    eprintln!("[table5] wrote {}", path.display());
}
