//! Decode-throughput benchmark for the tape-free inference runtime.
//!
//! Beam-decodes the same Rivertown queries four ways with the same DeepST
//! weights:
//!
//! 1. **taped clone-and-step** — the pre-refactor decoder: every live beam
//!    prefix owns a cloned recurrent state and advances through
//!    [`DeepSt::step_state_taped`], which records each forward step on a
//!    throwaway autodiff tape;
//! 2. **generic batched** — the first tape-free runtime: packed `[beam,
//!    hidden]` state, but every step re-packs each weight matrix inside the
//!    GEMM and runs unfused activations ([`DeepStDecoder::new_generic`]);
//! 3. **fused f32** — the packed-kernel path ([`DeepStDecoder::new`]):
//!    weights packed once per session, the GRU step collapsed into two
//!    prepacked `[beam, 3·hidden]` GEMMs with a fused SIMD gate epilogue;
//! 4. **int8** — fused kernels with the embedding table and slot head
//!    quantized to int8 (per-channel scales, f32 accumulation).
//!
//! Paths 1–3 must produce identical routes (asserted per query — this
//! doubles as a large-scale parity check). Path 4 is gated statistically:
//! top-1 route match rate against the f32 oracle must reach
//! [`INT8_MATCH_GATE`] (Jaccard overlap is also recorded).
//!
//! Each path is timed over [`SWEEPS`] full passes of the query set and the
//! fastest pass is recorded: one pass is only tens of milliseconds for the
//! fused path, so single-pass numbers are scheduler-noise-dominated.
//!
//! The headline speedup is measured against **PR 5's recorded batched
//! baseline** (committed `BENCH_decode.json`, same query set and host
//! class), not against the live generic run: the GEMM micro-kernel
//! improvements that ship with the packed path (wider tiles, zipped inner
//! loop) also accelerate the unpacked `infer::matmul` it calls, so the
//! live generic baseline no longer represents PR 5 performance. Live
//! ratios are reported alongside. The report also records host/toolchain
//! metadata and the `predict.step_tape_peak_bytes` gauge (which must stay
//! 0 on every tape-free path). Writes `BENCH_decode.json`.
//!
//! Usage: `cargo run --release -p st-bench --bin bench_decode [-- --quick|--full]`

use std::time::Instant;

use serde_json::json;

use st_baselines::{beam_decode, DeepStDecoder, TERM_SCALE_M};
use st_bench::{accuracy, host_meta, make_dataset, results_dir, City, Scale};
use st_core::{DeepSt, InferPrecision, TripContext};
use st_eval::deepst_config;
use st_eval::report::write_json_atomic;
use st_roadnet::{Point, RoadNetwork, Route, SegmentId};

const BEAM_WIDTH: usize = 8;

/// Timed passes over the query set per path; the fastest is recorded.
const SWEEPS: usize = 3;

/// Required decode speedup of the fused/packed f32 path over the PR 5
/// batched baseline ([`PR5_BATCHED_QPS`]).
const TARGET_SPEEDUP: f64 = 3.0;

/// PR 5's recorded quick-scale throughputs (`results/BENCH_decode.json` as
/// committed at b696363: the same 30-query Rivertown set on the same host
/// class). `PR5_BATCHED_QPS` is the batched-but-unpacked runtime the fused
/// kernels are required to beat [`TARGET_SPEEDUP`]×; the taped figure is
/// kept for the ≈13×-over-taped cross-check.
const PR5_BATCHED_QPS: f64 = 349.64;
const PR5_TAPED_QPS: f64 = 81.68;

/// Minimum top-1 route match rate of the int8 path against the f32 oracle.
const INT8_MATCH_GATE: f64 = 0.98;

fn p_stop(net: &RoadNetwork, seg: SegmentId, dest: &Point) -> f64 {
    let proj = net.project_onto(dest, seg);
    let d = proj.dist(dest) / TERM_SCALE_M;
    (-d * d).exp().clamp(1e-12, 0.95)
}

/// The pre-refactor decoder, kept verbatim as the benchmark baseline: each
/// live prefix clones its per-layer state and steps on its own tape.
fn taped_beam(
    net: &RoadNetwork,
    model: &DeepSt,
    ctx: &TripContext,
    start: SegmentId,
    dest: &Point,
    beam_width: usize,
    max_len: usize,
) -> Route {
    struct Item {
        route: Route,
        state: Vec<st_tensor::Array>,
        logp: f64,
    }
    let mut live = vec![Item {
        route: vec![start],
        state: model.initial_state(),
        logp: 0.0,
    }];
    let mut best_complete: Option<(Route, f64)> = None;
    for _ in 1..max_len {
        let mut expansions: Vec<Item> = Vec::new();
        for item in &live {
            let cur = *item.route.last().expect("routes are non-empty");
            let nexts = net.next_segments(cur);
            if nexts.is_empty() {
                continue;
            }
            let (new_state, logps) = model.step_state_taped(&item.state, cur, ctx);
            let valid = &logps[..nexts.len().min(logps.len())];
            let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = m + valid.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
            for (j, &next) in nexts.iter().enumerate().take(valid.len()) {
                let lp_trans = valid[j] - lse;
                let ps = p_stop(net, next, dest);
                let mut new_route = item.route.clone();
                new_route.push(next);
                let complete_score = item.logp + lp_trans + ps.ln();
                if best_complete
                    .as_ref()
                    .map(|(_, s)| complete_score > *s)
                    .unwrap_or(true)
                {
                    best_complete = Some((new_route.clone(), complete_score));
                }
                expansions.push(Item {
                    route: new_route,
                    state: new_state.clone(),
                    logp: item.logp + lp_trans + (1.0 - ps).ln(),
                });
            }
        }
        if expansions.is_empty() {
            break;
        }
        expansions.sort_by(|a, b| b.logp.total_cmp(&a.logp));
        expansions.truncate(beam_width);
        if let Some((_, best)) = &best_complete {
            if expansions[0].logp < *best - 12.0 {
                break;
            }
        }
        live = expansions;
    }
    match best_complete {
        Some((route, _)) => route,
        None => live
            .into_iter()
            .next()
            .map(|i| i.route)
            .unwrap_or_else(|| vec![start]),
    }
}

fn main() {
    let scale = Scale::from_args();
    let city = City::Rivertown;
    println!("bench_decode: {} ({} trips)", city.name(), scale.trips);

    let ds = make_dataset(city, &scale);
    let split = ds.default_split();
    // Untrained weights run the exact same arithmetic per step as trained
    // ones, so the throughput comparison is unaffected by training cost.
    let model = DeepSt::new(deepst_config(&ds, 24), scale.seed);

    let take = (scale.max_eval.unwrap_or(200) / 5)
        .clamp(8, 60)
        .min(split.test.len());
    // Precompute per-query contexts once: context encoding (traffic CNN +
    // destination proxies) is shared by both decoders and not under test.
    let queries: Vec<(SegmentId, Point, TripContext)> = split
        .test
        .iter()
        .take(take)
        .map(|&i| {
            let trip = &ds.trips[i];
            let slot = ds.slot_of(trip.start_time);
            let c = model.encode_traffic(ds.traffic_tensor(slot));
            let ctx = model.encode_context(ds.unit_coord(&trip.dest_coord), Some(c));
            (trip.origin_segment(), trip.dest_coord, ctx)
        })
        .collect();
    println!("  {} queries, beam width {BEAM_WIDTH}", queries.len());

    // Warm up every path (arena growth, GEMM packing buffers).
    if let Some((start, dest, ctx)) = queries.first() {
        for mut dec in [
            DeepStDecoder::new(&model, ctx),
            DeepStDecoder::new_generic(&model, ctx),
            DeepStDecoder::with_precision(&model, ctx, InferPrecision::Int8),
        ] {
            let _ = beam_decode(&ds.net, &mut dec, *start, dest, BEAM_WIDTH, 16);
        }
        let _ = taped_beam(&ds.net, &model, ctx, *start, dest, BEAM_WIDTH, 16);
    }

    // One timed sweep over the query set through one of the tape-free paths.
    #[derive(Clone, Copy)]
    enum Mode {
        Generic,
        Fused,
        Int8,
    }
    let run = |mode: Mode| -> (Vec<Route>, f64) {
        let mut best = f64::INFINITY;
        let mut routes = Vec::new();
        for _ in 0..SWEEPS {
            let t0 = Instant::now();
            routes = queries
                .iter()
                .map(|(start, dest, ctx)| {
                    let mut dec = match mode {
                        Mode::Generic => DeepStDecoder::new_generic(&model, ctx),
                        Mode::Fused => DeepStDecoder::new(&model, ctx),
                        Mode::Int8 => {
                            DeepStDecoder::with_precision(&model, ctx, InferPrecision::Int8)
                        }
                    };
                    beam_decode(
                        &ds.net,
                        &mut dec,
                        *start,
                        dest,
                        BEAM_WIDTH,
                        model.cfg.max_route_len,
                    )
                })
                .collect();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (routes, best)
    };

    let mut taped_secs = f64::INFINITY;
    let mut taped_routes: Vec<Route> = Vec::new();
    for _ in 0..SWEEPS {
        let t0 = Instant::now();
        taped_routes = queries
            .iter()
            .map(|(start, dest, ctx)| {
                taped_beam(
                    &ds.net,
                    &model,
                    ctx,
                    *start,
                    dest,
                    BEAM_WIDTH,
                    model.cfg.max_route_len,
                )
            })
            .collect();
        taped_secs = taped_secs.min(t0.elapsed().as_secs_f64());
    }
    let taped_qps = queries.len() as f64 / taped_secs;
    println!("  taped clone-and-step: {taped_qps:7.2} decodes/sec ({taped_secs:.2}s)");

    let (generic_routes, generic_secs) = run(Mode::Generic);
    let generic_qps = queries.len() as f64 / generic_secs;
    println!("  generic batched:      {generic_qps:7.2} decodes/sec ({generic_secs:.2}s)");

    let (fused_routes, fused_secs) = run(Mode::Fused);
    let fused_qps = queries.len() as f64 / fused_secs;
    println!("  fused/packed f32:     {fused_qps:7.2} decodes/sec ({fused_secs:.2}s)");

    let (int8_routes, int8_secs) = run(Mode::Int8);
    let int8_qps = queries.len() as f64 / int8_secs;
    println!("  int8 quantized:       {int8_qps:7.2} decodes/sec ({int8_secs:.2}s)");

    // f32 paths must agree bit-for-bit, hence route-for-route.
    for (name, routes) in [("generic", &generic_routes), ("fused", &fused_routes)] {
        let mismatches = taped_routes
            .iter()
            .zip(routes)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(
            mismatches, 0,
            "{name} decode diverged from the taped baseline on {mismatches} queries"
        );
    }
    println!("  parity: all {} f32 routes identical", queries.len());

    // The int8 path is gated statistically against the f32 oracle.
    let int8_match = accuracy::route_match_rate(&fused_routes, &int8_routes);
    let int8_jaccard = accuracy::mean_jaccard(&fused_routes, &int8_routes);
    println!(
        "  int8 route match rate: {int8_match:.4} (gate >= {INT8_MATCH_GATE}), \
         mean jaccard {int8_jaccard:.4}"
    );
    assert!(
        int8_match >= INT8_MATCH_GATE,
        "int8 decode matched only {int8_match:.4} of f32 routes (gate {INT8_MATCH_GATE})"
    );

    let speedup_vs_pr5_batched = fused_qps / PR5_BATCHED_QPS;
    let speedup_vs_pr5_taped = fused_qps / PR5_TAPED_QPS;
    let speedup_vs_taped = taped_secs / fused_secs;
    let speedup_vs_generic = generic_secs / fused_secs;
    let tape_peak = st_obs::gauge("predict.step_tape_peak_bytes").get();
    println!(
        "  fused vs PR5 batched: {speedup_vs_pr5_batched:.2}x \
         (target >= {TARGET_SPEEDUP:.1}x; {speedup_vs_pr5_taped:.2}x vs PR5 taped)"
    );
    println!(
        "  fused vs live generic: {speedup_vs_generic:.2}x, vs live taped: {speedup_vs_taped:.2}x"
    );
    println!("  predict.step_tape_peak_bytes: {tape_peak}");

    let out = json!({
        "city": city.name(),
        "queries": queries.len(),
        "beam_width": BEAM_WIDTH,
        "max_route_len": model.cfg.max_route_len,
        "sweeps": SWEEPS,
        "host": host_meta(),
        "taped": { "decodes_per_sec": taped_qps, "secs": taped_secs },
        "batched": { "decodes_per_sec": generic_qps, "secs": generic_secs },
        "fused": { "decodes_per_sec": fused_qps, "secs": fused_secs },
        "int8": {
            "decodes_per_sec": int8_qps,
            "secs": int8_secs,
            "route_match_rate": int8_match,
            "mean_jaccard": int8_jaccard,
            "match_gate": INT8_MATCH_GATE,
            "gate_met": int8_match >= INT8_MATCH_GATE,
        },
        "baseline_pr5": {
            "source": "results/BENCH_decode.json as committed at b696363 (PR 5), \
                       same query set and host class",
            "batched_decodes_per_sec": PR5_BATCHED_QPS,
            "taped_decodes_per_sec": PR5_TAPED_QPS,
        },
        "speedup": speedup_vs_pr5_batched,
        "speedup_vs_pr5_taped": speedup_vs_pr5_taped,
        "speedup_vs_taped": speedup_vs_taped,
        "speedup_vs_generic": speedup_vs_generic,
        "target_speedup": TARGET_SPEEDUP,
        "target_met": speedup_vs_pr5_batched >= TARGET_SPEEDUP,
        "routes_identical": true,
        "step_tape_peak_bytes": tape_peak,
    });
    let path = results_dir().join("BENCH_decode.json");
    write_json_atomic(&path, &out).expect("write BENCH_decode.json");
    println!("wrote {}", path.display());

    if speedup_vs_pr5_batched < TARGET_SPEEDUP {
        // Report without failing: CI hosts vary; the JSON records the miss.
        eprintln!(
            "warning: fused decode speedup {speedup_vs_pr5_batched:.2}x below \
             the {TARGET_SPEEDUP:.1}x target"
        );
    }
}
