//! Decode-throughput benchmark for the tape-free inference runtime.
//!
//! Beam-decodes the same Rivertown queries two ways with the same DeepST
//! weights:
//!
//! 1. **taped clone-and-step** — the pre-refactor decoder: every live beam
//!    prefix owns a cloned recurrent state and advances through
//!    [`DeepSt::step_state_taped`], which records each forward step on a
//!    throwaway autodiff tape;
//! 2. **tape-free batched** — [`st_baselines::beam_decode`] over a
//!    [`DeepStDecoder`]: the beam state is packed as `[beam, hidden]`
//!    matrices, one batched GEMM advances every candidate, and no tape is
//!    ever allocated.
//!
//! Both must produce identical routes (asserted per query — this doubles as
//! a large-scale parity check); the report records the speedup and the
//! `predict.step_tape_peak_bytes` gauge (which must stay 0 in the batched
//! path). Writes `BENCH_decode.json`.
//!
//! Usage: `cargo run --release -p st-bench --bin bench_decode [-- --quick|--full]`

use std::time::Instant;

use serde_json::json;

use st_baselines::{beam_decode, DeepStDecoder, TERM_SCALE_M};
use st_bench::{make_dataset, results_dir, City, Scale};
use st_core::{DeepSt, TripContext};
use st_eval::deepst_config;
use st_eval::report::write_json;
use st_roadnet::{Point, RoadNetwork, Route, SegmentId};

const BEAM_WIDTH: usize = 8;

/// Required decode speedup of the batched tape-free path over the taped
/// clone-and-step baseline (measured ~4.3x on the reference host at the
/// commit introducing the inference runtime; 3x leaves headroom for slower
/// CI hosts).
const TARGET_SPEEDUP: f64 = 3.0;

fn p_stop(net: &RoadNetwork, seg: SegmentId, dest: &Point) -> f64 {
    let proj = net.project_onto(dest, seg);
    let d = proj.dist(dest) / TERM_SCALE_M;
    (-d * d).exp().clamp(1e-12, 0.95)
}

/// The pre-refactor decoder, kept verbatim as the benchmark baseline: each
/// live prefix clones its per-layer state and steps on its own tape.
fn taped_beam(
    net: &RoadNetwork,
    model: &DeepSt,
    ctx: &TripContext,
    start: SegmentId,
    dest: &Point,
    beam_width: usize,
    max_len: usize,
) -> Route {
    struct Item {
        route: Route,
        state: Vec<st_tensor::Array>,
        logp: f64,
    }
    let mut live = vec![Item {
        route: vec![start],
        state: model.initial_state(),
        logp: 0.0,
    }];
    let mut best_complete: Option<(Route, f64)> = None;
    for _ in 1..max_len {
        let mut expansions: Vec<Item> = Vec::new();
        for item in &live {
            let cur = *item.route.last().expect("routes are non-empty");
            let nexts = net.next_segments(cur);
            if nexts.is_empty() {
                continue;
            }
            let (new_state, logps) = model.step_state_taped(&item.state, cur, ctx);
            let valid = &logps[..nexts.len().min(logps.len())];
            let m = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lse = m + valid.iter().map(|&v| (v - m).exp()).sum::<f64>().ln();
            for (j, &next) in nexts.iter().enumerate().take(valid.len()) {
                let lp_trans = valid[j] - lse;
                let ps = p_stop(net, next, dest);
                let mut new_route = item.route.clone();
                new_route.push(next);
                let complete_score = item.logp + lp_trans + ps.ln();
                if best_complete
                    .as_ref()
                    .map(|(_, s)| complete_score > *s)
                    .unwrap_or(true)
                {
                    best_complete = Some((new_route.clone(), complete_score));
                }
                expansions.push(Item {
                    route: new_route,
                    state: new_state.clone(),
                    logp: item.logp + lp_trans + (1.0 - ps).ln(),
                });
            }
        }
        if expansions.is_empty() {
            break;
        }
        expansions.sort_by(|a, b| b.logp.total_cmp(&a.logp));
        expansions.truncate(beam_width);
        if let Some((_, best)) = &best_complete {
            if expansions[0].logp < *best - 12.0 {
                break;
            }
        }
        live = expansions;
    }
    match best_complete {
        Some((route, _)) => route,
        None => live
            .into_iter()
            .next()
            .map(|i| i.route)
            .unwrap_or_else(|| vec![start]),
    }
}

fn main() {
    let scale = Scale::from_args();
    let city = City::Rivertown;
    println!("bench_decode: {} ({} trips)", city.name(), scale.trips);

    let ds = make_dataset(city, &scale);
    let split = ds.default_split();
    // Untrained weights run the exact same arithmetic per step as trained
    // ones, so the throughput comparison is unaffected by training cost.
    let model = DeepSt::new(deepst_config(&ds, 24), scale.seed);

    let take = (scale.max_eval.unwrap_or(200) / 5)
        .clamp(8, 60)
        .min(split.test.len());
    // Precompute per-query contexts once: context encoding (traffic CNN +
    // destination proxies) is shared by both decoders and not under test.
    let queries: Vec<(SegmentId, Point, TripContext)> = split
        .test
        .iter()
        .take(take)
        .map(|&i| {
            let trip = &ds.trips[i];
            let slot = ds.slot_of(trip.start_time);
            let c = model.encode_traffic(ds.traffic_tensor(slot));
            let ctx = model.encode_context(ds.unit_coord(&trip.dest_coord), Some(c));
            (trip.origin_segment(), trip.dest_coord, ctx)
        })
        .collect();
    println!("  {} queries, beam width {BEAM_WIDTH}", queries.len());

    // Warm up both paths (arena growth, GEMM packing buffers).
    if let Some((start, dest, ctx)) = queries.first() {
        let mut dec = DeepStDecoder::new(&model, ctx);
        let _ = beam_decode(&ds.net, &mut dec, *start, dest, BEAM_WIDTH, 16);
        let _ = taped_beam(&ds.net, &model, ctx, *start, dest, BEAM_WIDTH, 16);
    }

    let t0 = Instant::now();
    let taped_routes: Vec<Route> = queries
        .iter()
        .map(|(start, dest, ctx)| {
            taped_beam(
                &ds.net,
                &model,
                ctx,
                *start,
                dest,
                BEAM_WIDTH,
                model.cfg.max_route_len,
            )
        })
        .collect();
    let taped_secs = t0.elapsed().as_secs_f64();
    let taped_qps = queries.len() as f64 / taped_secs;
    println!("  taped clone-and-step: {taped_qps:7.2} decodes/sec ({taped_secs:.2}s)");

    let t0 = Instant::now();
    let batched_routes: Vec<Route> = queries
        .iter()
        .map(|(start, dest, ctx)| {
            let mut dec = DeepStDecoder::new(&model, ctx);
            beam_decode(
                &ds.net,
                &mut dec,
                *start,
                dest,
                BEAM_WIDTH,
                model.cfg.max_route_len,
            )
        })
        .collect();
    let batched_secs = t0.elapsed().as_secs_f64();
    let batched_qps = queries.len() as f64 / batched_secs;
    println!("  tape-free batched:    {batched_qps:7.2} decodes/sec ({batched_secs:.2}s)");

    let mismatches = taped_routes
        .iter()
        .zip(&batched_routes)
        .filter(|(a, b)| a != b)
        .count();
    assert_eq!(
        mismatches, 0,
        "batched decode diverged from the taped baseline on {mismatches} queries"
    );
    println!("  parity: all {} routes identical", queries.len());

    let speedup = taped_secs / batched_secs;
    let tape_peak = st_obs::gauge("predict.step_tape_peak_bytes").get();
    println!("  speedup: {speedup:.2}x (target >= {TARGET_SPEEDUP:.1}x)");
    println!("  predict.step_tape_peak_bytes: {tape_peak}");

    let out = json!({
        "city": city.name(),
        "queries": queries.len(),
        "beam_width": BEAM_WIDTH,
        "max_route_len": model.cfg.max_route_len,
        "taped": { "decodes_per_sec": taped_qps, "secs": taped_secs },
        "batched": { "decodes_per_sec": batched_qps, "secs": batched_secs },
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "target_met": speedup >= TARGET_SPEEDUP,
        "routes_identical": true,
        "step_tape_peak_bytes": tape_peak,
    });
    let path = results_dir().join("BENCH_decode.json");
    write_json(&path, &out).expect("write BENCH_decode.json");
    println!("wrote {}", path.display());

    if speedup < TARGET_SPEEDUP {
        // Report without failing: CI hosts vary; the JSON records the miss.
        eprintln!("warning: decode speedup {speedup:.2}x below the {TARGET_SPEEDUP:.1}x target");
    }
}
