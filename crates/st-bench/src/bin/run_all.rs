//! Run the complete evaluation: every table and figure, sharing one
//! training run per city where possible. Writes all JSON results under
//! `results/` and prints each artifact.

use std::path::Path;
use std::process::ExitCode;

use st_bench::{results_dir, run_prediction_suite, City, Scale};
use st_eval::metrics::accuracy;
use st_eval::report::{format_bars, format_heatmap, format_table, write_json};
use st_eval::{build_examples, evaluate_methods, train_deepst, SuiteConfig};
use st_recovery::{DeepStSpatial, MarkovSpatial, Recovery, RecoveryConfig, TravelTimeModel};
use st_sim::downsample;

/// Write one result artifact, attaching the destination path to any error —
/// an unwritable results dir must name itself, not panic mid-sweep.
fn emit<T: serde::Serialize>(dir: &Path, name: &str, value: &T) -> Result<(), String> {
    let path = dir.join(name);
    write_json(&path, value).map_err(|e| format!("failed to write {}: {e}", path.display()))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("[run_all] error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let scale = Scale::from_args();
    eprintln!("[run_all] scale: {scale:?}");
    let dir = results_dir();
    // Record the whole sweep: spans/counters/events land in
    // `results/trace_run_all.jsonl` at the end (validated by CI).
    st_obs::start_recording();
    let mut t3 = serde_json::Map::new();
    let mut t4 = serde_json::Map::new();
    let mut t5 = serde_json::Map::new();
    let mut f5 = serde_json::Map::new();
    let mut f6 = serde_json::Map::new();
    let mut f7 = serde_json::Map::new();

    let city_filter = std::env::var("DEEPST_CITY").ok();
    for city in City::ALL {
        if let Some(f) = &city_filter {
            if !city.name().eq_ignore_ascii_case(f) {
                continue;
            }
        }
        eprintln!("[run_all] ===== {} =====", city.name());
        let out = run_prediction_suite(city, &scale);
        let ds = &out.dataset;
        let split = &out.split;

        // ---- Table III ----
        let stats = ds.trip_stats();
        println!("\nTable III — {}: {} trips, {} segments, distance {:.1}/{:.1}/{:.1} km (min/mean/max), segments {}/{:.0}/{}",
            city.name(), stats.n_trips, ds.net.num_segments(),
            stats.min_km, stats.mean_km, stats.max_km,
            stats.min_segments, stats.mean_segments, stats.max_segments);
        t3.insert(
            city.name().into(),
            serde_json::to_value(&stats)
                .map_err(|e| format!("serializing Table III stats for {}: {e}", city.name()))?,
        );

        // ---- Fig. 5 ----
        let (w, h) = (ds.grid.width, ds.grid.height);
        let mut density = vec![0.0f64; w * h];
        for trip in &ds.trips {
            for gp in &trip.gps {
                if let Some(c) = ds.grid.cell_of(&gp.p) {
                    density[c] += 1.0;
                }
            }
        }
        println!("\nFig. 5 — GPS density, {}:", city.name());
        println!("{}", format_heatmap(&density, w, h));
        f5.insert(
            city.name().into(),
            serde_json::json!({"width": w, "height": h, "density": density}),
        );

        // ---- Fig. 6 ----
        let dists: Vec<f64> = ds
            .trips
            .iter()
            .map(|t| ds.net.route_length(&t.route) / 1000.0)
            .collect();
        let nsegs: Vec<f64> = ds.trips.iter().map(|t| t.route.len() as f64).collect();
        f6.insert(
            city.name().into(),
            serde_json::json!({"distance_km": dists, "segments": nsegs}),
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "Fig. 6 — {}: mean distance {:.1} km, mean segments {:.0}",
            city.name(),
            mean(&dists),
            mean(&nsegs)
        );

        // ---- Table IV ----
        let mut rows = Vec::new();
        for r in &out.results {
            rows.push(vec![
                r.name.clone(),
                format!("{:.3}", r.overall.recall()),
                format!("{:.3}", r.overall.accuracy()),
            ]);
        }
        println!("\nTable IV — {}:", city.name());
        println!(
            "{}",
            format_table(&["Method", "recall@n", "accuracy"], &rows)
        );
        t4.insert(
            city.name().into(),
            serde_json::to_value(&out.results)
                .map_err(|e| format!("serializing Table IV results for {}: {e}", city.name()))?,
        );

        // ---- Fig. 7 ----
        let mut headers: Vec<String> = vec!["bucket (km)".into()];
        headers.extend(out.results.iter().map(|r| r.name.clone()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for (b, &(lo, hi)) in out.buckets.iter().enumerate() {
            let mut row = vec![if hi.is_finite() {
                format!("[{lo:.1},{hi:.1})")
            } else {
                format!("[{lo:.1},∞)")
            }];
            for r in &out.results {
                row.push(format!("{:.3}", r.per_bucket[b].accuracy()));
            }
            rows.push(row);
        }
        println!("Fig. 7 — accuracy vs distance, {}:", city.name());
        println!("{}", format_table(&header_refs, &rows));
        println!(
            "Fig. 7 — {}: {} of {} evaluated trips fall outside every distance bucket (scored overall, absent above)",
            city.name(),
            out.bucket_dropped,
            out.evaluated
        );
        f7.insert(
            city.name().into(),
            serde_json::json!({
                "buckets": out.buckets,
                "results": out.results,
                "evaluated": out.evaluated,
                "bucket_dropped": out.bucket_dropped,
            }),
        );

        // ---- Table V (recovery) ----
        let train = build_examples(ds, &split.train);
        let cfg = SuiteConfig {
            seed: scale.seed,
            deepst_epochs: scale.epochs,
            ..SuiteConfig::default()
        };
        let model = train_deepst(ds, &train, None, &cfg, true);
        let ttime = TravelTimeModel::fit(
            &ds.net,
            split
                .train
                .iter()
                .map(|&i| (&ds.trips[i].route, ds.trips[i].duration())),
        );
        let markov = MarkovSpatial::fit(split.train.iter().map(|&i| &ds.trips[i].route));
        let deep_spatial = DeepStSpatial::new(&model);
        let rcfg = RecoveryConfig::default();
        let strs = Recovery::new(&ds.net, &ttime, &markov, rcfg.clone());
        let strsp = Recovery::new(&ds.net, &ttime, &deep_spatial, rcfg);
        let rates: Vec<f64> = (1..=9).map(|m| m as f64).collect();
        let mut srow = Vec::new();
        let mut prow = Vec::new();
        for &rate in &rates {
            let mut a1 = 0.0;
            let mut a2 = 0.0;
            let mut n = 0usize;
            for &i in split.test.iter().take(scale.recovery_trajs) {
                let trip = &ds.trips[i];
                let sparse = downsample(&trip.gps, rate * 60.0);
                if sparse.len() < 2 {
                    continue;
                }
                let dest = ds.unit_coord(&trip.dest_coord);
                let slot = ds.slot_of(trip.start_time);
                let tensor = ds.traffic_tensor(slot);
                let (Some(r1), Some(r2)) = (
                    strs.recover(&sparse, dest, tensor, slot),
                    strsp.recover(&sparse, dest, tensor, slot),
                ) else {
                    continue;
                };
                a1 += accuracy(&trip.route, &r1);
                a2 += accuracy(&trip.route, &r2);
                n += 1;
            }
            srow.push(a1 / n.max(1) as f64);
            prow.push(a2 / n.max(1) as f64);
        }
        let delta: Vec<f64> = srow
            .iter()
            .zip(&prow)
            .map(|(a, b)| if *a > 0.0 { (b - a) / a * 100.0 } else { 0.0 })
            .collect();
        let mut headers: Vec<String> = vec!["Rate (mins)".into()];
        headers.extend(rates.iter().map(|r| format!("{r:.0}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows = vec![
            std::iter::once("STRS".to_string())
                .chain(srow.iter().map(|v| format!("{v:.2}")))
                .collect::<Vec<_>>(),
            std::iter::once("STRS+".to_string())
                .chain(prow.iter().map(|v| format!("{v:.2}")))
                .collect::<Vec<_>>(),
            std::iter::once("δ (%)".to_string())
                .chain(delta.iter().map(|v| format!("{v:.1}")))
                .collect::<Vec<_>>(),
        ];
        println!("Table V — route recovery, {}:", city.name());
        println!("{}", format_table(&header_refs, &rows));
        t5.insert(city.name().into(), serde_json::json!({"rates_min": rates, "strs": srow, "strs_plus": prow, "delta_pct": delta}));

        // ---- Table VI + Fig. 8 only on Northport (paper uses Harbin) ----
        if city == City::Northport {
            let val = build_examples(ds, &split.val);
            let buckets1 = st_eval::quantile_buckets(ds, &split.test, 1);
            let mut rows = Vec::new();
            let mut t6 = Vec::new();
            for k in [2usize, 8, 32, 64] {
                let cfg = SuiteConfig {
                    seed: scale.seed,
                    deepst_epochs: (scale.epochs / 2).max(2),
                    k_proxies: k,
                    ..SuiteConfig::default()
                };
                let m = train_deepst(ds, &train, Some(&val), &cfg, true);
                let methods: Vec<Box<dyn st_baselines::Predictor>> =
                    vec![Box::new(st_baselines::DeepStPredictor::new(m))];
                let summary =
                    evaluate_methods(ds, &methods, &split.test, &buckets1, scale.max_eval);
                let res = &summary.results[0];
                eprintln!("[run_all] table6 K={k}: acc {:.3}", res.overall.accuracy());
                rows.push(vec![
                    format!("{k}"),
                    format!("{:.3}", res.overall.recall()),
                    format!("{:.3}", res.overall.accuracy()),
                ]);
                t6.push(serde_json::json!({"k": k, "recall": res.overall.recall(), "accuracy": res.overall.accuracy()}));
            }
            println!("Table VI — K sensitivity, {}:", city.name());
            println!("{}", format_table(&["K", "recall@n", "accuracy"], &rows));
            emit(&dir, "table6.json", &t6)?;

            // Fig. 8
            let mut labels = Vec::new();
            let mut secs = Vec::new();
            for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
                let n = ((train.len() as f64) * frac) as usize;
                let cfg = SuiteConfig {
                    seed: scale.seed,
                    deepst_epochs: 2,
                    ..SuiteConfig::default()
                };
                let (_, elapsed) = st_obs::timed("bench/fig8_train", || {
                    train_deepst(ds, &train[..n], None, &cfg, true)
                });
                labels.push(format!("{n} trips"));
                secs.push(elapsed / 2.0);
            }
            println!(
                "Fig. 8 — training time per epoch vs data size, {}:",
                city.name()
            );
            println!("{}", format_bars("", &labels, &secs, 40));
            emit(
                &dir,
                "fig8.json",
                &serde_json::json!({"labels": labels, "secs_per_epoch": secs}),
            )?;
        }
    }
    emit(&dir, "table3.json", &t3)?;
    emit(&dir, "table4.json", &t4)?;
    emit(&dir, "table5.json", &t5)?;
    emit(&dir, "fig5.json", &f5)?;
    emit(&dir, "fig6.json", &f6)?;
    emit(&dir, "fig7.json", &f7)?;

    // ---- Trace export ----
    st_obs::stop_recording();
    let trace = st_obs::drain();
    let trace_path = dir.join("trace_run_all.jsonl");
    let meta = serde_json::json!({
        "bin": "run_all",
        "trips": scale.trips as f64,
        "epochs": scale.epochs as f64,
        "seed": scale.seed as f64,
    });
    st_obs::write_jsonl(&trace_path, &meta, &trace)
        .map_err(|e| format!("failed to write {}: {e}", trace_path.display()))?;
    eprintln!(
        "[run_all] trace: {} spans, {} metrics, {} events -> {}",
        trace.spans.len(),
        trace.metrics.len(),
        trace.events.len(),
        trace_path.display()
    );
    eprintln!("[run_all] all results written to {}", dir.display());
    Ok(())
}
