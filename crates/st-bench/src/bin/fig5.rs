//! Fig. 5: the spatial distribution of GPS points, rendered as a text heat
//! map over the city (plus a CSV density grid in results/).

use st_bench::{make_dataset, results_dir, City, Scale};
use st_eval::report::{format_heatmap, write_json};

fn main() {
    let scale = Scale::from_args();
    let mut json = serde_json::Map::new();
    for city in City::ALL {
        eprintln!("[fig5] generating {}", city.name());
        let ds = make_dataset(city, &scale);
        let (w, h) = (ds.grid.width, ds.grid.height);
        let mut density = vec![0.0f64; w * h];
        let mut n_points = 0usize;
        for trip in &ds.trips {
            for gp in &trip.gps {
                if let Some(c) = ds.grid.cell_of(&gp.p) {
                    density[c] += 1.0;
                    n_points += 1;
                }
            }
        }
        println!(
            "\nFig. 5 — GPS point density, {} ({} points)",
            city.name(),
            n_points
        );
        println!("{}", format_heatmap(&density, w, h));
        json.insert(
            city.name().into(),
            serde_json::json!({"width": w, "height": h, "density": density}),
        );
    }
    let path = results_dir().join("fig5.json");
    write_json(&path, &json).expect("write results");
    eprintln!("[fig5] wrote {}", path.display());
}
