//! Training-throughput benchmark for the st-tensor hot path.
//!
//! Trains one DeepST epoch on the Rivertown config serially
//! (`num_threads = 1`) and data-parallel (`num_threads = 4`, same shard
//! partition, hence identical arithmetic) and times a reference GEMM, then
//! writes `BENCH_train.json` so future PRs can track the trajectory:
//! examples/sec for both modes, ns per reference GEMM call, and the peak
//! tape-arena size in bytes.
//!
//! A third serial epoch runs with `st-obs` recording on, so the report also
//! carries the tracing overhead (spans + metric gauges on the training
//! path). Build with `--features kernel-timing` to include per-op kernel
//! counters in that cost; the default build compiles them out entirely.
//!
//! Usage: `cargo run --release -p st-bench --bin bench_train [-- --quick|--full]`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

use st_bench::{host_meta, make_dataset, results_dir, City, Scale};
use st_core::{DeepSt, Example, TrainConfig, Trainer};
use st_eval::report::write_json;
use st_eval::{build_examples, deepst_config};
use st_tensor::Array;

/// One timed training epoch. Returns (examples/sec, epoch seconds, peak
/// tape bytes).
fn timed_epoch(train: &[Example], tc: TrainConfig, model: DeepSt) -> (f64, f64, usize) {
    let mut trainer = Trainer::new(model, tc);
    let mut rng = StdRng::seed_from_u64(17);
    // Warm-up pass so arenas/pools are grown before the timed run.
    trainer.train_epoch(train, &mut rng);
    let t0 = Instant::now();
    trainer.train_epoch(train, &mut rng);
    let secs = t0.elapsed().as_secs_f64();
    (train.len() as f64 / secs, secs, trainer.peak_tape_bytes)
}

/// Nanoseconds per call of the reference `[d,d]×[d,d]` GEMM.
fn gemm_ns(d: usize) -> f64 {
    let a = Array::full(&[d, d], 1.25);
    let b = Array::full(&[d, d], -0.75);
    // Warm up the packing scratch buffers.
    let _ = std::hint::black_box(a.matmul(&b));
    let reps = 50;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(a.matmul(&b));
    }
    t0.elapsed().as_nanos() as f64 / reps as f64
}

/// Seed-commit (58628d3) serial trainer throughput on the reference host,
/// measured with this same Rivertown `--quick` config before the packed-GEMM
/// / tape-reuse / data-parallel work landed. Kept here so the report can
/// state the speedup against a fixed baseline.
const SEED_BASELINE_EPS: f64 = 164.0;

fn main() {
    let scale = Scale::from_args();
    let city = City::Rivertown;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_train: {} ({} trips, 1 epoch timed, {cores} core(s))",
        city.name(),
        scale.trips
    );

    let ds = make_dataset(city, &scale);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = deepst_config(&ds, 24);

    let batch_size = 64;
    let shard_size = 16; // 4 shards per minibatch
    let base_tc = TrainConfig {
        epochs: 1,
        batch_size,
        shard_size,
        patience: None,
        ..TrainConfig::default()
    };

    let serial_tc = TrainConfig {
        num_threads: 1,
        ..base_tc.clone()
    };
    let (serial_eps, serial_secs, peak_tape) =
        timed_epoch(&train, serial_tc, DeepSt::new(cfg.clone(), scale.seed));
    println!("  serial   (1 thread):  {serial_eps:8.1} examples/sec ({serial_secs:.2}s)");

    let threads = 4;
    let parallel_tc = TrainConfig {
        num_threads: threads,
        ..base_tc.clone()
    };
    let (par_eps, par_secs, _) =
        timed_epoch(&train, parallel_tc, DeepSt::new(cfg.clone(), scale.seed));
    println!("  parallel ({threads} threads): {par_eps:8.1} examples/sec ({par_secs:.2}s)");
    println!("  speedup: {:.2}x", par_eps / serial_eps);

    // Same serial epoch with span recording on: the difference is the cost
    // of tracing the training hot path.
    st_obs::start_recording();
    let serial_tc2 = TrainConfig {
        num_threads: 1,
        ..base_tc.clone()
    };
    let (traced_eps, traced_secs, _) =
        timed_epoch(&train, serial_tc2, DeepSt::new(cfg, scale.seed));
    st_obs::stop_recording();
    let trace = st_obs::drain();
    let overhead_pct = (serial_eps - traced_eps) / serial_eps * 100.0;
    let kernel_timing = cfg!(feature = "kernel-timing");
    println!(
        "  traced   (1 thread):  {traced_eps:8.1} examples/sec ({traced_secs:.2}s, \
         {:.1}% overhead, {} spans, kernel-timing {})",
        overhead_pct,
        trace.spans.len(),
        if kernel_timing { "on" } else { "off" }
    );
    println!(
        "  vs seed baseline ({SEED_BASELINE_EPS:.0} ex/s): {:.2}x serial, {:.2}x parallel",
        serial_eps / SEED_BASELINE_EPS,
        par_eps / SEED_BASELINE_EPS
    );

    let d = 128;
    let ns = gemm_ns(d);
    let gflops = 2.0 * (d * d * d) as f64 / ns;
    println!("  gemm {d}x{d}x{d}: {ns:.0} ns/call ({gflops:.2} GFLOP/s)");
    println!("  peak tape arena: {peak_tape} bytes");

    let out = json!({
        "city": city.name(),
        "train_examples": train.len(),
        "batch_size": batch_size,
        "shard_size": shard_size,
        "host_cores": cores,
        "host": host_meta(),
        "seed_baseline": {
            "commit": "58628d3",
            "examples_per_sec": SEED_BASELINE_EPS,
            "speedup_serial": serial_eps / SEED_BASELINE_EPS,
            "speedup_parallel": par_eps / SEED_BASELINE_EPS,
        },
        "serial": {
            "num_threads": 1,
            "examples_per_sec": serial_eps,
            "epoch_secs": serial_secs,
        },
        "parallel": {
            "num_threads": threads,
            "examples_per_sec": par_eps,
            "epoch_secs": par_secs,
        },
        "speedup": par_eps / serial_eps,
        "tracing": {
            "examples_per_sec": traced_eps,
            "epoch_secs": traced_secs,
            "overhead_pct": overhead_pct,
            "spans_recorded": trace.spans.len(),
            "kernel_timing_feature": kernel_timing,
        },
        "gemm": { "m": d, "k": d, "n": d, "ns_per_call": ns, "gflops": gflops },
        "peak_tape_bytes": peak_tape,
    });
    let path = results_dir().join("BENCH_train.json");
    write_json(&path, &out).expect("write BENCH_train.json");
    println!("wrote {}", path.display());
}
