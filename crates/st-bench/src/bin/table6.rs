//! Table VI: sensitivity to the number of destination proxies K.
//!
//! The paper sweeps K ∈ {500..3000} on Harbin and finds a rise-then-fall;
//! our Northport city has ~12 destination hotspots, so the sweep covers
//! K ∈ {2, 4, 8, 16, 32, 64} (DESIGN.md §1 documents the scaling).

use st_baselines::{DeepStPredictor, Predictor};
use st_bench::{make_dataset, results_dir, City, Scale};
use st_eval::report::{format_table, write_json};
use st_eval::{build_examples, evaluate_methods, train_deepst, SuiteConfig};

fn main() {
    let scale = Scale::from_args();
    let city = City::Northport;
    eprintln!("[table6] generating {}", city.name());
    let ds = make_dataset(city, &scale);
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let val = build_examples(&ds, &split.val);
    let ks = [2usize, 4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let buckets = st_eval::quantile_buckets(&ds, &split.test, 1);
    for &k in &ks {
        eprintln!("[table6] K = {k}");
        let cfg = SuiteConfig {
            seed: scale.seed,
            deepst_epochs: scale.epochs,
            k_proxies: k,
            ..SuiteConfig::default()
        };
        let model = train_deepst(&ds, &train, Some(&val), &cfg, true);
        let methods: Vec<Box<dyn Predictor>> = vec![Box::new(DeepStPredictor::new(model))];
        let summary = evaluate_methods(&ds, &methods, &split.test, &buckets, scale.max_eval);
        let res = &summary.results[0];
        let (recall, acc) = (res.overall.recall(), res.overall.accuracy());
        eprintln!("[table6] K = {k}: recall {recall:.3}, accuracy {acc:.3}");
        rows.push(vec![
            format!("{k}"),
            format!("{recall:.3}"),
            format!("{acc:.3}"),
        ]);
        json.push(serde_json::json!({"k": k, "recall": recall, "accuracy": acc}));
    }
    println!("\nTable VI — K-sensitivity on {}", city.name());
    println!("{}", format_table(&["K", "recall@n", "accuracy"], &rows));
    let path = results_dir().join("table6.json");
    write_json(&path, &json).expect("write results");
    eprintln!("[table6] wrote {}", path.display());
}
