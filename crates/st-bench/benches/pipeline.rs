//! Criterion benchmarks of the system-level pipelines: graph algorithms,
//! map matching, simulation, DeepST training steps and route decoding.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use st_baselines::{DeepStPredictor, PredictQuery, Predictor};
use st_core::{DeepSt, Example, TrainConfig, Trainer};
use st_eval::{build_examples, deepst_config};
use st_mapmatch::{MapMatcher, MatchConfig};
use st_roadnet::{grid_city, k_shortest_routes, shortest_route, GridConfig, SegmentId};
use st_sim::{CityPreset, Dataset};

fn small_dataset() -> Dataset {
    Dataset::generate(&CityPreset::tiny_test(), 200, 42)
}

fn bench_graph(c: &mut Criterion) {
    let net = grid_city(
        &GridConfig {
            nx: 16,
            ny: 16,
            ..GridConfig::small_test()
        },
        1,
    );
    let cost = |s: SegmentId| net.segment(s).length;
    let dst = net.num_segments() - 1;
    c.bench_function("dijkstra_16x16", |b| {
        b.iter(|| std::hint::black_box(shortest_route(&net, 0, dst, &cost)));
    });
    c.bench_function("yen_k5_16x16", |b| {
        b.iter(|| std::hint::black_box(k_shortest_routes(&net, 0, dst / 2, 5, &cost)));
    });
}

fn bench_mapmatch(c: &mut Criterion) {
    let ds = small_dataset();
    let matcher = MapMatcher::new(&ds.net, MatchConfig::default());
    let traj = ds.trips[0].gps.clone();
    c.bench_function("mapmatch_trajectory", |b| {
        b.iter(|| std::hint::black_box(matcher.match_route(&traj)));
    });
}

fn bench_simulation(c: &mut Criterion) {
    c.bench_function("dataset_generate_50_trips", |b| {
        b.iter(|| std::hint::black_box(Dataset::generate(&CityPreset::tiny_test(), 50, 3)));
    });
}

fn deepst_setup() -> (Dataset, Vec<Example>, DeepSt) {
    let ds = small_dataset();
    let split = ds.default_split();
    let train = build_examples(&ds, &split.train);
    let cfg = deepst_config(&ds, 8);
    let model = DeepSt::new(cfg, 0);
    (ds, train, model)
}

fn bench_deepst_train_step(c: &mut Criterion) {
    let (_, train, model) = deepst_setup();
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 32,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(model, tc);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    c.bench_function("deepst_train_epoch_100_trips", |b| {
        b.iter(|| {
            std::hint::black_box(trainer.train_epoch(&train[..100.min(train.len())], &mut rng))
        });
    });
}

fn bench_deepst_predict(c: &mut Criterion) {
    let (ds, train, model) = deepst_setup();
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 32,
        ..TrainConfig::default()
    };
    let mut trainer = Trainer::new(model, tc);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    trainer.train_epoch(&train, &mut rng);
    let wrapper = DeepStPredictor::new(trainer.model);
    let trip = &ds.trips[ds.trips.len() - 1];
    let slot = ds.slot_of(trip.start_time);
    c.bench_function("deepst_beam_predict", |b| {
        b.iter(|| {
            let q = PredictQuery {
                start: trip.origin_segment(),
                dest_coord: trip.dest_coord,
                dest_norm: ds.unit_coord(&trip.dest_coord),
                dest_segment: trip.dest_segment(),
                traffic: ds.traffic_tensor(slot),
                slot_id: slot,
            };
            std::hint::black_box(wrapper.predict(&ds.net, &q));
        });
    });
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_graph, bench_mapmatch, bench_simulation, bench_deepst_train_step, bench_deepst_predict
);
criterion_main!(pipeline);
