//! Criterion micro-benchmarks of the numerical kernels underlying DeepST:
//! GEMM, GRU steps, the traffic CNN, and softmax heads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use st_nn::{Gru, TrafficCnn};
use st_tensor::{init, ops, Array, Binder, Tape};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = init::rng(0);
        let a = init::randn(&[n, n], 1.0, &mut rng);
        let b = init::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_gru_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gru_step");
    for &(batch, hidden) in &[(1usize, 64usize), (64, 64), (64, 128)] {
        let mut rng = init::rng(0);
        let gru = Gru::new("g", 32, hidden, 2, &mut rng);
        let x = init::randn(&[batch, 32], 1.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("b{batch}_h{hidden}")),
            &batch,
            |bench, _| {
                bench.iter(|| {
                    let tape = Tape::new();
                    let binder = Binder::new(&tape);
                    let mut state = gru.zero_state(&binder, batch);
                    let xv = binder.input(x.clone());
                    std::hint::black_box(gru.step(&binder, xv, &mut state).value());
                });
            },
        );
    }
    group.finish();
}

fn bench_gru_backward(c: &mut Criterion) {
    let mut rng = init::rng(0);
    let gru = Gru::new("g", 32, 64, 2, &mut rng);
    let x = init::randn(&[64, 32], 1.0, &mut rng);
    c.bench_function("gru_step_fwd_bwd_b64", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let binder = Binder::new(&tape);
            let mut state = gru.zero_state(&binder, 64);
            let xv = binder.input(x.clone());
            let h = gru.step(&binder, xv, &mut state);
            let loss = ops::sum_all(ops::square(h));
            let grads = tape.backward(loss);
            std::hint::black_box(binder.accumulate_grads(&grads));
        });
    });
}

fn bench_traffic_cnn(c: &mut Criterion) {
    let mut rng = init::rng(0);
    let cnn = TrafficCnn::new("cnn", 4, &mut rng);
    let grids = init::randn(&[8, 1, 20, 20], 1.0, &mut rng);
    c.bench_function("traffic_cnn_fwd_b8_20x20", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let binder = Binder::new(&tape);
            let x = binder.input(grids.clone());
            std::hint::black_box(cnn.forward(&binder, x, false).value());
        });
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = init::rng(0);
    let logits = init::randn(&[128, 8], 1.0, &mut rng);
    c.bench_function("log_softmax_128x8", |bench| {
        bench.iter(|| {
            let tape = Tape::new();
            let x = tape.leaf(logits.clone());
            std::hint::black_box(ops::log_softmax_rows(x).value());
        });
    });
    let a = Array::zeros(&[4096]);
    c.bench_function("array_alloc_zero_4096", |bench| {
        bench.iter(|| std::hint::black_box(Array::zeros_like(&a)));
    });
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_gru_step, bench_gru_backward, bench_traffic_cnn, bench_softmax
);
criterion_main!(kernels);
