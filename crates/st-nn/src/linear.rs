//! Fully connected layers and multi-layer perceptrons.

use rand::rngs::StdRng;

use st_tensor::{infer, init, ops, Array, Binder, Param, ScratchArena, Var};

use crate::module::{Activation, Module};

/// An affine layer `y = x·W + b` with `W ∈ R^{in×out}`, `b ∈ R^{out}`.
pub struct Linear {
    name: String,
    w: Param,
    b: Param,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "Linear '{name}': dims must be positive, got in_dim={in_dim}, out_dim={out_dim}"
        );
        Self {
            name: name.to_string(),
            w: Param::new(format!("{name}.w"), init::xavier(in_dim, out_dim, rng)),
            b: Param::new(format!("{name}.b"), Array::zeros(&[out_dim])),
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass over a batch `x [n, in] → [n, out]`.
    ///
    /// Rejects a mis-shaped input with a diagnostic naming this layer,
    /// instead of a shape panic deep inside the GEMM kernel.
    pub fn forward<'t, 'p>(&'p self, b: &Binder<'t, 'p>, x: Var<'t>) -> Var<'t> {
        let xs = x.value().shape().to_vec();
        assert!(
            xs.len() == 2 && xs[1] == self.in_dim,
            "Linear '{}': input shape {:?} incompatible with expected [n, {}]",
            self.name,
            xs,
            self.in_dim
        );
        let w = b.var(&self.w);
        let bias = b.var(&self.b);
        ops::affine(x, w, bias)
    }

    /// Tape-free forward `x [n, in] → [n, out]`, sharing this layer's
    /// weights with [`Linear::forward`] and matching it bit-for-bit.
    pub fn infer(&self, arena: &mut ScratchArena, x: &Array) -> Array {
        assert!(
            x.ndim() == 2 && x.shape()[1] == self.in_dim,
            "Linear '{}': input shape {:?} incompatible with expected [n, {}]",
            self.name,
            x.shape(),
            self.in_dim
        );
        infer::affine(arena, x, &self.w.value(), &self.b.value())
    }

    /// Pack this layer's current weights once for a decode session; affine
    /// maps through the result ([`infer::affine_packed`]) skip the per-call
    /// GEMM pack and stay bit-identical to [`Linear::infer`].
    pub fn pack(&self) -> infer::PackedLinear {
        infer::PackedLinear::pack(&self.w.value(), &self.b.value())
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }
}

/// A stack of [`Linear`] layers with a shared hidden activation.
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    output_act: Activation,
}

impl Mlp {
    /// An MLP through the given layer sizes, e.g. `[in, h, out]` builds two
    /// linear layers. `hidden_act` is applied between layers, `output_act`
    /// after the last.
    pub fn new(
        name: &str,
        sizes: &[usize],
        hidden_act: Activation,
        output_act: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(sizes.len() >= 2, "MLP needs at least [in, out]");
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(&format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Self {
            layers,
            hidden_act,
            output_act,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// Forward pass `x [n, in] → [n, out]`.
    pub fn forward<'t, 'p>(&'p self, b: &Binder<'t, 'p>, x: Var<'t>) -> Var<'t> {
        let last = self.layers.len() - 1;
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(b, h);
            h = if i == last {
                self.output_act.apply(h)
            } else {
                self.hidden_act.apply(h)
            };
        }
        h
    }

    /// Tape-free forward `x [n, in] → [n, out]`, matching [`Mlp::forward`]
    /// bit-for-bit. Intermediate activations are recycled into `arena`.
    pub fn infer(&self, arena: &mut ScratchArena, x: &Array) -> Array {
        let last = self.layers.len() - 1;
        let act = |i: usize| {
            if i == last {
                self.output_act
            } else {
                self.hidden_act
            }
        };
        let mut h = self.layers[0].infer(arena, x);
        act(0).apply_mut(&mut h);
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            let mut y = layer.infer(arena, &h);
            act(i).apply_mut(&mut y);
            arena.recycle(std::mem::replace(&mut h, y));
        }
        h
    }
}

impl Module for Mlp {
    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

/// An [`Mlp`] with every layer's weights packed once per session.
pub struct PackedMlp {
    layers: Vec<infer::PackedLinear>,
    hidden_act: Activation,
    output_act: Activation,
}

impl PackedMlp {
    /// Pack every layer of an MLP.
    pub fn pack(mlp: &Mlp) -> Self {
        Self {
            layers: mlp.layers.iter().map(Linear::pack).collect(),
            hidden_act: mlp.hidden_act,
            output_act: mlp.output_act,
        }
    }

    /// Tape-free forward through the packed layers, bit-identical to
    /// [`Mlp::infer`].
    pub fn infer(&self, arena: &mut ScratchArena, x: &Array) -> Array {
        let last = self.layers.len() - 1;
        let act = |i: usize| {
            if i == last {
                self.output_act
            } else {
                self.hidden_act
            }
        };
        let mut h = infer::affine_packed(arena, x, &self.layers[0]);
        act(0).apply_mut(&mut h);
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            let mut y = infer::affine_packed(arena, &h, layer);
            act(i).apply_mut(&mut y);
            arena.recycle(std::mem::replace(&mut h, y));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::optim::{Adam, Optimizer};
    use st_tensor::Tape;

    #[test]
    fn linear_shapes() {
        let mut rng = init::rng(0);
        let l = Linear::new("l", 3, 5, &mut rng);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let x = b.input(Array::zeros(&[4, 3]));
        let y = l.forward(&b, x);
        assert_eq!(y.value().shape(), &[4, 5]);
        assert_eq!(l.num_params(), 3 * 5 + 5);
    }

    #[test]
    fn linear_zero_weights_gives_bias() {
        let mut rng = init::rng(0);
        let l = Linear::new("l", 2, 2, &mut rng);
        *l.w.value_mut() = Array::zeros(&[2, 2]);
        *l.b.value_mut() = Array::vector(vec![1.0, -1.0]);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let x = b.input(Array::from_vec(&[1, 2], vec![7.0, 9.0]));
        let y = l.forward(&b, x);
        assert_eq!(y.value().data(), &[1.0, -1.0]);
    }

    #[test]
    fn mlp_learns_xor() {
        let mut rng = init::rng(42);
        let mlp = Mlp::new(
            "xor",
            &[2, 8, 1],
            Activation::Tanh,
            Activation::Sigmoid,
            &mut rng,
        );
        let xs = Array::from_vec(&[4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = [0.0f32, 1.0, 1.0, 0.0];
        let mut opt = Adam::new(0.05);
        let mut last_loss = f32::INFINITY;
        for _ in 0..400 {
            let tape = Tape::new();
            let b = Binder::new(&tape);
            let x = b.input(xs.clone());
            let pred = mlp.forward(&b, x);
            let target = b.input(Array::from_vec(&[4, 1], ys.to_vec()));
            let loss = ops::mean_all(ops::square(ops::sub(pred, target)));
            last_loss = loss.scalar_value();
            let grads = tape.backward(loss);
            b.accumulate_grads(&grads);
            opt.step(&mlp.params());
        }
        assert!(last_loss < 0.03, "XOR loss did not converge: {last_loss}");
    }

    #[test]
    fn mlp_dims() {
        let mut rng = init::rng(1);
        let mlp = Mlp::new(
            "m",
            &[4, 16, 8, 2],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(mlp.params().len(), 6);
    }
}
