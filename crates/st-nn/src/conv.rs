//! Convolutional blocks for the traffic encoder.
//!
//! §V-A of the paper: "The CNN in Equation 6 comprises of three connected
//! convolution blocks followed by an average pooling layer; each convolution
//! block consists of three layers: Conv2d → BatchNorm2d → LeakyReLU."

use std::sync::RwLock;

use rand::rngs::StdRng;

use st_tensor::conv as tconv;
use st_tensor::{infer, init, ops, Array, Binder, Param, ScratchArena, Var};

use crate::module::Module;
use crate::serialize::CheckpointError;

/// Batch statistics recorded by a deferred-update forward pass: one
/// `(mean, variance)` pair per batch-norm layer, in forward order.
///
/// Data-parallel training runs the forward pass on worker threads; updating
/// the running statistics there would make their final value depend on
/// thread scheduling. Workers instead collect the batch statistics into one
/// of these and the coordinating thread applies the EMA updates in a fixed
/// shard order.
pub type BnBatchStats = Vec<(Array, Array)>;

/// Batch normalization over the channel axis of NCHW activations.
///
/// Training mode normalizes with batch statistics (differentiably, composed
/// from per-channel tape ops) and maintains exponential running statistics;
/// eval mode normalizes with the stored running statistics. The running
/// statistics sit behind `RwLock`s so the layer is `Sync` (shared across
/// data-parallel workers; see [`BnBatchStats`] for how updates stay
/// deterministic).
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: RwLock<Array>,
    running_var: RwLock<Array>,
    channels: usize,
    momentum: f32,
    eps: f32,
}

impl BatchNorm2d {
    /// Batch norm over `channels` feature maps.
    pub fn new(name: &str, channels: usize) -> Self {
        Self {
            gamma: Param::new(format!("{name}.gamma"), Array::ones(&[channels])),
            beta: Param::new(format!("{name}.beta"), Array::zeros(&[channels])),
            running_mean: RwLock::new(Array::zeros(&[channels])),
            running_var: RwLock::new(Array::ones(&[channels])),
            channels,
            momentum: 0.9,
            eps: 1e-5,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Forward pass. `training` selects batch vs running statistics; running
    /// statistics are updated immediately (single-threaded use).
    pub fn forward<'t, 'p>(&'p self, b: &Binder<'t, 'p>, x: Var<'t>, training: bool) -> Var<'t> {
        self.forward_collect(b, x, training, None)
    }

    /// Forward pass with deferred running-statistic updates: with
    /// `stats: Some(sink)` the batch `(mean, var)` is pushed onto `sink`
    /// instead of folded into the running statistics; apply it later with
    /// [`BatchNorm2d::apply_ema`]. With `stats: None` behaves like
    /// [`BatchNorm2d::forward`].
    pub fn forward_collect<'t, 'p>(
        &'p self,
        b: &Binder<'t, 'p>,
        x: Var<'t>,
        training: bool,
        stats: Option<&mut BnBatchStats>,
    ) -> Var<'t> {
        let xs = x.value().shape().to_vec();
        assert!(
            xs.len() == 4 && xs[1] == self.channels,
            "BatchNorm2d '{}': input shape {:?} incompatible with expected [n, {}, h, w]",
            self.base_name(),
            xs,
            self.channels
        );
        let gamma = b.var(&self.gamma);
        let beta = b.var(&self.beta);
        if training {
            let mu = tconv::channel_mean(x);
            let xc = tconv::sub_channel(x, mu);
            let var = tconv::channel_mean(ops::square(xc));
            // Running statistics update from the *values* (no gradient):
            // immediate, or recorded for a deterministic deferred apply.
            match stats {
                Some(sink) => sink.push(((*mu.value()).clone(), (*var.value()).clone())),
                None => self.apply_ema(&mu.value(), &var.value()),
            }
            let inv_std = ops::reciprocal(ops::sqrt(ops::add_scalar(var, self.eps)));
            let xn = tconv::mul_channel(xc, inv_std);
            tconv::channel_affine(xn, gamma, beta)
        } else {
            let rm = b.input(
                self.running_mean
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            );
            let inv = self
                .running_var
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .map(|v| 1.0 / (v + self.eps).sqrt());
            let inv = b.input(inv);
            let xn = tconv::mul_channel(tconv::sub_channel(x, rm), inv);
            tconv::channel_affine(xn, gamma, beta)
        }
    }

    /// Tape-free eval-mode normalization in place on `x [n, c, h, w]`,
    /// matching the eval branch of [`BatchNorm2d::forward`] bit-for-bit
    /// (running statistics, same per-channel subtract/scale/affine order).
    pub fn infer_eval(&self, arena: &mut ScratchArena, x: &mut Array) {
        assert!(
            x.ndim() == 4 && x.shape()[1] == self.channels,
            "BatchNorm2d '{}': input shape {:?} incompatible with expected [n, {}, h, w]",
            self.base_name(),
            x.shape(),
            self.channels
        );
        let rm = self.running_mean.read().unwrap_or_else(|e| e.into_inner());
        let rv = self.running_var.read().unwrap_or_else(|e| e.into_inner());
        let mut inv = arena.alloc(&[self.channels]);
        for (o, &v) in inv.data_mut().iter_mut().zip(rv.data()) {
            *o = 1.0 / (v + self.eps).sqrt();
        }
        infer::sub_channel_mut(x, &rm);
        infer::mul_channel_mut(x, &inv);
        infer::channel_affine_mut(x, &self.gamma.value(), &self.beta.value());
        arena.recycle(inv);
    }

    /// Fold one batch's `(mean, var)` into the running statistics.
    pub fn apply_ema(&self, mu: &Array, var: &Array) {
        let mut rm = self.running_mean.write().unwrap_or_else(|e| e.into_inner());
        let mut rv = self.running_var.write().unwrap_or_else(|e| e.into_inner());
        let m = self.momentum;
        for c in 0..self.channels {
            rm.data_mut()[c] = m * rm.data()[c] + (1.0 - m) * mu.data()[c];
            rv.data_mut()[c] = m * rv.data()[c] + (1.0 - m) * var.data()[c];
        }
    }

    /// Snapshot of the running mean (for tests/serialization).
    pub fn running_mean(&self) -> Array {
        self.running_mean
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Snapshot of the running variance.
    pub fn running_var(&self) -> Array {
        self.running_var
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Layer name, derived from the gamma parameter ("{name}.gamma").
    fn base_name(&self) -> &str {
        self.gamma
            .name()
            .strip_suffix(".gamma")
            .unwrap_or_else(|| self.gamma.name())
    }
}

impl Module for BatchNorm2d {
    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn buffers(&self) -> Vec<(String, Array)> {
        let base = self.base_name();
        vec![
            (format!("{base}.running_mean"), self.running_mean()),
            (format!("{base}.running_var"), self.running_var()),
        ]
    }

    fn load_buffers(&self, buffers: &[(String, Array)]) -> Result<(), CheckpointError> {
        crate::module::load_entries("buffer", &self.buffers(), buffers, |_, _| {})?;
        *self.running_mean.write().unwrap_or_else(|e| e.into_inner()) = buffers[0].1.clone();
        *self.running_var.write().unwrap_or_else(|e| e.into_inner()) = buffers[1].1.clone();
        Ok(())
    }
}

/// One `Conv2d → BatchNorm2d → LeakyReLU` block.
pub struct ConvBlock {
    name: String,
    kernel: Param,
    bias: Param,
    bn: BatchNorm2d,
    in_ch: usize,
    stride: usize,
    pad: usize,
    leaky_slope: f32,
}

impl ConvBlock {
    /// A block with `out×in×k×k` kernels.
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            in_ch > 0 && out_ch > 0 && k > 0,
            "ConvBlock '{name}': dims must be positive, got in_ch={in_ch}, out_ch={out_ch}, k={k}"
        );
        let fan_in = in_ch * k * k;
        Self {
            name: name.to_string(),
            kernel: Param::new(
                format!("{name}.kernel"),
                init::kaiming(&[out_ch, in_ch, k, k], fan_in, rng),
            ),
            bias: Param::new(format!("{name}.bias"), Array::zeros(&[out_ch])),
            bn: BatchNorm2d::new(&format!("{name}.bn"), out_ch),
            in_ch,
            stride,
            pad,
            leaky_slope: 0.1,
        }
    }

    /// Forward `[N, in, H, W] → [N, out, H', W']`.
    pub fn forward<'t, 'p>(&'p self, b: &Binder<'t, 'p>, x: Var<'t>, training: bool) -> Var<'t> {
        self.forward_collect(b, x, training, None)
    }

    /// Forward with deferred batch-norm statistics (see
    /// [`BatchNorm2d::forward_collect`]).
    pub fn forward_collect<'t, 'p>(
        &'p self,
        b: &Binder<'t, 'p>,
        x: Var<'t>,
        training: bool,
        stats: Option<&mut BnBatchStats>,
    ) -> Var<'t> {
        let xs = x.value().shape().to_vec();
        assert!(
            xs.len() == 4 && xs[1] == self.in_ch,
            "ConvBlock '{}': input shape {:?} incompatible with expected [n, {}, h, w]",
            self.name,
            xs,
            self.in_ch
        );
        let kernel = b.var(&self.kernel);
        let bias = b.var(&self.bias);
        let y = tconv::conv2d(x, kernel, bias, self.stride, self.pad);
        let y = self.bn.forward_collect(b, y, training, stats);
        ops::leaky_relu(y, self.leaky_slope)
    }

    /// Tape-free eval-mode forward, matching [`ConvBlock::forward`] with
    /// `training = false` bit-for-bit.
    pub fn infer(&self, arena: &mut ScratchArena, x: &Array) -> Array {
        assert!(
            x.ndim() == 4 && x.shape()[1] == self.in_ch,
            "ConvBlock '{}': input shape {:?} incompatible with expected [n, {}, h, w]",
            self.name,
            x.shape(),
            self.in_ch
        );
        let mut y = infer::conv2d(
            arena,
            x,
            &self.kernel.value(),
            &self.bias.value(),
            self.stride,
            self.pad,
        );
        self.bn.infer_eval(arena, &mut y);
        infer::leaky_relu_mut(&mut y, self.leaky_slope);
        y
    }
}

impl Module for ConvBlock {
    fn params(&self) -> Vec<&Param> {
        let mut p = vec![&self.kernel, &self.bias];
        p.extend(self.bn.params());
        p
    }

    fn buffers(&self) -> Vec<(String, Array)> {
        self.bn.buffers()
    }

    fn load_buffers(&self, buffers: &[(String, Array)]) -> Result<(), CheckpointError> {
        self.bn.load_buffers(buffers)
    }
}

/// The paper's traffic CNN: three conv blocks + global average pooling.
///
/// Input: the traffic tensor `C` as `[N, 1, H, W]` (average observed speed
/// per grid cell). Output: feature vectors `[N, out_channels]`.
pub struct TrafficCnn {
    blocks: [ConvBlock; 3],
    out_channels: usize,
}

impl TrafficCnn {
    /// Three 3×3 blocks: `1 → c, c → 2c, 2c → 2c`, strides `1, 2, 2` so the
    /// receptive field covers a large neighbourhood of the grid.
    pub fn new(name: &str, base_channels: usize, rng: &mut StdRng) -> Self {
        let c = base_channels;
        Self {
            blocks: [
                ConvBlock::new(&format!("{name}.b0"), 1, c, 3, 1, 1, rng),
                ConvBlock::new(&format!("{name}.b1"), c, 2 * c, 3, 2, 1, rng),
                ConvBlock::new(&format!("{name}.b2"), 2 * c, 2 * c, 3, 2, 1, rng),
            ],
            out_channels: 2 * c,
        }
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_channels
    }

    /// Forward `[N, 1, H, W] → [N, out_dim]`.
    pub fn forward<'t, 'p>(&'p self, b: &Binder<'t, 'p>, x: Var<'t>, training: bool) -> Var<'t> {
        self.forward_collect(b, x, training, None)
    }

    /// Forward with deferred batch-norm statistics: batch `(mean, var)`
    /// pairs are appended to `stats` in block order when provided.
    pub fn forward_collect<'t, 'p>(
        &'p self,
        b: &Binder<'t, 'p>,
        x: Var<'t>,
        training: bool,
        mut stats: Option<&mut BnBatchStats>,
    ) -> Var<'t> {
        let mut h = x;
        for blk in &self.blocks {
            h = blk.forward_collect(b, h, training, stats.as_deref_mut());
        }
        tconv::avg_pool_global(h)
    }

    /// Tape-free eval-mode forward `[N, 1, H, W] → [N, out_dim]`, matching
    /// [`TrafficCnn::forward`] with `training = false` bit-for-bit.
    pub fn infer(&self, arena: &mut ScratchArena, x: &Array) -> Array {
        let mut h = self.blocks[0].infer(arena, x);
        for blk in &self.blocks[1..] {
            let next = blk.infer(arena, &h);
            arena.recycle(std::mem::replace(&mut h, next));
        }
        let out = infer::avg_pool_global(arena, &h);
        arena.recycle(h);
        out
    }

    /// Apply batch statistics collected by [`TrafficCnn::forward_collect`]
    /// to the blocks' running statistics, in block order.
    pub fn apply_bn_stats(&self, stats: &BnBatchStats) {
        assert_eq!(stats.len(), self.blocks.len(), "one (mean, var) per block");
        for (blk, (mu, var)) in self.blocks.iter().zip(stats) {
            blk.bn.apply_ema(mu, var);
        }
    }
}

impl Module for TrafficCnn {
    fn params(&self) -> Vec<&Param> {
        self.blocks.iter().flat_map(|b| b.params()).collect()
    }

    fn buffers(&self) -> Vec<(String, Array)> {
        self.blocks.iter().flat_map(|b| b.buffers()).collect()
    }

    fn load_buffers(&self, buffers: &[(String, Array)]) -> Result<(), CheckpointError> {
        let per = 2; // running mean + var per block
        let expected = self.blocks.len() * per;
        if buffers.len() != expected {
            return Err(CheckpointError::Count {
                what: "buffer",
                expected,
                found: buffers.len(),
            });
        }
        for (blk, chunk) in self.blocks.iter().zip(buffers.chunks(per)) {
            blk.load_buffers(chunk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::Tape;

    #[test]
    fn batchnorm_normalizes_in_training() {
        let bn = BatchNorm2d::new("bn", 2);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let x = b.input(Array::from_vec(
            &[2, 2, 1, 2],
            vec![1., 3., 10., 30., 5., 7., 20., 40.],
        ));
        let y = bn.forward(&b, x, true);
        // With γ=1, β=0, each channel of the output has ~zero mean, unit var.
        let v = y.value();
        let (n, c, h, w) = (2, 2, 1, 2);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                let base = ni * c * h * w + ci * h * w;
                vals.extend_from_slice(&v.data()[base..base + h * w]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn batchnorm_running_stats_track_batches() {
        let bn = BatchNorm2d::new("bn", 1);
        for _ in 0..60 {
            let tape = Tape::new();
            let b = Binder::new(&tape);
            // constant batch: mean 4, var 4
            let x = b.input(Array::from_vec(&[1, 1, 2, 2], vec![2., 2., 6., 6.]));
            let _ = bn.forward(&b, x, true);
        }
        assert!((bn.running_mean().data()[0] - 4.0).abs() < 0.1);
        assert!((bn.running_var().data()[0] - 4.0).abs() < 0.2);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let bn = BatchNorm2d::new("bn", 1);
        // Prime the running stats to mean 0 / var 1 (defaults); eval must be
        // the identity for γ=1, β=0.
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let x = b.input(Array::from_vec(&[1, 1, 1, 2], vec![0.5, -0.5]));
        let y = bn.forward(&b, x, false);
        assert!(y.value().max_abs_diff(&x.value()) < 1e-4);
    }

    #[test]
    fn conv_block_shapes() {
        let mut rng = init::rng(0);
        let blk = ConvBlock::new("cb", 1, 4, 3, 2, 1, &mut rng);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let x = b.input(Array::zeros(&[2, 1, 8, 8]));
        let y = blk.forward(&b, x, true);
        assert_eq!(y.value().shape(), &[2, 4, 4, 4]);
    }

    #[test]
    fn traffic_cnn_output_dims() {
        let mut rng = init::rng(0);
        let cnn = TrafficCnn::new("cnn", 4, &mut rng);
        assert_eq!(cnn.out_dim(), 8);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let x = b.input(init::randn(&[3, 1, 12, 12], 1.0, &mut rng));
        let y = cnn.forward(&b, x, true);
        assert_eq!(y.value().shape(), &[3, 8]);
        assert!(y.value().all_finite());
    }

    #[test]
    fn buffers_roundtrip_bit_identically() {
        let mut rng = init::rng(2);
        let cnn = TrafficCnn::new("cnn", 2, &mut rng);
        // Drift the running stats away from their init.
        for _ in 0..5 {
            let tape = Tape::new();
            let b = Binder::new(&tape);
            let x = b.input(init::randn(&[2, 1, 8, 8], 1.0, &mut rng));
            let _ = cnn.forward(&b, x, true);
        }
        let bufs = cnn.buffers();
        assert_eq!(bufs.len(), 6);
        assert!(bufs[0].0.ends_with(".running_mean"));
        assert!(bufs[1].0.ends_with(".running_var"));
        let fresh = TrafficCnn::new("cnn", 2, &mut init::rng(3));
        fresh.load_buffers(&bufs).unwrap();
        for ((n1, a), (n2, b)) in bufs.iter().zip(fresh.buffers()) {
            assert_eq!(*n1, n2);
            let bits = |x: &Array| x.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(&b), "buffer {n1} differs");
        }
        // Wrong count and wrong name are rejected.
        assert!(fresh.load_buffers(&bufs[..4]).is_err());
        let mut renamed = bufs.clone();
        renamed[0].0 = "bogus".into();
        assert!(fresh.load_buffers(&renamed).is_err());
    }

    #[test]
    fn traffic_cnn_gradients_reach_first_block() {
        let mut rng = init::rng(1);
        let cnn = TrafficCnn::new("cnn", 2, &mut rng);
        let tape = Tape::new();
        let b = Binder::new(&tape);
        let x = b.input(init::randn(&[1, 1, 8, 8], 1.0, &mut rng));
        let y = cnn.forward(&b, x, true);
        let loss = ops::sum_all(ops::square(y));
        let grads = tape.backward(loss);
        b.accumulate_grads(&grads);
        let first_kernel = &cnn.blocks[0].kernel;
        assert!(
            first_kernel.grad().sq_norm() > 0.0,
            "no gradient at block 0"
        );
    }
}
