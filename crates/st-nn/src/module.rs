//! The [`Module`] trait: anything that owns trainable parameters.
//!
//! Modules expose their parameters as a flat, stable-ordered list so that
//! optimizers, gradient clipping and state serialization can treat every
//! model uniformly.

use st_tensor::{Array, Param};

/// A component owning trainable parameters.
pub trait Module {
    /// All trainable parameters, in a deterministic order.
    fn params(&self) -> Vec<&Param>;

    /// Total number of trainable scalars.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Export parameter values as `(name, value)` pairs in [`Module::params`]
    /// order.
    fn state(&self) -> Vec<(String, Array)> {
        self.params()
            .iter()
            .map(|p| (p.name().to_string(), p.value().clone()))
            .collect()
    }

    /// Load parameter values produced by [`Module::state`]. Panics on any
    /// name or shape mismatch — state files are not forward compatible.
    fn load_state(&self, state: &[(String, Array)]) {
        let params = self.params();
        assert_eq!(
            params.len(),
            state.len(),
            "state has {} entries, module has {} params",
            state.len(),
            params.len()
        );
        for (p, (name, value)) in params.iter().zip(state) {
            assert_eq!(p.name(), name, "state entry order mismatch");
            assert_eq!(
                p.value().shape(),
                value.shape(),
                "shape mismatch for {name}"
            );
            *p.value_mut() = value.clone();
        }
    }

    /// Zero every parameter's gradient accumulator.
    fn zero_grads(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

/// Activation functions selectable in MLPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Leaky ReLU with slope 0.01.
    LeakyRelu,
    /// No activation.
    Identity,
}

impl Activation {
    /// Apply this activation to a tape variable.
    pub fn apply<'t>(self, x: st_tensor::Var<'t>) -> st_tensor::Var<'t> {
        use st_tensor::ops;
        match self {
            Activation::Relu => ops::relu(x),
            Activation::Tanh => ops::tanh(x),
            Activation::Sigmoid => ops::sigmoid(x),
            Activation::LeakyRelu => ops::leaky_relu(x, 0.01),
            Activation::Identity => x,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_tensor::{Array, Param, Tape};

    struct Toy {
        a: Param,
        b: Param,
    }

    impl Module for Toy {
        fn params(&self) -> Vec<&Param> {
            vec![&self.a, &self.b]
        }
    }

    fn toy() -> Toy {
        Toy {
            a: Param::new("a", Array::vector(vec![1.0, 2.0])),
            b: Param::new("b", Array::vector(vec![3.0])),
        }
    }

    #[test]
    fn num_params_counts_scalars() {
        assert_eq!(toy().num_params(), 3);
    }

    #[test]
    fn state_roundtrip() {
        let m1 = toy();
        *m1.a.value_mut() = Array::vector(vec![9.0, 8.0]);
        let m2 = toy();
        m2.load_state(&m1.state());
        assert_eq!(m2.a.value().data(), &[9.0, 8.0]);
        assert_eq!(m2.b.value().data(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn load_state_rejects_bad_shape() {
        let m = toy();
        m.load_state(&[
            ("a".into(), Array::vector(vec![1.0])),
            ("b".into(), Array::vector(vec![1.0])),
        ]);
    }

    #[test]
    fn zero_grads_clears_all() {
        let m = toy();
        m.a.accumulate_grad(&Array::vector(vec![1.0, 1.0]));
        m.zero_grads();
        assert_eq!(m.a.grad().sum(), 0.0);
    }

    #[test]
    fn activations_apply() {
        let t = Tape::new();
        let x = t.leaf(Array::vector(vec![-1.0, 2.0]));
        assert_eq!(Activation::Relu.apply(x).value().data(), &[0.0, 2.0]);
        assert_eq!(Activation::Identity.apply(x).value().data(), &[-1.0, 2.0]);
        let s = Activation::Sigmoid.apply(x).value();
        assert!(s.data()[0] < 0.5 && s.data()[1] > 0.5);
    }
}
